"""LRU buffer pool over a page file.

The paper's disk-resident experiments use an LRU buffer in front of the
trajectory pages; this is that component, with hit/miss counters exposed so
benchmarks can report data-access behaviour, not just wall time.

The pool is also where transient disk faults die: physical reads run under
an optional :class:`~repro.resilience.retry.RetryPolicy`, so an ``OSError``
that clears on retry is invisible to callers (counted in
``stats.retries``), while persistent failures surface as a typed
:class:`~repro.errors.StorageError` and detected corruption as
:class:`~repro.errors.CorruptPageError` (never retried — the bytes on disk
will not improve).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import CorruptPageError, DatasetError, StorageError
from repro.obs.trace import current_tracer
from repro.storage.pages import PageFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.resilience.retry import RetryPolicy

__all__ = ["BufferStats", "LRUBufferPool"]


@dataclass
class BufferStats:
    """Page-access counters of one buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Physical reads that failed transiently and were retried.
    retries: int = 0

    @property
    def accesses(self) -> int:
        """Total page requests."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from memory."""
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters (e.g. between benchmark phases)."""
        self.hits = self.misses = self.evictions = self.retries = 0


class LRUBufferPool:
    """Least-recently-used cache of page contents."""

    def __init__(
        self,
        pagefile: PageFile,
        capacity: int = 256,
        retry: "RetryPolicy | None" = None,
    ):
        if capacity < 1:
            raise DatasetError(f"buffer capacity must be >= 1, got {capacity}")
        self._pagefile = pagefile
        self._capacity = capacity
        self._retry = retry
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        self.stats = BufferStats()

    @property
    def capacity(self) -> int:
        """Maximum number of cached pages."""
        return self._capacity

    @property
    def retry_policy(self) -> "RetryPolicy | None":
        """The retry policy guarding physical reads (``None`` = fail fast)."""
        return self._retry

    def __len__(self) -> int:
        return len(self._pages)

    def get_page(self, page_id: int) -> bytes:
        """The page's bytes, from cache or disk (updating recency)."""
        cached = self._pages.get(page_id)
        if cached is not None:
            self._pages.move_to_end(page_id)
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        data = self._read_physical(page_id)
        self._pages[page_id] = data
        if len(self._pages) > self._capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        return data

    def _read_physical(self, page_id: int) -> bytes:
        """One disk read, retried per policy; ``OSError`` -> ``StorageError``."""
        try:
            if self._retry is None:
                return self._pagefile.read_page(page_id)
            return self._retry.call(
                self._pagefile.read_page, page_id, on_retry=self._count_retry
            )
        except CorruptPageError:
            current_tracer().event("page_corrupt", page=page_id)
            raise
        except OSError as exc:
            raise StorageError(
                f"reading page {page_id} of {self._pagefile.path} failed "
                f"permanently: {exc}"
            ) from exc

    def _count_retry(self, attempt: int, exc: BaseException) -> None:
        self.stats.retries += 1
        current_tracer().event(
            "storage_retry", attempt=attempt, error=type(exc).__name__
        )

    def invalidate(self, page_id: int | None = None) -> None:
        """Drop one page (or everything) from the cache."""
        if page_id is None:
            self._pages.clear()
        else:
            self._pages.pop(page_id, None)

    def __repr__(self) -> str:
        return (
            f"LRUBufferPool(cached={len(self._pages)}/{self._capacity}, "
            f"hit_ratio={self.stats.hit_ratio:.2f})"
        )
