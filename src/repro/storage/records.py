"""Binary trajectory record codec.

A compact, dependency-free on-disk format for one trajectory:

```
u32 trajectory_id
u16 num_points
u16 num_keywords
num_points   x (u32 vertex, f64 timestamp)
num_keywords x (u8 length, utf-8 bytes)
```

The codec is explicit ``struct`` packing (no pickle) so files are portable,
versionable, and safe to read from untrusted sources.
"""

from __future__ import annotations

import struct

from repro.errors import DatasetError
from repro.trajectory.model import Trajectory, TrajectoryPoint

__all__ = ["encode_trajectory", "decode_trajectory"]

_HEADER = struct.Struct("<IHH")
_POINT = struct.Struct("<Id")


def encode_trajectory(trajectory: Trajectory) -> bytes:
    """Serialise one trajectory to its binary record."""
    if len(trajectory) > 0xFFFF:
        raise DatasetError(
            f"trajectory {trajectory.id} has too many points to encode"
        )
    keywords = sorted(trajectory.keywords)
    if len(keywords) > 0xFFFF:
        raise DatasetError(
            f"trajectory {trajectory.id} has too many keywords to encode"
        )
    parts = [_HEADER.pack(trajectory.id, len(trajectory), len(keywords))]
    for point in trajectory.points:
        parts.append(_POINT.pack(point.vertex, point.timestamp))
    for keyword in keywords:
        raw = keyword.encode("utf-8")
        if len(raw) > 0xFF:
            raise DatasetError(f"keyword {keyword!r} too long to encode")
        parts.append(bytes([len(raw)]))
        parts.append(raw)
    return b"".join(parts)


def decode_trajectory(data: bytes, offset: int = 0) -> tuple[Trajectory, int]:
    """Deserialise one record starting at ``offset``.

    Returns the trajectory and the offset just past the record.
    """
    try:
        trajectory_id, num_points, num_keywords = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        points = []
        for __ in range(num_points):
            vertex, timestamp = _POINT.unpack_from(data, offset)
            offset += _POINT.size
            points.append(TrajectoryPoint(vertex, timestamp))
        keywords = []
        for __ in range(num_keywords):
            length = data[offset]
            offset += 1
            keywords.append(data[offset : offset + length].decode("utf-8"))
            offset += length
        return Trajectory(trajectory_id, points, keywords), offset
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise DatasetError(f"corrupt trajectory record: {exc}") from exc
