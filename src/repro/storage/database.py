"""Disk-resident trajectory database.

The paper's disk configuration: indexes (vertex postings, keyword postings,
the id directory) stay memory-resident, but trajectory payloads live on
disk behind an LRU buffer.  :class:`DiskTrajectoryDatabase` exposes the same
interface as the in-memory :class:`~repro.index.database.TrajectoryDatabase`
(every searcher accepts either), so the disk experiment is a drop-in swap.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import DatasetError, GraphError
from repro.index.vertex_index import VertexTrajectoryIndex
from repro.network.graph import SpatialNetwork
from repro.network.landmarks import LandmarkIndex
from repro.network.stats import characteristic_distance
from repro.perf import QueryCaches
from repro.storage.pages import DEFAULT_PAGE_SIZE
from repro.storage.store import DiskTrajectoryStore
from repro.text.index import InvertedKeywordIndex
from repro.trajectory.model import Trajectory, TrajectorySet

__all__ = ["DiskTrajectoryDatabase"]

_UNSET = object()


class _DiskBackedSet:
    """A TrajectorySet-shaped view over the disk store (read only)."""

    def __init__(self, store: DiskTrajectoryStore):
        self._store = store

    def get(self, trajectory_id: int) -> Trajectory:
        return self._store.get(trajectory_id)

    def ids(self) -> list[int]:
        return self._store.ids()

    def __contains__(self, trajectory_id: int) -> bool:
        return trajectory_id in self._store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self):
        return iter(self._store)


class DiskTrajectoryDatabase:
    """Searcher-compatible database with disk-resident trajectory payloads."""

    def __init__(
        self,
        graph: SpatialNetwork,
        store: DiskTrajectoryStore,
        vertex_index: VertexTrajectoryIndex,
        keyword_index: InvertedKeywordIndex,
        sigma: float,
    ):
        self._graph = graph
        self._store = store
        self._vertex_index = vertex_index
        self._keyword_index = keyword_index
        self._sigma = sigma
        self._view = _DiskBackedSet(store)
        self._caches = QueryCaches()
        self._landmark_index: LandmarkIndex | None | object = _UNSET
        self._vertex_arrays: dict[int, np.ndarray] = {}

    @classmethod
    def build(
        cls,
        path: str | Path,
        graph: SpatialNetwork,
        trajectories: TrajectorySet,
        sigma: float | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 256,
        retry=None,
        checksum: bool = True,
    ) -> "DiskTrajectoryDatabase":
        """Materialise the store on disk and build the in-memory indexes.

        ``retry`` is an optional :class:`~repro.resilience.retry.RetryPolicy`
        absorbing transient disk faults; ``checksum=False`` drops the
        per-page CRC32 (legacy format, benchmark baseline).
        """
        if len(trajectories) == 0:
            raise DatasetError("a trajectory database needs at least one trajectory")
        store = DiskTrajectoryStore.build(
            path, trajectories, page_size=page_size,
            buffer_capacity=buffer_capacity, retry=retry, checksum=checksum,
        )
        vertex_index = VertexTrajectoryIndex.build(graph, trajectories)
        keyword_index = InvertedKeywordIndex.build(trajectories)
        if sigma is None:
            sigma = characteristic_distance(graph) / 8.0
        return cls(graph, store, vertex_index, keyword_index, sigma)

    # ------------------------------------------------ database interface
    @property
    def graph(self) -> SpatialNetwork:
        """The underlying spatial network."""
        return self._graph

    @property
    def trajectories(self) -> _DiskBackedSet:
        """Iterable, id-addressable view over the stored trajectories."""
        return self._view

    @property
    def vertex_index(self) -> VertexTrajectoryIndex:
        """Vertex -> trajectory-id posting lists (memory-resident)."""
        return self._vertex_index

    @property
    def keyword_index(self) -> InvertedKeywordIndex:
        """Keyword -> trajectory-id posting lists (memory-resident)."""
        return self._keyword_index

    @property
    def sigma(self) -> float:
        """Distance scale of the exponential spatial similarity decay."""
        return self._sigma

    @property
    def caches(self) -> QueryCaches:
        """The cross-query caches shared by every searcher on this database."""
        return self._caches

    @property
    def landmark_index(self) -> LandmarkIndex | None:
        """The ALT landmark index, built on first access (memory-resident).

        ``None`` on disconnected graphs; the outcome is computed once.
        """
        if self._landmark_index is _UNSET:
            try:
                self._landmark_index = LandmarkIndex.build(
                    self._graph,
                    num_landmarks=min(8, max(1, self._graph.num_vertices)),
                    seed=0,
                )
            except GraphError:
                self._landmark_index = None
        return self._landmark_index

    def vertex_array(self, trajectory_id: int) -> np.ndarray:
        """The trajectory's vertex set as a cached integer array (for ALT)."""
        array = self._vertex_arrays.get(trajectory_id)
        if array is None:
            vertex_set = self._store.get(trajectory_id).vertex_set
            array = np.fromiter(vertex_set, dtype=np.intp, count=len(vertex_set))
            self._vertex_arrays[trajectory_id] = array
        return array

    def get(self, trajectory_id: int) -> Trajectory:
        """Read a trajectory from disk (through the LRU buffer)."""
        return self._store.get(trajectory_id)

    def __len__(self) -> int:
        return len(self._store)

    # --------------------------------------------------------- disk extras
    @property
    def store(self) -> DiskTrajectoryStore:
        """The underlying page store (buffer stats live on it)."""
        return self._store

    def close(self) -> None:
        """Close the backing page file."""
        self._store.close()

    def __repr__(self) -> str:
        return (
            f"DiskTrajectoryDatabase(|P|={len(self._store)}, "
            f"pages={self._store.num_pages}, "
            f"buffer={self._store.buffer.capacity})"
        )
