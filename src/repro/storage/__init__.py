"""Disk-resident storage substrate: pages, LRU buffer, record codec, store."""

from repro.storage.buffer import BufferStats, LRUBufferPool
from repro.storage.database import DiskTrajectoryDatabase
from repro.storage.pages import CHECKSUM_SIZE, DEFAULT_PAGE_SIZE, PageFile
from repro.storage.records import decode_trajectory, encode_trajectory
from repro.storage.store import DiskTrajectoryStore

__all__ = [
    "BufferStats",
    "CHECKSUM_SIZE",
    "DEFAULT_PAGE_SIZE",
    "DiskTrajectoryDatabase",
    "DiskTrajectoryStore",
    "LRUBufferPool",
    "PageFile",
    "decode_trajectory",
    "encode_trajectory",
]
