"""Disk-resident trajectory store.

Records are packed into fixed-size pages (a record never spans pages; each
record is preceded by a ``u16`` length).  A directory mapping trajectory id
to ``(page, offset)`` lives in memory — in the paper's terms, the ids/index
are memory-resident while the trajectory payloads are on disk behind the
LRU buffer.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable

from typing import TYPE_CHECKING

from repro.errors import DatasetError, TrajectoryError
from repro.storage.buffer import LRUBufferPool
from repro.storage.pages import DEFAULT_PAGE_SIZE, PageFile
from repro.storage.records import decode_trajectory, encode_trajectory
from repro.trajectory.model import Trajectory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.retry import RetryPolicy

__all__ = ["DiskTrajectoryStore"]

_LEN = struct.Struct("<H")


class DiskTrajectoryStore:
    """Random-access trajectory records on disk behind an LRU buffer.

    ``retry`` (a :class:`~repro.resilience.retry.RetryPolicy`) makes page
    reads absorb transient I/O faults; without it the first failure
    surfaces as :class:`~repro.errors.StorageError`.
    """

    def __init__(
        self,
        pagefile: PageFile,
        directory: dict[int, tuple[int, int]],
        buffer_capacity: int = 256,
        retry: "RetryPolicy | None" = None,
    ):
        self._pagefile = pagefile
        self._directory = directory
        self._buffer = LRUBufferPool(pagefile, buffer_capacity, retry=retry)

    # ---------------------------------------------------------------- build
    @classmethod
    def build(
        cls,
        path: str | Path,
        trajectories: Iterable[Trajectory],
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 256,
        retry: "RetryPolicy | None" = None,
        checksum: bool = True,
    ) -> "DiskTrajectoryStore":
        """Write all trajectories to ``path`` and open the store over them."""
        pagefile = PageFile(path, page_size, create=True, checksum=checksum)
        directory: dict[int, tuple[int, int]] = {}
        page_id = pagefile.allocate()
        cursor = 0
        buffer = bytearray(page_size)
        for trajectory in trajectories:
            if trajectory.id in directory:
                raise DatasetError(f"duplicate trajectory id {trajectory.id}")
            record = encode_trajectory(trajectory)
            needed = _LEN.size + len(record)
            if needed > page_size:
                raise DatasetError(
                    f"trajectory {trajectory.id} needs {needed} bytes; "
                    f"increase page_size (currently {page_size})"
                )
            if cursor + needed > page_size:
                pagefile.write_page(page_id, bytes(buffer[:cursor]))
                page_id = pagefile.allocate()
                cursor = 0
                buffer = bytearray(page_size)
            directory[trajectory.id] = (page_id, cursor)
            _LEN.pack_into(buffer, cursor, len(record))
            buffer[cursor + _LEN.size : cursor + needed] = record
            cursor += needed
        pagefile.write_page(page_id, bytes(buffer[:cursor]))
        pagefile.flush()
        return cls(pagefile, directory, buffer_capacity, retry=retry)

    # ---------------------------------------------------------------- reads
    def get(self, trajectory_id: int) -> Trajectory:
        """Read one trajectory (through the buffer pool)."""
        location = self._directory.get(trajectory_id)
        if location is None:
            raise TrajectoryError(f"unknown trajectory id {trajectory_id}")
        page_id, offset = location
        page = self._buffer.get_page(page_id)
        (length,) = _LEN.unpack_from(page, offset)
        trajectory, __ = decode_trajectory(
            page[offset + _LEN.size : offset + _LEN.size + length]
        )
        return trajectory

    def ids(self) -> list[int]:
        """All stored trajectory ids (directory order)."""
        return list(self._directory)

    def __contains__(self, trajectory_id: int) -> bool:
        return trajectory_id in self._directory

    def __len__(self) -> int:
        return len(self._directory)

    def __iter__(self):
        for trajectory_id in self._directory:
            yield self.get(trajectory_id)

    # ------------------------------------------------------------- plumbing
    @property
    def buffer(self) -> LRUBufferPool:
        """The LRU buffer pool (hit/miss/retry stats live here)."""
        return self._buffer

    @property
    def pagefile(self) -> PageFile:
        """The backing page file (fault-injection seam lives here)."""
        return self._pagefile

    @property
    def num_pages(self) -> int:
        """Pages occupied on disk."""
        return self._pagefile.num_pages

    def close(self) -> None:
        """Close the backing page file."""
        self._pagefile.close()

    def __enter__(self) -> "DiskTrajectoryStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
