"""Fixed-size page file — the disk substrate of the disk-resident variant.

The paper evaluates a disk-resident configuration (trajectory data on disk
behind an LRU buffer, indexes in memory).  This module provides the page
abstraction: a file of fixed-size pages addressed by page id, with explicit
read/write/allocate operations so the buffer pool above it can count and
cache I/O.

Each page carries a CRC32 checksum of its payload in a 4-byte on-disk
header, so silent corruption is *detectable*: a mismatching read raises
:class:`~repro.errors.CorruptPageError` instead of returning wrong bytes.
The checksum is a physical-layer concern — ``page_size`` remains the
logical payload capacity, and each page occupies ``page_size + 4`` bytes on
disk.  ``checksum=False`` opts out (legacy format, benchmark baseline).

``read_fault_hook`` is the fault-injection seam used by
:mod:`repro.resilience.faults`: when set, it is invoked with the page id
before every physical read and may raise (transient ``IOError``) or sleep
(latency).  It is ``None`` — zero overhead beyond one attribute check — in
production use.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Callable

from repro.errors import CorruptPageError, DatasetError

__all__ = ["PageFile", "DEFAULT_PAGE_SIZE", "CHECKSUM_SIZE"]

DEFAULT_PAGE_SIZE = 4096

#: Bytes of per-page checksum header on disk (CRC32, little-endian).
CHECKSUM_SIZE = 4

_CRC = struct.Struct("<I")


class PageFile:
    """A file of fixed-size checksummed pages with random access by page id."""

    #: Optional ``hook(page_id)`` run before every physical page read; the
    #: seam :class:`~repro.resilience.faults.FaultInjector` attaches to.
    read_fault_hook: Callable[[int], None] | None = None

    def __init__(self, path: str | Path, page_size: int = DEFAULT_PAGE_SIZE,
                 create: bool = False, checksum: bool = True):
        if page_size < 64:
            raise DatasetError(f"page size {page_size} is too small")
        self._path = Path(path)
        self._page_size = page_size
        self._checksum = checksum
        self._physical_size = page_size + (CHECKSUM_SIZE if checksum else 0)
        mode = "w+b" if create or not self._path.exists() else "r+b"
        self._file = open(self._path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % self._physical_size != 0:
            raise DatasetError(
                f"{path} has size {size}, not a multiple of page size "
                f"{self._physical_size} on disk (payload {page_size}"
                f"{' + checksum header' if checksum else ''})"
            )
        self._num_pages = size // self._physical_size

    # ------------------------------------------------------------ metadata
    @property
    def page_size(self) -> int:
        """Bytes of payload per page."""
        return self._page_size

    @property
    def physical_page_size(self) -> int:
        """Bytes per page on disk (payload plus checksum header)."""
        return self._physical_size

    @property
    def checksummed(self) -> bool:
        """Whether pages carry a CRC32 header."""
        return self._checksum

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        return self._num_pages

    @property
    def path(self) -> Path:
        """The backing file path."""
        return self._path

    # ------------------------------------------------------------------ io
    def allocate(self) -> int:
        """Append an empty (zeroed, correctly checksummed) page; returns its id."""
        page_id = self._num_pages
        self._num_pages += 1
        self._write_physical(page_id, b"\x00" * self._page_size)
        return page_id

    def read_page(self, page_id: int) -> bytes:
        """The payload bytes of one page (checksum-verified)."""
        self._check(page_id)
        hook = self.read_fault_hook
        if hook is not None:
            hook(page_id)
        self._file.seek(page_id * self._physical_size)
        raw = self._file.read(self._physical_size)
        if len(raw) != self._physical_size:
            raise DatasetError(
                f"short read of page {page_id} from {self._path} "
                f"({len(raw)}/{self._physical_size} bytes)"
            )
        if not self._checksum:
            return raw
        stored = _CRC.unpack_from(raw)[0]
        payload = raw[CHECKSUM_SIZE:]
        actual = zlib.crc32(payload)
        if actual != stored:
            raise CorruptPageError(
                page_id, self._path,
                f"stored crc 0x{stored:08x}, computed 0x{actual:08x}",
            )
        return payload

    def write_page(self, page_id: int, data: bytes) -> None:
        """Overwrite one page; ``data`` must not exceed the page size."""
        self._check(page_id)
        if len(data) > self._page_size:
            raise DatasetError(
                f"page payload of {len(data)} bytes exceeds page size "
                f"{self._page_size}"
            )
        self._write_physical(page_id, data.ljust(self._page_size, b"\x00"))

    def _write_physical(self, page_id: int, payload: bytes) -> None:
        self._file.seek(page_id * self._physical_size)
        if self._checksum:
            self._file.write(_CRC.pack(zlib.crc32(payload)))
        self._file.write(payload)

    def corrupt_payload_byte(self, page_id: int, offset: int = 0) -> None:
        """Flip one payload byte on disk *without* updating the checksum.

        This deliberately damages the page the way a failing disk would —
        the next :meth:`read_page` raises :class:`CorruptPageError`.  It
        exists solely for fault injection and tests
        (:mod:`repro.resilience.faults`).
        """
        self._check(page_id)
        if not (0 <= offset < self._page_size):
            raise DatasetError(
                f"corruption offset {offset} outside page payload "
                f"(page size {self._page_size})"
            )
        position = (
            page_id * self._physical_size
            + (CHECKSUM_SIZE if self._checksum else 0)
            + offset
        )
        self._file.flush()
        self._file.seek(position)
        current = self._file.read(1)
        self._file.seek(position)
        self._file.write(bytes([current[0] ^ 0xFF]))
        self._file.flush()

    def flush(self) -> None:
        """Flush buffered writes to the OS."""
        self._file.flush()

    def close(self) -> None:
        """Flush and close the backing file."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def _check(self, page_id: int) -> None:
        if not (0 <= page_id < self._num_pages):
            raise DatasetError(
                f"page {page_id} out of range (file has {self._num_pages} pages)"
            )

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PageFile({self._path.name}, pages={self._num_pages}, "
            f"page_size={self._page_size}, checksum={self._checksum})"
        )
