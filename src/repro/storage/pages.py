"""Fixed-size page file — the disk substrate of the disk-resident variant.

The paper evaluates a disk-resident configuration (trajectory data on disk
behind an LRU buffer, indexes in memory).  This module provides the page
abstraction: a file of fixed-size pages addressed by page id, with explicit
read/write/allocate operations so the buffer pool above it can count and
cache I/O.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import DatasetError

__all__ = ["PageFile", "DEFAULT_PAGE_SIZE"]

DEFAULT_PAGE_SIZE = 4096


class PageFile:
    """A file of fixed-size pages with random access by page id."""

    def __init__(self, path: str | Path, page_size: int = DEFAULT_PAGE_SIZE,
                 create: bool = False):
        if page_size < 64:
            raise DatasetError(f"page size {page_size} is too small")
        self._path = Path(path)
        self._page_size = page_size
        mode = "w+b" if create or not self._path.exists() else "r+b"
        self._file = open(self._path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size != 0:
            raise DatasetError(
                f"{path} has size {size}, not a multiple of page size {page_size}"
            )
        self._num_pages = size // page_size

    # ------------------------------------------------------------ metadata
    @property
    def page_size(self) -> int:
        """Bytes per page."""
        return self._page_size

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        return self._num_pages

    @property
    def path(self) -> Path:
        """The backing file path."""
        return self._path

    # ------------------------------------------------------------------ io
    def allocate(self) -> int:
        """Append an empty page; returns its id."""
        page_id = self._num_pages
        self._file.seek(page_id * self._page_size)
        self._file.write(b"\x00" * self._page_size)
        self._num_pages += 1
        return page_id

    def read_page(self, page_id: int) -> bytes:
        """The raw bytes of one page."""
        self._check(page_id)
        self._file.seek(page_id * self._page_size)
        return self._file.read(self._page_size)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Overwrite one page; ``data`` must not exceed the page size."""
        self._check(page_id)
        if len(data) > self._page_size:
            raise DatasetError(
                f"page payload of {len(data)} bytes exceeds page size "
                f"{self._page_size}"
            )
        self._file.seek(page_id * self._page_size)
        self._file.write(data.ljust(self._page_size, b"\x00"))

    def flush(self) -> None:
        """Flush buffered writes to the OS."""
        self._file.flush()

    def close(self) -> None:
        """Flush and close the backing file."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def _check(self, page_id: int) -> None:
        if not (0 <= page_id < self._num_pages):
            raise DatasetError(
                f"page {page_id} out of range (file has {self._num_pages} pages)"
            )

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PageFile({self._path.name}, pages={self._num_pages}, "
            f"page_size={self._page_size})"
        )
