"""Command-line interface.

``repro generate`` builds a synthetic dataset on disk, ``repro query`` runs
one UOTS query against it, ``repro explain`` prints the query's execution
plan without running it, ``repro trace`` runs a query with tracing on and
prints its per-stage time breakdown, ``repro metrics`` dumps the metrics
registry after serving a query, ``repro slowlog`` serves a query repeatedly
under the slow-query journal and renders the worst entries, ``repro join``
runs a similarity self join, ``repro bench`` prints a quick benchmark
battery, and ``repro serve`` exposes the service over HTTP through the
async gateway — enough to exercise the whole system without writing
Python.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.datasets import build_bundle
from repro.bench.harness import run_battery
from repro.bench.reporting import format_table
from repro.bench.workloads import WorkloadConfig, make_queries
from repro.core.engine import ALGORITHMS, make_searcher
from repro.core.query import UOTSQuery
from repro.errors import QueryError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryJournal
from repro.obs.trace import format_trace
from repro.resilience.budget import SearchBudget
from repro.index.database import TrajectoryDatabase
from repro.service.admission import AdmissionController, OverloadController
from repro.service.policy import PRIORITY_CLASSES, AdmissionPolicy
from repro.service.service import QueryService
from repro.join.tsjoin import TwoPhaseJoin
from repro.network import io as network_io
from repro.network.generators import grid_network, ring_radial_network
from repro.text.assignment import annotate_trajectories, assign_vertex_keywords
from repro.text.vocabulary import Vocabulary
from repro.trajectory import io as trajectory_io
from repro.trajectory.generator import generate_trips

__all__ = ["main"]


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.topology == "grid":
        side = max(2, int(round(args.vertices**0.5)))
        graph = grid_network(side, side, seed=args.seed)
    else:
        radials = 24
        rings = max(1, args.vertices // radials)
        graph = ring_radial_network(rings, radials, seed=args.seed)
    trips = generate_trips(graph, args.trajectories, seed=args.seed + 1)
    vocabulary = Vocabulary.build(args.vocabulary, seed=args.seed + 2)
    vertex_keywords = assign_vertex_keywords(graph, vocabulary, seed=args.seed + 3)
    trips = annotate_trajectories(trips, vertex_keywords, seed=args.seed + 4)

    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    network_io.save_json(graph, out / "network.json")
    trajectory_io.save_jsonl(trips, out / "trajectories.jsonl")
    print(f"wrote {out / 'network.json'} (|V|={graph.num_vertices})")
    print(f"wrote {out / 'trajectories.jsonl'} (|P|={len(trips)})")
    return 0


def _load_database(
    directory: str, cache_size: int | None = None
) -> TrajectoryDatabase:
    base = Path(directory)
    graph = network_io.load_json(base / "network.json")
    trips = trajectory_io.load_jsonl(base / "trajectories.jsonl")
    return TrajectoryDatabase(graph, trips, cache_size=cache_size)


def _parse_query(args: argparse.Namespace) -> UOTSQuery:
    return UOTSQuery.create(
        locations=[int(v) for v in args.locations.split(",")],
        preference=args.preference,
        lam=args.lam,
        k=args.k,
    )


def _make_admission(args: argparse.Namespace) -> AdmissionController | None:
    """An overload controller from the CLI policy flags, or ``None``.

    ``None`` (no policy flag set) keeps the service's default unbounded
    controller — the CLI's historical behaviour, byte for byte.
    """
    if (
        args.max_inflight is None
        and args.max_cost is None
        and args.degrade_headroom is None
    ):
        return None
    policy = AdmissionPolicy(
        max_inflight=args.max_inflight,
        max_cost=args.max_cost,
        degrade_headroom=args.degrade_headroom,
    )
    return OverloadController(policy)


def _uses_admission(args: argparse.Namespace) -> bool:
    """Whether the query should go through the admission-gated ``submit``
    path (any tenant/priority/policy flag present)."""
    return (
        args.tenant is not None
        or args.priority is not None
        or args.max_inflight is not None
        or args.max_cost is not None
        or args.degrade_headroom is not None
    )


def _make_service(
    database: TrajectoryDatabase,
    args: argparse.Namespace,
    trace: bool = False,
    metrics: MetricsRegistry | None = None,
    slowlog: SlowQueryJournal | bool | None = None,
) -> QueryService:
    """A one-shot query service configured from the CLI tuning flags.

    Unset flags arrive as ``None`` and mean "keep the algorithm default"
    (the registry drops them).
    """
    return QueryService(
        database,
        args.algorithm,
        admission=_make_admission(args),
        trace=trace,
        metrics=metrics,
        result_cache=args.result_cache_size,
        slowlog=slowlog,
        alt=False if args.no_alt else None,
        batch_size=args.batch_size,
        scheduler=args.scheduler,
        shards=args.shards,
        workers=args.workers,
    )


def _cmd_query(args: argparse.Namespace) -> int:
    database = _load_database(args.data, cache_size=args.cache_size)
    query = _parse_query(args)
    budget = None
    if args.deadline_ms is not None or args.max_expansions is not None:
        budget = SearchBudget.from_millis(
            deadline_ms=args.deadline_ms,
            max_expanded_vertices=args.max_expansions,
        )
    journal = (
        SlowQueryJournal(threshold_ms=args.slowlog_threshold_ms)
        if args.slowlog
        else None
    )
    service = _make_service(
        database, args, trace=bool(args.trace_out), slowlog=journal
    )
    if _uses_admission(args):
        # The admission-gated path: a shed query comes back error-marked
        # (never executed) instead of raising.
        result = service.submit(
            query, budget=budget, tenant=args.tenant, priority=args.priority
        )
        if result.error is not None:
            print(f"error: {result.error}", file=sys.stderr)
            if result.degradation_reason:
                print(f"reason: {result.degradation_reason}", file=sys.stderr)
            return 1
    else:
        result = service.search(query, budget=budget)
    rows = [
        (item.trajectory_id, f"{item.score:.4f}",
         f"{item.spatial_similarity:.4f}", f"{item.text_similarity:.4f}",
         "exact" if item.exact else "bound")
        for item in result.items
    ]
    print(format_table(["trajectory", "score", "spatial", "text", "kind"], rows))
    stats = result.stats
    print(
        f"visited={stats.visited_trajectories} "
        f"expanded={stats.expanded_vertices} "
        f"batches={stats.expand_batches} "
        f"refinements={stats.refinements} "
        f"time={stats.elapsed_seconds * 1000:.1f}ms"
    )
    if stats.cache == "result":
        result_cache = "hit"
    elif service.result_cache is not None:
        result_cache = "miss"
    else:
        result_cache = "off"
    print(
        f"alt_pruned={stats.alt_pruned} "
        f"distance_cache={stats.distance_cache_hits}h/"
        f"{stats.distance_cache_misses}m "
        f"text_cache={stats.text_cache_hits}h/{stats.text_cache_misses}m "
        f"result_cache={result_cache}"
    )
    if not result.exact:
        print(
            f"degraded: {result.degradation_reason}; any missed trajectory "
            f"scores <= {result.residual_bound:.4f} "
            f"(confirmed top-{len(result.confirmed_prefix())})"
        )
    if journal is not None:
        print()
        print(journal.describe())
    if args.trace_out:
        count = service.tracer.export_jsonl(args.trace_out)
        print(f"wrote {count} trace(s) to {args.trace_out}")
    return 0


def _cmd_slowlog(args: argparse.Namespace) -> int:
    database = _load_database(args.data, cache_size=args.cache_size)
    query = _parse_query(args)
    journal = SlowQueryJournal(
        capacity=args.capacity, threshold_ms=args.threshold_ms
    )
    # Tracing on: admitted entries carry the stitched trace (including
    # harvested worker spans on forked scatter paths) for --show-trace.
    service = _make_service(database, args, trace=True, slowlog=journal)
    for _ in range(args.repeat):
        service.search(query, tenant=args.tenant, priority=args.priority)
    print(journal.describe(top=args.top, include_trace=args.show_trace))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    database = _load_database(args.data, cache_size=args.cache_size)
    query = _parse_query(args)
    service = _make_service(database, args, trace=True)
    result = service.search(query, tenant=args.tenant, priority=args.priority)
    root = service.tracer.last_trace()
    print(format_trace(root, top_n=args.top))
    print(
        f"\nresult: {len(result.items)} trajectories, "
        f"{'exact' if result.exact else 'degraded'}, "
        f"{result.stats.elapsed_seconds * 1000:.1f} ms"
    )
    if args.trace_out:
        count = service.tracer.export_jsonl(args.trace_out)
        print(f"wrote {count} trace(s) to {args.trace_out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    database = _load_database(args.data, cache_size=args.cache_size)
    query = _parse_query(args)
    registry = MetricsRegistry()
    # --slowlog turns the full diagnostics stack on so the dump carries
    # the repro_slowlog_* and repro_trace_dropped_* series.
    service = _make_service(
        database, args, metrics=registry,
        trace=args.slowlog, slowlog=args.slowlog or None,
    )
    for _ in range(args.repeat):
        service.submit(query, tenant=args.tenant, priority=args.priority)
        if args.mutate > 0:
            # Churn N stored trajectories: each remove+re-add round-trips
            # the typed mutation events and populates the
            # repro_invalidation_* series the obs smoke checks.
            ids = [t.id for t in database.trajectories][: args.mutate]
            for trajectory_id in ids:
                trajectory = database.remove(trajectory_id)
                database.add(trajectory)
    if args.format == "json":
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(registry.render_prometheus())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    database = _load_database(args.data, cache_size=args.cache_size)
    query = _parse_query(args)
    service = _make_service(database, args)
    for _ in range(args.repeat):
        service.submit(query)
    print(service.explain(query))
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    database = _load_database(args.data)
    result = TwoPhaseJoin(database, lam=args.lam).self_join(args.theta)
    for id1, id2, score in result.pairs[:50]:
        print(f"({id1}, {id2})  SimST={score:.4f}")
    print(f"{len(result.pairs)} pairs, candidates={result.candidate_pairs}, "
          f"time={result.stats.elapsed_seconds:.2f}s")
    return 0


def _cmd_visualize(args: argparse.Namespace) -> int:
    from repro.viz.maps import draw_search_result

    database = _load_database(args.data)
    query = UOTSQuery.create(
        locations=[int(v) for v in args.locations.split(",")],
        preference=args.preference,
        lam=args.lam,
        k=args.k,
    )
    result = make_searcher(database, "collaborative").search(query)
    canvas = draw_search_result(
        database.graph, query.locations, result, database.get
    )
    canvas.save(args.output)
    print(f"wrote {args.output} ({len(result.items)} result trajectories)")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.algorithms is None:
        algorithms = list(ALGORITHMS)
    else:
        algorithms = [name.strip() for name in args.algorithms.split(",") if name.strip()]
        unknown = [name for name in algorithms if name not in ALGORITHMS]
        if unknown:
            raise QueryError(
                f"unknown algorithm(s) {unknown}; choose from {sorted(ALGORITHMS)}"
            )
        if not algorithms:
            raise QueryError("--algorithms must name at least one algorithm")
    bundle = build_bundle(args.dataset, seed=args.seed)
    if not args.json:
        print(bundle.describe())
    queries = make_queries(bundle, WorkloadConfig(num_queries=args.queries))
    battery = run_battery(
        bundle, queries, algorithms, result_cache=args.result_cache_size
    )
    if args.json:
        # Machine-readable rows (CI diffs these without text parsing).
        payload = {
            "dataset": args.dataset,
            "num_queries": args.queries,
            "seed": args.seed,
            "database_size": len(bundle.database),
            "result_cache_size": args.result_cache_size,
            "rows": [
                {
                    "algorithm": name,
                    "mean_ms": round(m.mean_ms, 3),
                    "p95_ms": round(m.p95_ms, 3),
                    "mean_visited": round(m.mean_visited, 3),
                    "candidate_ratio": round(
                        m.candidate_ratio(len(bundle.database)), 6
                    ),
                    "result_cache_hits": m.result_cache_hits,
                }
                for name, m in battery.items()
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        (name, f"{m.mean_ms:.1f}", f"{m.p95_ms:.1f}", f"{m.mean_visited:.0f}",
         f"{m.candidate_ratio(len(bundle.database)):.3f}")
        for name, m in battery.items()
    ]
    print(format_table(
        ["algorithm", "mean ms", "p95 ms", "visited", "cand. ratio"], rows
    ))
    if args.result_cache_size:
        hits = ", ".join(
            f"{name} {m.result_cache_hits}/{m.queries}"
            for name, m in battery.items()
        )
        print(f"result cache hits: {hits}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the dataset over HTTP through the async gateway."""
    import asyncio
    import signal

    from repro.gateway import AsyncQueryService, http_available

    if not http_available():
        print(
            "error: repro serve needs pydantic for the HTTP wire schemas "
            "(pip install pydantic)",
            file=sys.stderr,
        )
        return 1
    from repro.gateway.app import create_app
    from repro.gateway.server import serve as serve_app
    from repro.obs.metrics import get_registry

    database = _load_database(args.data, cache_size=args.cache_size)
    service = _make_service(database, args, metrics=get_registry())
    gateway = AsyncQueryService(
        service,
        max_workers=args.gateway_workers,
        max_pending=args.max_pending,
    )
    app = create_app(gateway)

    async def run() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass

        def on_ready(host: str, port: int) -> None:
            print(f"serving on http://{host}:{port}", flush=True)

        try:
            await serve_app(
                app,
                host=args.host,
                port=args.port,
                use_uvicorn=False if args.no_uvicorn else None,
                ready_callback=on_ready,
                shutdown_event=stop,
            )
        finally:
            await gateway.close()

    asyncio.run(run())
    print("shutdown complete")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="User-oriented trajectory search for trip recommendation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic dataset")
    p.add_argument("--output", required=True, help="output directory")
    p.add_argument("--topology", choices=["grid", "ring"], default="ring")
    p.add_argument("--vertices", type=int, default=2000)
    p.add_argument("--trajectories", type=int, default=1000)
    p.add_argument("--vocabulary", type=int, default=120)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_generate)

    def add_query_args(p: argparse.ArgumentParser) -> None:
        """The flags ``query`` and ``explain`` share (dataset, query, tuning)."""
        p.add_argument("--data", required=True, help="dataset directory")
        p.add_argument(
            "--locations", required=True, help="comma-separated vertex ids"
        )
        p.add_argument("--preference", default="", help="free-text preference")
        p.add_argument("--lam", type=float, default=0.5)
        p.add_argument("--k", type=int, default=5)
        p.add_argument(
            "--algorithm", choices=sorted(ALGORITHMS), default="collaborative"
        )
        p.add_argument(
            "--no-alt", action="store_true",
            help="disable landmark (ALT) bound tightening (same results, "
                 "more expansion work)",
        )
        p.add_argument(
            "--batch-size", type=int, default=None, metavar="N",
            help="expansion steps per scheduler round "
                 "(default keeps the algorithm's built-in batch size)",
        )
        p.add_argument(
            "--scheduler", choices=["heuristic", "round-robin"], default=None,
            help="expansion scheduling strategy "
                 "(default keeps the algorithm's built-in scheduler)",
        )
        p.add_argument(
            "--shards", type=int, default=None, metavar="N",
            help="number of spatial shards for --algorithm sharded "
                 "(ignored by flat algorithms; default 8)",
        )
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="parallel shard workers for --algorithm sharded "
                 "(default scales to the machine's cores)",
        )
        p.add_argument(
            "--cache-size", type=int, default=None, metavar="N",
            help="bound on the cross-query distance cache "
                 "(0 disables caching; default keeps the built-in bounds)",
        )
        p.add_argument(
            "--result-cache-size", type=int, default=None, metavar="N",
            help="bound on the service-level result cache answering "
                 "identical repeated queries in O(1) "
                 "(0 or unset disables it; exact un-budgeted results only)",
        )
        p.add_argument(
            "--tenant", default=None, metavar="NAME",
            help="tenant the query is submitted as (labels stats/trace; "
                 "subject to per-tenant quotas under an overload policy)",
        )
        p.add_argument(
            "--priority", choices=PRIORITY_CLASSES, default=None,
            help="priority class: under load, best_effort sheds first, "
                 "batch next, interactive only at the hard cap",
        )
        p.add_argument(
            "--max-inflight", type=int, default=None, metavar="N",
            help="global in-flight cap enforced by the overload policy "
                 "(enables utilization-based shedding)",
        )
        p.add_argument(
            "--max-cost", type=float, default=None, metavar="COST",
            help="shed queries whose planned estimated_cost exceeds COST "
                 "(the ceiling tightens further under load)",
        )
        p.add_argument(
            "--degrade-headroom", type=float, default=None, metavar="FACTOR",
            help="instead of shedding, run queries up to FACTOR x over the "
                 "cost ceiling under a tightened budget (anytime results)",
        )

    p = sub.add_parser("query", help="run one UOTS query")
    add_query_args(p)
    p.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="wall-clock budget; past it the best-so-far answer is returned",
    )
    p.add_argument(
        "--max-expansions", type=int, default=None, metavar="N",
        help="cap on expanded vertices before the search degrades",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="trace the query and write the span tree as JSONL to FILE",
    )
    p.add_argument(
        "--slowlog", action="store_true",
        help="serve under a slow-query journal and print its entries "
             "(fingerprint, plan, work counters, plan drift)",
    )
    p.add_argument(
        "--slowlog-threshold-ms", type=float, default=0.0, metavar="MS",
        help="journal only queries slower than MS (default 0: worst-N "
             "of everything served)",
    )
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "slowlog",
        help="serve a query repeatedly under the slow-query journal and "
             "render the worst entries",
    )
    add_query_args(p)
    p.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="serve the query N times before rendering the journal",
    )
    p.add_argument(
        "--threshold-ms", type=float, default=0.0, metavar="MS",
        help="journal only queries slower than MS (default 0: worst-N)",
    )
    p.add_argument(
        "--capacity", type=int, default=32, metavar="N",
        help="worst-N journal slots",
    )
    p.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="how many worst entries to render",
    )
    p.add_argument(
        "--show-trace", action="store_true",
        help="include each entry's stitched trace tree (worker spans "
             "grafted under their owning shard/query spans)",
    )
    p.set_defaults(func=_cmd_slowlog)

    p = sub.add_parser(
        "explain", help="print a query's execution plan without running it"
    )
    add_query_args(p)
    p.add_argument(
        "--repeat", type=int, default=0, metavar="N",
        help="serve the query N times first, so the plan carries the "
             "observed plan-vs-actual drift for this algorithm",
    )
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "trace", help="run one query with tracing and print the time breakdown"
    )
    add_query_args(p)
    p.add_argument(
        "--top", type=int, default=5, metavar="N",
        help="how many slowest spans to list under the breakdown tree",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="also write the span tree as JSONL to FILE",
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "metrics", help="serve a query with metrics bound and dump the registry"
    )
    add_query_args(p)
    p.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="serve the query N times before dumping (exercises the caches)",
    )
    p.add_argument(
        "--mutate", type=int, default=0, metavar="N",
        help="between repeats, remove and re-add N stored trajectories "
        "(exercises the scoped-invalidation series; needs "
        "--result-cache-size > 0 to register the listener)",
    )
    p.add_argument(
        "--slowlog", action="store_true",
        help="also bind a tracer and slow-query journal, so the dump "
        "carries the repro_slowlog_* and repro_trace_dropped_* series",
    )
    p.add_argument(
        "--format", choices=["prometheus", "json"], default="prometheus",
        help="dump as Prometheus text exposition (default) or a JSON snapshot",
    )
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser("join", help="run a trajectory similarity self join")
    p.add_argument("--data", required=True, help="dataset directory")
    p.add_argument("--theta", type=float, default=1.9)
    p.add_argument("--lam", type=float, default=0.5)
    p.set_defaults(func=_cmd_join)

    p = sub.add_parser("visualize", help="render a query result to SVG")
    p.add_argument("--data", required=True, help="dataset directory")
    p.add_argument("--locations", required=True, help="comma-separated vertex ids")
    p.add_argument("--preference", default="", help="free-text preference")
    p.add_argument("--lam", type=float, default=0.5)
    p.add_argument("--k", type=int, default=3)
    p.add_argument("--output", required=True, help="SVG file to write")
    p.set_defaults(func=_cmd_visualize)

    p = sub.add_parser("bench", help="quick algorithm battery")
    p.add_argument("--dataset", choices=["brn", "nrn"], default="brn")
    p.add_argument("--queries", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--result-cache-size", type=int, default=None, metavar="N",
        help="serve the battery through a bounded result cache and report "
             "per-algorithm hits (0 or unset keeps caching off)",
    )
    p.add_argument(
        "--algorithms", default=None, metavar="A,B,...",
        help="comma-separated subset of the registry to run "
             "(default: the full battery)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit machine-readable rows instead of the text table",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="serve the dataset over HTTP through the async gateway",
    )
    p.add_argument("--data", required=True, help="dataset directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000, help="0 picks a free port")
    p.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="collaborative"
    )
    p.add_argument(
        "--gateway-workers", type=int, default=8, metavar="N",
        help="worker threads bridging searches off the event loop",
    )
    p.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="bound on bridged calls queued-or-running "
             "(default 4x --gateway-workers; past it /query answers 503)",
    )
    p.add_argument(
        "--no-uvicorn", action="store_true",
        help="force the built-in asyncio HTTP server even when uvicorn "
             "is installed",
    )
    p.add_argument(
        "--no-alt", action="store_true",
        help="disable landmark (ALT) bound tightening",
    )
    p.add_argument("--batch-size", type=int, default=None, metavar="N")
    p.add_argument(
        "--scheduler", choices=["heuristic", "round-robin"], default=None
    )
    p.add_argument("--shards", type=int, default=None, metavar="N")
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="parallel shard workers for --algorithm sharded",
    )
    p.add_argument("--cache-size", type=int, default=None, metavar="N")
    p.add_argument(
        "--result-cache-size", type=int, default=256, metavar="N",
        help="service result cache answering identical repeats in O(1) "
             "(0 disables; serving defaults it on, unlike one-shot query)",
    )
    p.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="overload-policy in-flight cap (enables shedding + breaker)",
    )
    p.add_argument("--max-cost", type=float, default=None, metavar="COST")
    p.add_argument(
        "--degrade-headroom", type=float, default=None, metavar="FACTOR"
    )
    p.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro`` console script.

    Every command fails with exit code 1 and a one-line ``error:`` message
    on library errors (:class:`ReproError`) and on OS-level failures such
    as a missing dataset directory — never a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("error: interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
