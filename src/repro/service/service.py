"""The serving layer: one database, one searcher, many queries.

:class:`QueryService` is the single substrate every batch-ish caller sits
on — the :class:`~repro.core.engine.TripRecommender` facade, the CLI's
``query``/``bench``/``explain`` commands, :func:`repro.parallel.executor.
parallel_search`, and the bench harness.  It owns one database plus one
stateless searcher (searchers hold no per-query state, so a single
instance serves arbitrarily many queries, sequentially or concurrently)
and layers on what a front-end needs and individual searchers should not
carry:

- **admission control** — a bounded in-flight cap that *rejects* excess
  load (:mod:`repro.service.admission`);
- **failure isolation** — a query that raises a library error comes back
  as an error-marked result, never as an exception that takes the batch
  down;
- **observability** — aggregated :class:`~repro.service.stats.ServiceStats`
  (outcome counters, cache hit rates, p50/p95 latency) and per-query
  :meth:`explain` plans without execution.

``execute_many`` keeps the fork-based fan-out of the parallel executor:
with ``workers > 1`` on a fork platform the batch runs across processes
(the database shared copy-on-write), otherwise sequentially in-process —
same results either way, by the executor's containment contract.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Sequence

from repro.core.plan import QueryPlan, Searcher
from repro.core.query import UOTSQuery
from repro.core.registry import make_searcher
from repro.core.results import SearchResult
from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.parallel.executor import _fork_search_batch, _safe_search, fork_available
from repro.resilience.budget import SearchBudget
from repro.service.admission import AdmissionController
from repro.service.stats import ServiceStats

__all__ = ["QueryService"]


class QueryService:
    """A query front-end over one database and one shared searcher.

    Parameters
    ----------
    database:
        The indexed trajectory database to serve.
    algorithm:
        Registry name of the search algorithm (see
        :mod:`repro.core.registry`).
    admission:
        ``None`` (unbounded), an in-flight cap as an ``int``, or a
        pre-built :class:`AdmissionController`.
    **searcher_kwargs:
        Tuning kwargs forwarded to the registry factory (``alt=``,
        ``batch_size=``, ``refinement=``, ``scheduler=``).
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        algorithm: str = "collaborative",
        admission: AdmissionController | int | None = None,
        **searcher_kwargs,
    ):
        self._database = database
        self._algorithm = algorithm
        self._searcher = make_searcher(database, algorithm, **searcher_kwargs)
        self._admission = (
            admission
            if isinstance(admission, AdmissionController)
            else AdmissionController(admission)
        )
        self._stats = ServiceStats()

    # ------------------------------------------------------------ accessors
    @property
    def database(self) -> TrajectoryDatabase:
        """The underlying trajectory database."""
        return self._database

    @property
    def searcher(self) -> Searcher:
        """The shared, stateless searcher instance."""
        return self._searcher

    @property
    def algorithm(self) -> str:
        """The registry name the service was built with."""
        return self._algorithm

    @property
    def admission(self) -> AdmissionController:
        """The admission controller guarding :meth:`submit`."""
        return self._admission

    @property
    def stats(self) -> ServiceStats:
        """Aggregated service-level statistics."""
        return self._stats

    # ------------------------------------------------------------- planning
    def plan(self, query: UOTSQuery) -> QueryPlan:
        """The searcher's plan, stamped with the *registry* name.

        Variants share searcher classes (``collaborative-rr`` is a pinned
        ``CollaborativeSearcher``), so the class-level plan name is
        rewritten to the name the service actually serves under.
        """
        plan = self._searcher.plan(query)
        if plan.algorithm != self._algorithm:
            plan = replace(plan, algorithm=self._algorithm)
        return plan

    def explain(self, query: UOTSQuery) -> str:
        """Render the query's plan without executing it."""
        return self.plan(query).describe()

    # ------------------------------------------------------------ execution
    def search(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Answer one query, letting library errors propagate.

        The exception-transparent sibling of :meth:`submit`, for embedded
        callers (the :class:`~repro.core.engine.TripRecommender` facade)
        where a strict budget or an invalid query should raise rather than
        come back as an error-marked result.  Successful answers are still
        recorded in the service stats.
        """
        started = time.perf_counter()
        result = self._searcher.search(query, budget=budget)
        self._stats.record(result, time.perf_counter() - started)
        return result

    def submit(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Answer one query through admission control and stats recording.

        Library errors come back as error-marked results (the executor's
        isolation contract); a query turned away by admission control
        returns an error-marked result with ``degradation_reason``
        ``"rejected by admission control"`` and is counted as rejected,
        not served.
        """
        if not self._admission.try_acquire():
            self._stats.record_rejection()
            return SearchResult(
                items=[],
                exact=False,
                degradation_reason="rejected by admission control",
                error="AdmissionError: service at its in-flight query cap",
            )
        try:
            started = time.perf_counter()
            result = _safe_search(self._searcher, query, budget)
            self._stats.record(result, time.perf_counter() - started)
            return result
        finally:
            self._admission.release()

    def execute_many(
        self,
        queries: Sequence[UOTSQuery],
        budget: SearchBudget | None = None,
        workers: int = 1,
        max_task_retries: int = 2,
    ) -> list[SearchResult]:
        """Answer a batch of queries, in query order.

        ``workers > 1`` fans out over forked processes where the platform
        allows (crashed workers retried up to ``max_task_retries`` pool
        rounds, then finished sequentially); otherwise the batch runs
        through :meth:`submit` in-process.  Every result's
        ``stats.executor`` records the path that produced it.
        """
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if max_task_retries < 0:
            raise QueryError(f"max_task_retries must be >= 0, got {max_task_retries}")
        queries = list(queries)
        if workers > 1 and fork_available() and len(queries) > 1:
            results = _fork_search_batch(
                self._searcher, queries, budget, workers, max_task_retries
            )
            for result in results:
                # Worker wall-clock is the honest latency of a forked query.
                self._stats.record(result, result.stats.elapsed_seconds)
            return results
        results = []
        for query in queries:
            result = self.submit(query, budget)
            if not result.stats.executor:
                result.stats.executor = "sequential"
            results.append(result)
        return results
