"""The serving layer: one database, one searcher, many queries.

:class:`QueryService` is the single substrate every batch-ish caller sits
on — the :class:`~repro.core.engine.TripRecommender` facade, the CLI's
``query``/``bench``/``explain`` commands, :func:`repro.parallel.executor.
parallel_search`, and the bench harness.  It owns one database plus one
stateless searcher (searchers hold no per-query state, so a single
instance serves arbitrarily many queries, sequentially or concurrently)
and layers on what a front-end needs and individual searchers should not
carry:

- **admission control** — a bounded in-flight cap that *rejects* excess
  load (:mod:`repro.service.admission`);
- **failure isolation** — a query that raises a library error comes back
  as an error-marked result, never as an exception that takes the batch
  down;
- **observability** — aggregated :class:`~repro.service.stats.ServiceStats`
  (outcome counters, cache hit rates, p50/p95 latency) and per-query
  :meth:`explain` plans without execution.

``execute_many`` keeps the fork-based fan-out of the parallel executor:
with ``workers > 1`` on a fork platform the batch runs across processes
(the database shared copy-on-write), otherwise sequentially in-process —
same results either way, by the executor's containment contract.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Sequence

from repro.core.plan import QueryPlan, Searcher
from repro.core.query import UOTSQuery
from repro.core.registry import make_searcher
from repro.core.results import SearchResult
from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.obs.adapters import bind_database, bind_service_stats
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Tracer, activated
from repro.parallel.executor import _fork_search_batch, _safe_search, fork_available
from repro.resilience.budget import SearchBudget
from repro.service.admission import AdmissionController
from repro.service.stats import ServiceStats

__all__ = ["QueryService"]


class QueryService:
    """A query front-end over one database and one shared searcher.

    Parameters
    ----------
    database:
        The indexed trajectory database to serve.
    algorithm:
        Registry name of the search algorithm (see
        :mod:`repro.core.registry`).
    admission:
        ``None`` (unbounded), an in-flight cap as an ``int``, or a
        pre-built :class:`AdmissionController`.
    trace:
        ``None``/``False`` (default, tracing off), ``True`` for a fresh
        :class:`~repro.obs.trace.Tracer`, or a pre-built tracer to share.
        When set, every query the service answers runs under an ambient
        ``query`` span with plan/execute/stage children (read them back
        via :attr:`tracer`).
    metrics:
        ``None``/``False`` (default, no registry binding), ``True`` for
        the process-wide default registry, or an explicit
        :class:`~repro.obs.metrics.MetricsRegistry`.  When set, the
        service's stats and the database's cross-query caches are bound
        as collectors, and per-query latency/executor-path instruments
        are recorded live.
    **searcher_kwargs:
        Tuning kwargs forwarded to the registry factory (``alt=``,
        ``batch_size=``, ``refinement=``, ``scheduler=``).
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        algorithm: str = "collaborative",
        admission: AdmissionController | int | None = None,
        trace: Tracer | bool | None = None,
        metrics: MetricsRegistry | bool | None = None,
        **searcher_kwargs,
    ):
        self._database = database
        self._algorithm = algorithm
        self._searcher = make_searcher(database, algorithm, **searcher_kwargs)
        self._admission = (
            admission
            if isinstance(admission, AdmissionController)
            else AdmissionController(admission)
        )
        self._stats = ServiceStats()
        if trace is True:
            trace = Tracer()
        elif trace is False:
            trace = None
        self._tracer: Tracer | None = trace
        if metrics is True:
            metrics = get_registry()
        elif metrics is False:
            # Not `metrics or None`: an empty registry has len() == 0 and
            # would be discarded by truthiness.
            metrics = None
        self._metrics: MetricsRegistry | None = metrics
        if self._metrics is not None:
            bind_service_stats(self._stats, self._metrics)
            bind_database(database, self._metrics)
            self._latency = self._metrics.histogram(
                "repro_service_latency_seconds", "Per-query service latency"
            )
            self._executor_paths = self._metrics.counter(
                "repro_executor_queries_total",
                "Queries answered, by executor path",
            )
            self._executor_retries = self._metrics.counter(
                "repro_executor_retries_total",
                "Query re-submissions after worker crashes plus absorbed "
                "storage retries",
            )
        else:
            self._latency = None
            self._executor_paths = None
            self._executor_retries = None

    # ------------------------------------------------------------ accessors
    @property
    def database(self) -> TrajectoryDatabase:
        """The underlying trajectory database."""
        return self._database

    @property
    def searcher(self) -> Searcher:
        """The shared, stateless searcher instance."""
        return self._searcher

    @property
    def algorithm(self) -> str:
        """The registry name the service was built with."""
        return self._algorithm

    @property
    def admission(self) -> AdmissionController:
        """The admission controller guarding :meth:`submit`."""
        return self._admission

    @property
    def stats(self) -> ServiceStats:
        """Aggregated service-level statistics."""
        return self._stats

    @property
    def tracer(self) -> Tracer | None:
        """The tracer queries run under (``None`` when tracing is off)."""
        return self._tracer

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The bound metrics registry (``None`` when metrics are off)."""
        return self._metrics

    # ------------------------------------------------------------- planning
    def plan(self, query: UOTSQuery) -> QueryPlan:
        """The searcher's plan, stamped with the *registry* name.

        Variants share searcher classes (``collaborative-rr`` is a pinned
        ``CollaborativeSearcher``), so the class-level plan name is
        rewritten to the name the service actually serves under.
        """
        plan = self._searcher.plan(query)
        if plan.algorithm != self._algorithm:
            plan = replace(plan, algorithm=self._algorithm)
        return plan

    def explain(self, query: UOTSQuery) -> str:
        """Render the query's plan without executing it."""
        return self.plan(query).describe()

    # ------------------------------------------------------------ execution
    @contextmanager
    def _traced(self, name: str, **attributes):
        """Run a block under the service tracer (a no-op when tracing is
        off); yields the open span or ``None``."""
        if self._tracer is None:
            yield None
            return
        with activated(self._tracer):
            with self._tracer.span(name, **attributes) as span:
                yield span

    def _record(self, result: SearchResult, elapsed_seconds: float) -> None:
        """THE recording path: every answered query — ``search``,
        ``submit``, both ``execute_many`` branches — folds into the
        service stats (and live metrics) through here, so outcome
        counters and the latency reservoir can never diverge between
        single-process and forked execution.
        """
        self._stats.record(result, elapsed_seconds)
        if self._metrics is not None:
            self._latency.observe(elapsed_seconds)
            self._executor_paths.inc(path=result.stats.executor or "in-process")
            if result.stats.retries:
                self._executor_retries.inc(result.stats.retries)

    def search(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Answer one query, letting library errors propagate.

        The exception-transparent sibling of :meth:`submit`, for embedded
        callers (the :class:`~repro.core.engine.TripRecommender` facade)
        where a strict budget or an invalid query should raise rather than
        come back as an error-marked result.  Successful answers are still
        recorded in the service stats.
        """
        started = time.perf_counter()
        with self._traced("query", algorithm=self._algorithm, k=query.k):
            result = self._searcher.search(query, budget=budget)
        self._record(result, time.perf_counter() - started)
        return result

    def submit(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Answer one query through admission control and stats recording.

        Library errors come back as error-marked results (the executor's
        isolation contract); a query turned away by admission control
        returns an error-marked result with ``degradation_reason``
        ``"rejected by admission control"`` and is counted as rejected,
        not served.
        """
        return self._submit(query, budget, None)

    def _submit(
        self,
        query: UOTSQuery,
        budget: SearchBudget | None,
        executor_label: str | None,
    ) -> SearchResult:
        if not self._admission.try_acquire():
            self._stats.record_rejection()
            return SearchResult(
                items=[],
                exact=False,
                degradation_reason="rejected by admission control",
                error="AdmissionError: service at its in-flight query cap",
            )
        try:
            started = time.perf_counter()
            with self._traced("query", algorithm=self._algorithm, k=query.k):
                result = _safe_search(self._searcher, query, budget)
            if executor_label is not None and not result.stats.executor:
                result.stats.executor = executor_label
            self._record(result, time.perf_counter() - started)
            return result
        finally:
            self._admission.release()

    def execute_many(
        self,
        queries: Sequence[UOTSQuery],
        budget: SearchBudget | None = None,
        workers: int = 1,
        max_task_retries: int = 2,
    ) -> list[SearchResult]:
        """Answer a batch of queries, in query order.

        ``workers > 1`` fans out over forked processes where the platform
        allows (crashed workers retried up to ``max_task_retries`` pool
        rounds, then finished sequentially); otherwise the batch runs
        through :meth:`submit` in-process.  Every result's
        ``stats.executor`` records the path that produced it.
        """
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if max_task_retries < 0:
            raise QueryError(f"max_task_retries must be >= 0, got {max_task_retries}")
        queries = list(queries)
        if workers > 1 and fork_available() and len(queries) > 1:
            with self._traced(
                "execute_many", queries=len(queries), workers=workers
            ):
                results = _fork_search_batch(
                    self._searcher, queries, budget, workers, max_task_retries
                )
            for result in results:
                # Worker wall-clock is the honest latency of a forked query.
                self._record(result, result.stats.elapsed_seconds)
            return results
        with self._traced("execute_many", queries=len(queries), workers=1):
            return [self._submit(query, budget, "sequential") for query in queries]
