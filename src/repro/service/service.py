"""The serving layer: one database, one searcher, many queries.

:class:`QueryService` is the single substrate every batch-ish caller sits
on — the :class:`~repro.core.engine.TripRecommender` facade, the CLI's
``query``/``bench``/``explain`` commands, :func:`repro.parallel.executor.
parallel_search`, and the bench harness.  It owns one database plus one
stateless searcher (searchers hold no per-query state, so a single
instance serves arbitrarily many queries, sequentially or concurrently)
and layers on what a front-end needs and individual searchers should not
carry:

- **admission control** — a bounded in-flight cap that *rejects* excess
  load (:mod:`repro.service.admission`);
- **failure isolation** — a query that raises a library error comes back
  as an error-marked result, never as an exception that takes the batch
  down;
- **observability** — aggregated :class:`~repro.service.stats.ServiceStats`
  (outcome counters, cache hit rates, p50/p95 latency) and per-query
  :meth:`explain` plans without execution;
- **result caching** — an optional bounded
  :class:`~repro.perf.result_cache.ResultCache` mapping a canonical query
  fingerprint to a completed result, so hot repeated trips are answered in
  O(1).  Hits carry ``stats.cache = "result"`` and are served *before*
  admission control (they do no search work, so they never compete for an
  in-flight slot); budgeted queries bypass the cache in both directions,
  and any database mutation clears it through the database's invalidation
  hook.

``execute_many`` keeps the fork-based fan-out of the parallel executor:
with ``workers > 1`` on a fork platform the batch runs across processes
(the database shared copy-on-write), otherwise sequentially in-process —
same results either way, by the executor's containment contract.  Both
paths pass the same admission gate: the forked fan-out claims one batch
slot up front and rejects the whole batch when the controller is
saturated, exactly as the sequential path would reject each query.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Hashable, Sequence

from repro.core.plan import QueryPlan, Searcher
from repro.core.query import UOTSQuery
from repro.core.registry import get_spec, make_searcher
from repro.core.results import SearchResult
from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.obs.adapters import bind_database, bind_result_cache, bind_service_stats
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Tracer, activated
from repro.parallel.executor import _fork_search_batch, _safe_search, fork_available
from repro.perf.result_cache import ResultCache, query_fingerprint
from repro.resilience.budget import SearchBudget
from repro.service.admission import AdmissionController
from repro.service.stats import ServiceStats

__all__ = ["QueryService"]


class QueryService:
    """A query front-end over one database and one shared searcher.

    Parameters
    ----------
    database:
        The indexed trajectory database to serve.
    algorithm:
        Registry name of the search algorithm (see
        :mod:`repro.core.registry`).
    admission:
        ``None`` (unbounded), an in-flight cap as an ``int``, or a
        pre-built :class:`AdmissionController`.
    trace:
        ``None``/``False`` (default, tracing off), ``True`` for a fresh
        :class:`~repro.obs.trace.Tracer`, or a pre-built tracer to share.
        When set, every query the service answers runs under an ambient
        ``query`` span with plan/execute/stage children (read them back
        via :attr:`tracer`).
    metrics:
        ``None``/``False`` (default, no registry binding), ``True`` for
        the process-wide default registry, or an explicit
        :class:`~repro.obs.metrics.MetricsRegistry`.  When set, the
        service's stats and the database's cross-query caches are bound
        as collectors, and per-query latency/executor-path instruments
        are recorded live.
    result_cache:
        ``None``/``False``/``0`` (default, no result caching), an entry
        bound as an ``int``, ``True`` for the default bound, or a
        pre-built :class:`~repro.perf.result_cache.ResultCache` to share
        between services.  When enabled, exact un-budgeted answers are
        cached under a canonical query fingerprint and identical repeats
        are served in O(1); the cache is registered with the database's
        invalidation hook so ``add``/``remove`` clear it.
    **searcher_kwargs:
        Tuning kwargs forwarded to the registry factory (``alt=``,
        ``batch_size=``, ``refinement=``, ``scheduler=``).
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        algorithm: str = "collaborative",
        admission: AdmissionController | int | None = None,
        trace: Tracer | bool | None = None,
        metrics: MetricsRegistry | bool | None = None,
        result_cache: ResultCache | int | bool | None = None,
        **searcher_kwargs,
    ):
        self._database = database
        self._algorithm = algorithm
        self._searcher = make_searcher(database, algorithm, **searcher_kwargs)
        self._admission = (
            admission
            if isinstance(admission, AdmissionController)
            else AdmissionController(admission)
        )
        self._stats = ServiceStats()
        if result_cache is True:
            result_cache = ResultCache()
        elif not isinstance(result_cache, ResultCache):
            # int capacity (0/None/False mean disabled, like LRUCache).
            result_cache = ResultCache(int(result_cache)) if result_cache else None
        if result_cache is not None and not result_cache.enabled:
            result_cache = None
        self._result_cache: ResultCache | None = result_cache
        if result_cache is not None:
            # The fingerprint pins the *resolved* serving configuration, so
            # services sharing one cache can never alias across tunings.
            self._tuning_key = tuple(
                sorted(get_spec(algorithm).resolve_tuning(**searcher_kwargs).items())
            )
            database.add_invalidation_listener(result_cache.on_mutation)
        else:
            self._tuning_key = ()
        if trace is True:
            trace = Tracer()
        elif trace is False:
            trace = None
        self._tracer: Tracer | None = trace
        if metrics is True:
            metrics = get_registry()
        elif metrics is False:
            # Not `metrics or None`: an empty registry has len() == 0 and
            # would be discarded by truthiness.
            metrics = None
        self._metrics: MetricsRegistry | None = metrics
        if self._metrics is not None:
            bind_service_stats(self._stats, self._metrics)
            bind_database(database, self._metrics)
            if self._result_cache is not None:
                bind_result_cache(self._result_cache, self._metrics)
            self._latency = self._metrics.histogram(
                "repro_service_latency_seconds", "Per-query service latency"
            )
            self._executor_paths = self._metrics.counter(
                "repro_executor_queries_total",
                "Queries answered, by executor path",
            )
            self._executor_retries = self._metrics.counter(
                "repro_executor_retries_total",
                "Query re-submissions after worker crashes plus absorbed "
                "storage retries",
            )
        else:
            self._latency = None
            self._executor_paths = None
            self._executor_retries = None

    # ------------------------------------------------------------ accessors
    @property
    def database(self) -> TrajectoryDatabase:
        """The underlying trajectory database."""
        return self._database

    @property
    def searcher(self) -> Searcher:
        """The shared, stateless searcher instance."""
        return self._searcher

    @property
    def algorithm(self) -> str:
        """The registry name the service was built with."""
        return self._algorithm

    @property
    def admission(self) -> AdmissionController:
        """The admission controller guarding :meth:`submit`."""
        return self._admission

    @property
    def stats(self) -> ServiceStats:
        """Aggregated service-level statistics."""
        return self._stats

    @property
    def tracer(self) -> Tracer | None:
        """The tracer queries run under (``None`` when tracing is off)."""
        return self._tracer

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The bound metrics registry (``None`` when metrics are off)."""
        return self._metrics

    @property
    def result_cache(self) -> ResultCache | None:
        """The service-level result cache (``None`` when disabled)."""
        return self._result_cache

    # ------------------------------------------------------------- planning
    def plan(self, query: UOTSQuery) -> QueryPlan:
        """The searcher's plan, stamped with the *registry* name.

        Variants share searcher classes (``collaborative-rr`` is a pinned
        ``CollaborativeSearcher``), so the class-level plan name is
        rewritten to the name the service actually serves under.
        """
        plan = self._searcher.plan(query)
        if plan.algorithm != self._algorithm:
            plan = replace(plan, algorithm=self._algorithm)
        return plan

    def explain(self, query: UOTSQuery) -> str:
        """Render the query's plan without executing it."""
        return self.plan(query).describe()

    # ------------------------------------------------------------ execution
    @contextmanager
    def _traced(self, name: str, **attributes):
        """Run a block under the service tracer (a no-op when tracing is
        off); yields the open span or ``None``."""
        if self._tracer is None:
            yield None
            return
        with activated(self._tracer):
            with self._tracer.span(name, **attributes) as span:
                yield span

    def _record(self, result: SearchResult, elapsed_seconds: float) -> None:
        """THE recording path: every answered query — ``search``,
        ``submit``, both ``execute_many`` branches, result-cache hits —
        folds into the service stats (and live metrics) through here, so
        outcome counters and the latency reservoir can never diverge
        between single-process and forked execution.
        """
        self._stats.record(result, elapsed_seconds)
        if self._metrics is not None:
            self._latency.observe(elapsed_seconds)
            if result.stats.cache == "result":
                path = "result-cache"
            else:
                path = result.stats.executor or "in-process"
            self._executor_paths.inc(path=path)
            if result.stats.retries:
                self._executor_retries.inc(result.stats.retries)

    # ------------------------------------------------------- result caching
    def _cache_key(
        self, query: UOTSQuery, budget: SearchBudget | None
    ) -> Hashable | None:
        """The query's result-cache key, or ``None`` when the cache must
        be bypassed (cache disabled, or the query runs under a budget that
        can trip — degraded answers are execution policy, never cacheable
        and never served from cache)."""
        if self._result_cache is None:
            return None
        effective = budget if budget is not None else query.budget
        if effective is not None and not effective.unlimited:
            return None
        return query_fingerprint(query, self._algorithm, self._tuning_key)

    def _serve_hit(
        self, query: UOTSQuery, hit: SearchResult, started: float
    ) -> SearchResult:
        """Record and return a result-cache hit (an O(1) served query)."""
        with self._traced(
            "query", algorithm=self._algorithm, k=query.k, result_cache="hit"
        ):
            pass  # no execution: the span marks the served hit
        elapsed = time.perf_counter() - started
        hit.stats.elapsed_seconds = elapsed
        self._record(hit, elapsed)
        return hit

    def _query_span_attrs(self, key: Hashable | None) -> dict:
        """Extra ``query`` span attributes for an executed (miss) query."""
        return {"result_cache": "miss"} if key is not None else {}

    @staticmethod
    def _rejected(started: float) -> SearchResult:
        """An admission-rejected result, wall time stamped like every other
        outcome — dashboards must not see zero-latency rejections."""
        result = SearchResult(
            items=[],
            exact=False,
            degradation_reason="rejected by admission control",
            error="AdmissionError: service at its in-flight query cap",
        )
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------ execution
    def search(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Answer one query, letting library errors propagate.

        The exception-transparent sibling of :meth:`submit`, for embedded
        callers (the :class:`~repro.core.engine.TripRecommender` facade)
        where a strict budget or an invalid query should raise rather than
        come back as an error-marked result.  Successful answers are still
        recorded in the service stats.
        """
        started = time.perf_counter()
        key = self._cache_key(query, budget)
        if key is not None:
            hit = self._result_cache.get(key)
            if hit is not None:
                return self._serve_hit(query, hit, started)
        with self._traced(
            "query", algorithm=self._algorithm, k=query.k,
            **self._query_span_attrs(key),
        ):
            result = self._searcher.search(query, budget=budget)
        if key is not None:
            self._result_cache.put(key, result)
        self._record(result, time.perf_counter() - started)
        return result

    def submit(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Answer one query through admission control and stats recording.

        Library errors come back as error-marked results (the executor's
        isolation contract); a query turned away by admission control
        returns an error-marked result with ``degradation_reason``
        ``"rejected by admission control"`` and is counted as rejected,
        not served.  A result-cache hit is answered *before* the admission
        gate — it does no search work, so it never competes for (or is
        turned away from) an in-flight slot.
        """
        return self._submit(query, budget, None)

    def _submit(
        self,
        query: UOTSQuery,
        budget: SearchBudget | None,
        executor_label: str | None,
    ) -> SearchResult:
        started = time.perf_counter()
        key = self._cache_key(query, budget)
        if key is not None:
            hit = self._result_cache.get(key)
            if hit is not None:
                return self._serve_hit(query, hit, started)
        if not self._admission.try_acquire():
            self._stats.record_rejection()
            return self._rejected(started)
        try:
            started = time.perf_counter()
            with self._traced(
                "query", algorithm=self._algorithm, k=query.k,
                **self._query_span_attrs(key),
            ):
                result = _safe_search(self._searcher, query, budget)
            if executor_label is not None and not result.stats.executor:
                result.stats.executor = executor_label
            if key is not None:
                self._result_cache.put(key, result)
            self._record(result, time.perf_counter() - started)
            return result
        finally:
            self._admission.release()

    def execute_many(
        self,
        queries: Sequence[UOTSQuery],
        budget: SearchBudget | None = None,
        workers: int = 1,
        max_task_retries: int = 2,
    ) -> list[SearchResult]:
        """Answer a batch of queries, in query order.

        ``workers > 1`` fans out over forked processes where the platform
        allows (crashed workers retried up to ``max_task_retries`` pool
        rounds, then finished sequentially); otherwise the batch runs
        through :meth:`submit` in-process.  Every result's
        ``stats.executor`` records the path that produced it.

        The forked fan-out passes the same admission gate as the
        sequential path: the batch claims one in-flight slot before
        forking (released when the batch completes), so a saturated
        controller rejects every query of the batch exactly as sequential
        submission would, and ``rejected`` counters agree across executor
        paths.  With a result cache enabled, queries are probed in the
        parent first — hits are answered O(1) and only misses fork.
        """
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if max_task_retries < 0:
            raise QueryError(f"max_task_retries must be >= 0, got {max_task_retries}")
        queries = list(queries)
        if workers > 1 and fork_available() and len(queries) > 1:
            return self._execute_forked(queries, budget, workers, max_task_retries)
        with self._traced("execute_many", queries=len(queries), workers=1):
            return [self._submit(query, budget, "sequential") for query in queries]

    def _execute_forked(
        self,
        queries: list[UOTSQuery],
        budget: SearchBudget | None,
        workers: int,
        max_task_retries: int,
    ) -> list[SearchResult]:
        """The forked branch of :meth:`execute_many`: admission-gated,
        result-cache probed in the parent, misses fanned out over fork."""
        batch_started = time.perf_counter()
        if not self._admission.try_acquire():
            results = []
            for _ in queries:
                self._stats.record_rejection()
                results.append(self._rejected(batch_started))
            return results
        try:
            results: list[SearchResult | None] = [None] * len(queries)
            keys: list[Hashable | None] = [None] * len(queries)
            pending: list[int] = []
            for i, query in enumerate(queries):
                query_started = time.perf_counter()
                keys[i] = self._cache_key(query, budget)
                hit = (
                    self._result_cache.get(keys[i])
                    if keys[i] is not None
                    else None
                )
                if hit is not None:
                    results[i] = self._serve_hit(query, hit, query_started)
                else:
                    pending.append(i)
            if pending:
                attrs = (
                    {"result_cache_hits": len(queries) - len(pending)}
                    if self._result_cache is not None
                    else {}
                )
                with self._traced(
                    "execute_many", queries=len(queries), workers=workers, **attrs
                ):
                    forked = _fork_search_batch(
                        self._searcher,
                        [queries[i] for i in pending],
                        budget,
                        workers,
                        max_task_retries,
                    )
                for i, result in zip(pending, forked):
                    if keys[i] is not None:
                        self._result_cache.put(keys[i], result)
                    # Worker wall-clock is the honest latency of a forked query.
                    self._record(result, result.stats.elapsed_seconds)
                    results[i] = result
            return results  # type: ignore[return-value]  # every slot filled
        finally:
            self._admission.release()
