"""The serving layer: one database, one searcher, many queries.

:class:`QueryService` is the single substrate every batch-ish caller sits
on — the :class:`~repro.core.engine.TripRecommender` facade, the CLI's
``query``/``bench``/``explain`` commands, :func:`repro.parallel.executor.
parallel_search`, and the bench harness.  It owns one database plus one
stateless searcher (searchers hold no per-query state, so a single
instance serves arbitrarily many queries, sequentially or concurrently)
and layers on what a front-end needs and individual searchers should not
carry:

- **admission control** — a bounded in-flight cap that *rejects* excess
  load (:mod:`repro.service.admission`); with an
  :class:`~repro.service.admission.OverloadController` the gate grows
  into full overload protection — per-tenant quotas, priority classes,
  cost-based shedding over planned ``estimated_cost``, graceful
  degradation under a policy-tightened budget, and a circuit breaker
  (all off by default; an un-policied service behaves exactly as before);
- **failure isolation** — a query that raises a library error comes back
  as an error-marked result, never as an exception that takes the batch
  down;
- **observability** — aggregated :class:`~repro.service.stats.ServiceStats`
  (outcome counters, cache hit rates, p50/p95 latency) and per-query
  :meth:`explain` plans without execution;
- **result caching** — an optional bounded
  :class:`~repro.perf.result_cache.ResultCache` mapping a canonical query
  fingerprint to a completed result, so hot repeated trips are answered in
  O(1).  Hits carry ``stats.cache = "result"`` and are served *before*
  admission control (they do no search work, so they never compete for an
  in-flight slot); budgeted queries bypass the cache in both directions,
  and any database mutation clears it through the database's invalidation
  hook.

``execute_many`` keeps the fork-based fan-out of the parallel executor:
with ``workers > 1`` on a fork platform the batch runs across processes
(the database shared copy-on-write), otherwise sequentially in-process —
same results either way, by the executor's containment contract.  Both
paths pass the same admission gate: the forked fan-out claims one batch
slot up front and rejects the whole batch when the controller is
saturated, exactly as the sequential path would reject each query.
"""

from __future__ import annotations

import time
from contextlib import ExitStack, contextmanager
from dataclasses import replace
from typing import Hashable, Sequence

from repro.core.plan import QueryPlan, Searcher
from repro.core.query import UOTSQuery
from repro.core.registry import get_spec, make_searcher
from repro.core.results import SearchResult
from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.obs import harvest
from repro.obs.adapters import (
    bind_admission,
    bind_database,
    bind_result_cache,
    bind_service_stats,
    bind_slowlog,
    bind_tracer,
)
from repro.obs.metrics import (
    DRIFT_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
)
from repro.obs.slowlog import SlowLogEntry, SlowQueryJournal
from repro.obs.trace import Tracer, activated
from repro.parallel.executor import _fork_search_batch, _safe_search, fork_available
from repro.perf.result_cache import ResultCache, query_fingerprint
from repro.resilience.budget import SearchBudget
from repro.service.admission import AdmissionController
from repro.service.policy import AdmissionDecision
from repro.service.stats import ServiceStats

__all__ = ["QueryService"]


class QueryService:
    """A query front-end over one database and one shared searcher.

    Parameters
    ----------
    database:
        The indexed trajectory database to serve.
    algorithm:
        Registry name of the search algorithm (see
        :mod:`repro.core.registry`).
    admission:
        ``None`` (unbounded), an in-flight cap as an ``int``, or a
        pre-built :class:`AdmissionController` — in particular an
        :class:`~repro.service.admission.OverloadController` carrying an
        :class:`~repro.service.policy.AdmissionPolicy` for multi-tenant
        quota / priority / cost / breaker protection.
    trace:
        ``None``/``False`` (default, tracing off), ``True`` for a fresh
        :class:`~repro.obs.trace.Tracer`, or a pre-built tracer to share.
        When set, every query the service answers runs under an ambient
        ``query`` span with plan/execute/stage children (read them back
        via :attr:`tracer`).
    metrics:
        ``None``/``False`` (default, no registry binding), ``True`` for
        the process-wide default registry, or an explicit
        :class:`~repro.obs.metrics.MetricsRegistry`.  When set, the
        service's stats and the database's cross-query caches are bound
        as collectors, and per-query latency/executor-path instruments
        are recorded live.
    result_cache:
        ``None``/``False``/``0`` (default, no result caching), an entry
        bound as an ``int``, ``True`` for the default bound, or a
        pre-built :class:`~repro.perf.result_cache.ResultCache` to share
        between services.  When enabled, exact un-budgeted answers are
        cached under a canonical query fingerprint and identical repeats
        are served in O(1); the service registers a typed mutation
        listener on the database so ``add``/``remove`` invalidate only
        the entries they can affect (see
        :meth:`~repro.perf.result_cache.ResultCache.on_event`).
    slowlog:
        ``None``/``False``/``0`` (default, no journal), a worst-N
        capacity as an ``int``, ``True`` for the default capacity, or a
        pre-built :class:`~repro.obs.slowlog.SlowQueryJournal` (e.g. one
        with a latency threshold).  When set, every recorded query past
        the journal's threshold is considered for the bounded worst-N
        ring, capturing fingerprint, plan text, work counters, drift
        ratio, and — when tracing — the stitched trace (read it back via
        :attr:`slowlog` or ``repro slowlog``).
    **searcher_kwargs:
        Tuning kwargs forwarded to the registry factory (``alt=``,
        ``batch_size=``, ``refinement=``, ``scheduler=``).
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        algorithm: str = "collaborative",
        admission: AdmissionController | int | None = None,
        trace: Tracer | bool | None = None,
        metrics: MetricsRegistry | bool | None = None,
        result_cache: ResultCache | int | bool | None = None,
        slowlog: SlowQueryJournal | int | bool | None = None,
        **searcher_kwargs,
    ):
        self._database = database
        self._algorithm = algorithm
        self._searcher = make_searcher(database, algorithm, **searcher_kwargs)
        self._admission = (
            admission
            if isinstance(admission, AdmissionController)
            else AdmissionController(admission)
        )
        self._stats = ServiceStats()
        # The fingerprint pins the *resolved* serving configuration, so
        # services sharing one result cache can never alias across tunings
        # (and slowlog entries identify the exact query + tuning served).
        self._tuning_key = tuple(
            sorted(get_spec(algorithm).resolve_tuning(**searcher_kwargs).items())
        )
        if result_cache is True:
            result_cache = ResultCache()
        elif not isinstance(result_cache, ResultCache):
            # int capacity (0/None/False mean disabled, like LRUCache).
            result_cache = ResultCache(int(result_cache)) if result_cache else None
        if result_cache is not None and not result_cache.enabled:
            result_cache = None
        self._result_cache: ResultCache | None = result_cache
        if result_cache is not None:
            database.add_mutation_listener(self._on_mutation)
        if slowlog is True:
            slowlog = SlowQueryJournal()
        elif not isinstance(slowlog, SlowQueryJournal):
            # int capacity (0/None/False mean disabled, like the caches).
            slowlog = SlowQueryJournal(int(slowlog)) if slowlog else None
        self._slowlog: SlowQueryJournal | None = slowlog
        if trace is True:
            trace = Tracer()
        elif trace is False:
            trace = None
        self._tracer: Tracer | None = trace
        if metrics is True:
            metrics = get_registry()
        elif metrics is False:
            # Not `metrics or None`: an empty registry has len() == 0 and
            # would be discarded by truthiness.
            metrics = None
        self._metrics: MetricsRegistry | None = metrics
        if self._metrics is not None:
            bind_service_stats(self._stats, self._metrics)
            bind_admission(self._admission, self._metrics)
            bind_database(database, self._metrics)
            if self._result_cache is not None:
                bind_result_cache(self._result_cache, self._metrics)
            if self._tracer is not None:
                bind_tracer(self._tracer, self._metrics)
            if self._slowlog is not None:
                bind_slowlog(self._slowlog, self._metrics)
            # Sub-millisecond buckets: result-cache hits and pruned-out
            # queries finish far below DEFAULT_BUCKETS' lowest bound.
            self._latency = self._metrics.histogram(
                "repro_service_latency_seconds",
                "Per-query service latency",
                buckets=LATENCY_BUCKETS,
            )
            self._drift = self._metrics.histogram(
                "repro_plan_drift_ratio",
                "Measured work / planner-estimated cost, by algorithm",
                buckets=DRIFT_BUCKETS,
            )
            self._executor_paths = self._metrics.counter(
                "repro_executor_queries_total",
                "Queries answered, by executor path",
            )
            self._executor_retries = self._metrics.counter(
                "repro_executor_retries_total",
                "Query re-submissions after worker crashes plus absorbed "
                "storage retries",
            )
        else:
            self._latency = None
            self._drift = None
            self._executor_paths = None
            self._executor_retries = None

    # ------------------------------------------------------------ accessors
    @property
    def database(self) -> TrajectoryDatabase:
        """The underlying trajectory database."""
        return self._database

    @property
    def searcher(self) -> Searcher:
        """The shared, stateless searcher instance."""
        return self._searcher

    @property
    def algorithm(self) -> str:
        """The registry name the service was built with."""
        return self._algorithm

    @property
    def admission(self) -> AdmissionController:
        """The admission controller guarding :meth:`submit`."""
        return self._admission

    @property
    def stats(self) -> ServiceStats:
        """Aggregated service-level statistics."""
        return self._stats

    @property
    def tracer(self) -> Tracer | None:
        """The tracer queries run under (``None`` when tracing is off)."""
        return self._tracer

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The bound metrics registry (``None`` when metrics are off)."""
        return self._metrics

    @property
    def result_cache(self) -> ResultCache | None:
        """The service-level result cache (``None`` when disabled)."""
        return self._result_cache

    @property
    def slowlog(self) -> SlowQueryJournal | None:
        """The slow-query journal (``None`` when disabled)."""
        return self._slowlog

    # ------------------------------------------------------------- planning
    def plan(self, query: UOTSQuery) -> QueryPlan:
        """The searcher's plan, stamped with the *registry* name.

        Variants share searcher classes (``collaborative-rr`` is a pinned
        ``CollaborativeSearcher``), so the class-level plan name is
        rewritten to the name the service actually serves under.
        """
        plan = self._searcher.plan(query)
        if plan.algorithm != self._algorithm:
            plan = replace(plan, algorithm=self._algorithm)
        return plan

    def explain(self, query: UOTSQuery) -> str:
        """Render the query's plan without executing it.

        Once the service has served drift-comparable queries under this
        algorithm, the plan text gains an ``observed drift`` line — how
        measured work has actually compared to estimates like this one.
        """
        text = self.plan(query).describe()
        summary = self._stats.drift_summary(self._algorithm)
        if summary is not None:
            text += (
                f"\nobserved drift: actual/estimated "
                f"x{summary['mean_ratio']:.2f} mean "
                f"({summary['min_ratio']:.2f}..{summary['max_ratio']:.2f}) "
                f"over {summary['queries']} queries"
            )
        return text

    # ------------------------------------------------------------ execution
    @contextmanager
    def _traced(self, name: str, **attributes):
        """Run a block under the service tracer (a no-op when tracing is
        off); yields the open span or ``None``.

        When metrics are bound, the block also runs with the service
        registry installed as the telemetry harvest sink, so counter
        deltas from any forked workers under it merge into *this*
        service's registry (``repro_worker_*`` series).
        """
        with ExitStack() as stack:
            if self._metrics is not None:
                stack.enter_context(harvest.sink_to(self._metrics))
            if self._tracer is None:
                yield None
                return
            stack.enter_context(activated(self._tracer))
            with self._tracer.span(name, **attributes) as span:
                yield span

    def _record(
        self,
        result: SearchResult,
        elapsed_seconds: float,
        query: UOTSQuery | None = None,
        tenant: str | None = None,
        priority: str | None = None,
        policy_degraded: bool = False,
    ) -> None:
        """THE recording path: every answered query — ``search``,
        ``submit``, both ``execute_many`` branches, result-cache hits —
        folds into the service stats (and live metrics) through here, so
        outcome counters, the latency reservoir, drift accounting, and
        the slow-query journal can never diverge between single-process
        and forked execution.
        """
        self._stats.record(
            result,
            elapsed_seconds,
            tenant=tenant,
            priority=priority,
            policy_degraded=policy_degraded,
        )
        drift = self._record_drift(result)
        if self._metrics is not None:
            self._latency.observe(elapsed_seconds)
            if result.stats.cache == "result":
                path = "result-cache"
            else:
                path = result.stats.executor or "in-process"
            self._executor_paths.inc(path=path)
            if result.stats.retries:
                self._executor_retries.inc(result.stats.retries)
        if (
            self._slowlog is not None
            and query is not None
            and self._slowlog.would_record(elapsed_seconds)
        ):
            self._journal(query, result, elapsed_seconds, drift)

    def _record_drift(self, result: SearchResult) -> float | None:
        """Fold one executed query's plan-vs-actual comparison; returns the
        drift ratio, or ``None`` when the query carries no comparable
        estimate (result-cache hits, failures, plan-less search paths)."""
        stats = result.stats
        if (
            result.error is not None
            or stats.cache == "result"
            or stats.estimated_cost <= 0.0
        ):
            return None
        actual = float(stats.expanded_vertices + stats.similarity_evaluations)
        self._stats.record_drift(self._algorithm, stats.estimated_cost, actual)
        ratio = actual / stats.estimated_cost
        if self._drift is not None:
            self._drift.observe(ratio, algorithm=self._algorithm)
        return ratio

    def _journal(
        self,
        query: UOTSQuery,
        result: SearchResult,
        elapsed_seconds: float,
        drift: float | None,
    ) -> None:
        """Admit one slow query to the journal (caller pre-checked
        :meth:`~repro.obs.slowlog.SlowQueryJournal.would_record`).  The
        describe text is deferred: re-planning a sharded query costs
        milliseconds, so the entry carries a provider that renders it on
        first read instead of taxing the serving path."""
        trace = None
        if self._tracer is not None:
            root = self._tracer.last_trace()
            # Only attach a root this query owns: forked-batch queries
            # share one execute_many root, which must not be duplicated
            # into every entry of the batch.
            if root is not None and root.name == "query":
                trace = root
        self._slowlog.record(
            SlowLogEntry(
                fingerprint=query_fingerprint(
                    query, self._algorithm, self._tuning_key
                ),
                algorithm=self._algorithm,
                latency_seconds=elapsed_seconds,
                stats=result.stats,
                plan_provider=lambda: self.plan(query).describe(),
                trace=trace,
                drift_ratio=drift,
                degradation_reason=result.degradation_reason,
                error=result.error,
            )
        )

    # ------------------------------------------------------- result caching
    def _on_mutation(self, event) -> None:
        """Database mutation listener: scoped result-cache invalidation.

        Routes the typed event into the result cache with the database's
        landmark/sigma support (the add-survival bound), folds the scope
        into the service stats, and — when tracing — records an
        ``invalidation`` span carrying kind / trajectory id / dropped /
        retained so ingest churn is visible next to the queries it
        interleaves with.
        """
        dropped, retained = self._result_cache.on_event(event, self._database)
        self._stats.record_invalidation(event.kind, dropped, retained)
        with self._traced(
            "invalidation",
            kind=event.kind,
            trajectory_id=event.trajectory_id,
            entries_dropped=dropped,
            entries_retained=retained,
        ):
            pass  # no body: the span records the invalidation scope

    def _cache_key(
        self, query: UOTSQuery, budget: SearchBudget | None
    ) -> Hashable | None:
        """The query's result-cache key, or ``None`` when the cache must
        be bypassed (cache disabled, or the query runs under a budget that
        can trip — degraded answers are execution policy, never cacheable
        and never served from cache)."""
        if self._result_cache is None:
            return None
        effective = budget if budget is not None else query.budget
        if effective is not None and not effective.unlimited:
            return None
        return query_fingerprint(query, self._algorithm, self._tuning_key)

    def _serve_hit(
        self,
        query: UOTSQuery,
        hit: SearchResult,
        started: float,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> SearchResult:
        """Record and return a result-cache hit (an O(1) served query)."""
        with self._traced(
            "query", algorithm=self._algorithm, k=query.k, result_cache="hit",
            **self._label_span_attrs(tenant, priority),
        ):
            pass  # no execution: the span marks the served hit
        elapsed = time.perf_counter() - started
        hit.stats.elapsed_seconds = elapsed
        self._record(hit, elapsed, query=query, tenant=tenant, priority=priority)
        return hit

    def _query_span_attrs(self, key: Hashable | None) -> dict:
        """Extra ``query`` span attributes for an executed (miss) query."""
        return {"result_cache": "miss"} if key is not None else {}

    @staticmethod
    def _label_span_attrs(tenant: str | None, priority: str | None) -> dict:
        """Tenant/priority span attributes (empty for unlabelled traffic,
        keeping default-configuration traces byte-identical)."""
        attrs = {}
        if tenant is not None:
            attrs["tenant"] = tenant
        if priority is not None:
            attrs["priority"] = priority
        return attrs

    @staticmethod
    def _rejected(
        started: float, decision: AdmissionDecision | None = None
    ) -> SearchResult:
        """An admission-rejected result, wall time stamped like every other
        outcome — dashboards must not see zero-latency rejections.

        A policy shed (non-empty ``decision.reason``) carries the reason
        slug and the human detail; the legacy un-policied cap keeps its
        historical strings exactly.
        """
        if decision is None or not decision.reason:
            reason = "rejected by admission control"
            error = "AdmissionError: service at its in-flight query cap"
        else:
            reason = f"shed by admission policy ({decision.reason})"
            error = f"AdmissionError: {decision.detail}"
        result = SearchResult(
            items=[], exact=False, degradation_reason=reason, error=error
        )
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------ execution
    def search(
        self,
        query: UOTSQuery,
        budget: SearchBudget | None = None,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> SearchResult:
        """Answer one query, letting library errors propagate.

        The exception-transparent sibling of :meth:`submit`, for embedded
        callers (the :class:`~repro.core.engine.TripRecommender` facade)
        where a strict budget or an invalid query should raise rather than
        come back as an error-marked result.  Successful answers are still
        recorded in the service stats.  ``tenant``/``priority`` label the
        stats lanes and trace span; this path does not pass the admission
        gate (it never rejects), so no quota or shed policy applies.
        """
        started = time.perf_counter()
        key = self._cache_key(query, budget)
        if key is not None:
            hit = self._result_cache.get(key)
            if hit is not None:
                return self._serve_hit(query, hit, started, tenant, priority)
        with self._traced(
            "query", algorithm=self._algorithm, k=query.k,
            **self._query_span_attrs(key),
            **self._label_span_attrs(tenant, priority),
        ):
            result = self._searcher.search(query, budget=budget)
        self._admission.record_outcome(result)
        if key is not None:
            self._result_cache.put(key, result, query=query)
        self._record(
            result,
            time.perf_counter() - started,
            query=query,
            tenant=tenant,
            priority=priority,
        )
        return result

    def submit(
        self,
        query: UOTSQuery,
        budget: SearchBudget | None = None,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> SearchResult:
        """Answer one query through admission control and stats recording.

        Library errors come back as error-marked results (the executor's
        isolation contract); a query turned away by admission control
        returns an error-marked result with ``degradation_reason``
        ``"rejected by admission control"`` (or the policy shed reason)
        and is counted as rejected, not served.  A result-cache hit is
        answered *before* the admission gate — it does no search work, so
        it never competes for (or is turned away from) an in-flight slot.

        ``tenant`` and ``priority`` identify the caller to the admission
        policy (quotas, class-based shedding) and label the stats lanes
        and trace span.  An unknown ``priority`` raises
        :class:`~repro.errors.QueryError` — like invalid ``workers``, it
        is an argument error, not a query outcome.  Under a cost policy
        the query is planned first; a borderline-expensive admission may
        come back *degraded*: the service attaches the policy's tightened
        budget (a caller-supplied ``budget`` always wins) and the answer
        is anytime (``exact=False`` with a usable ``confirmed_prefix()``),
        counted under ``policy_degraded_results``.
        """
        return self._submit(query, budget, None, tenant, priority)

    def _submit(
        self,
        query: UOTSQuery,
        budget: SearchBudget | None,
        executor_label: str | None,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> SearchResult:
        started = time.perf_counter()
        key = self._cache_key(query, budget)
        if key is not None:
            hit = self._result_cache.get(key)
            if hit is not None:
                return self._serve_hit(query, hit, started, tenant, priority)
        decision = self._admit_decision(query, tenant, priority)
        if not decision.admitted:
            return self._reject(decision, started, query, tenant, priority)
        return self._execute_admitted(
            query, budget, decision, key, executor_label, tenant, priority
        )

    def _admit_decision(
        self,
        query: UOTSQuery,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> AdmissionDecision:
        """One query's admission decision, planned first when the policy
        wants a cost opinion.

        A seam of :meth:`_submit`, split out so the asynchronous gateway
        (:class:`repro.gateway.AsyncQueryService`) can run the cheap
        admission step on the event loop and bridge only the admitted
        execution onto its thread pool.  An admitted decision MUST be
        followed by exactly one :meth:`_execute_admitted` (which releases
        the slot) or one ``admission.release(decision)`` — never both.
        """
        cost = None
        if self._admission.needs_plan:
            try:
                cost = self.plan(query).estimated_cost
            except Exception:
                # An unplannable query is an invalid one; admission has no
                # cost opinion and _safe_search produces the error result.
                cost = None
        return self._admission.admit(tenant=tenant, priority=priority, cost=cost)

    def _reject(
        self,
        decision: AdmissionDecision,
        started: float,
        query: UOTSQuery,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> SearchResult:
        """Record and build the result of a refused admission decision."""
        self._stats.record_rejection(
            reason=decision.reason or None, tenant=tenant, priority=priority
        )
        if decision.reason:
            with self._traced(
                "query", algorithm=self._algorithm, k=query.k,
                admission="shed", shed_reason=decision.reason,
                **self._label_span_attrs(tenant, priority),
            ):
                pass  # never executed; the span records the shed
        return self._rejected(started, decision)

    def _execute_admitted(
        self,
        query: UOTSQuery,
        budget: SearchBudget | None,
        decision: AdmissionDecision,
        key: Hashable | None,
        executor_label: str | None = None,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> SearchResult:
        """Execute one *admitted* query: search, record, release the slot.

        The other half of the :meth:`_admit_decision` seam.  Runs wholly
        on the calling thread (the gateway calls it from a pool worker),
        owns the admission slot it was handed, and releases it on every
        path.  ``key`` is the query's result-cache key from
        :meth:`_cache_key` (``None`` bypasses the cache).
        """
        try:
            # The policy's tightened budget applies only when the caller
            # did not bring their own — an explicit budget always wins.
            policy_budget = decision.budget if budget is None else None
            effective = policy_budget if policy_budget is not None else budget
            degrade_attrs = (
                {"admission": "degraded", "admission_reason": decision.reason}
                if policy_budget is not None
                else {}
            )
            started = time.perf_counter()
            with self._traced(
                "query", algorithm=self._algorithm, k=query.k,
                **self._query_span_attrs(key),
                **self._label_span_attrs(tenant, priority),
                **degrade_attrs,
            ):
                result = _safe_search(self._searcher, query, effective)
            if executor_label is not None and not result.stats.executor:
                result.stats.executor = executor_label
            self._admission.record_outcome(result)
            policy_degraded = (
                policy_budget is not None
                and result.error is None
                and not result.exact
            )
            if policy_degraded:
                note = f"admission degrade: {decision.detail}"
                result.degradation_reason = (
                    f"{result.degradation_reason}; {note}"
                    if result.degradation_reason
                    else note
                )
            if key is not None:
                self._result_cache.put(key, result, query=query)
            self._record(
                result,
                time.perf_counter() - started,
                query=query,
                tenant=tenant,
                priority=priority,
                policy_degraded=policy_degraded,
            )
            return result
        finally:
            self._admission.release(decision)

    def execute_many(
        self,
        queries: Sequence[UOTSQuery],
        budget: SearchBudget | None = None,
        workers: int = 1,
        max_task_retries: int = 2,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> list[SearchResult]:
        """Answer a batch of queries, in query order.

        ``workers > 1`` fans out over forked processes where the platform
        allows (crashed workers retried up to ``max_task_retries`` pool
        rounds, then finished sequentially); otherwise the batch runs
        through :meth:`submit` in-process.  Every result's
        ``stats.executor`` records the path that produced it.

        The forked fan-out passes the same admission gate as the
        sequential path: the batch claims one in-flight slot before
        forking (released when the batch completes), so a saturated
        controller rejects every query of the batch exactly as sequential
        submission would, and ``rejected`` counters agree across executor
        paths.  With a result cache enabled, queries are probed in the
        parent first — hits are answered O(1) and only misses fork.

        ``tenant``/``priority`` apply to every query of the batch (the
        forked path admits the whole batch under those labels).  While an
        overload controller's circuit breaker is open or probing, the
        batch runs sequentially even when ``workers > 1`` — a half-open
        probe must not fan out over the pool that may be the broken part.
        """
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if max_task_retries < 0:
            raise QueryError(f"max_task_retries must be >= 0, got {max_task_retries}")
        queries = list(queries)
        if (
            workers > 1
            and fork_available()
            and len(queries) > 1
            and not self._admission.prefer_sequential
        ):
            return self._execute_forked(
                queries, budget, workers, max_task_retries, tenant, priority
            )
        with self._traced("execute_many", queries=len(queries), workers=1):
            return [
                self._submit(query, budget, "sequential", tenant, priority)
                for query in queries
            ]

    def _execute_forked(
        self,
        queries: list[UOTSQuery],
        budget: SearchBudget | None,
        workers: int,
        max_task_retries: int,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> list[SearchResult]:
        """The forked branch of :meth:`execute_many`: admission-gated,
        result-cache probed in the parent, misses fanned out over fork.

        The batch claims one admission slot under the caller's tenant and
        priority (no per-query cost opinion: a batch is deliberate bulk
        work, and cost shedding is a per-query interactive policy)."""
        batch_started = time.perf_counter()
        decision = self._admission.admit(tenant=tenant, priority=priority)
        if not decision.admitted:
            results = []
            for _ in queries:
                self._stats.record_rejection(
                    reason=decision.reason or None,
                    tenant=tenant,
                    priority=priority,
                )
                results.append(self._rejected(batch_started, decision))
            return results
        try:
            results: list[SearchResult | None] = [None] * len(queries)
            keys: list[Hashable | None] = [None] * len(queries)
            pending: list[int] = []
            for i, query in enumerate(queries):
                query_started = time.perf_counter()
                keys[i] = self._cache_key(query, budget)
                hit = (
                    self._result_cache.get(keys[i])
                    if keys[i] is not None
                    else None
                )
                if hit is not None:
                    results[i] = self._serve_hit(
                        query, hit, query_started, tenant, priority
                    )
                else:
                    pending.append(i)
            if pending:
                attrs = (
                    {"result_cache_hits": len(queries) - len(pending)}
                    if self._result_cache is not None
                    else {}
                )
                with self._traced(
                    "execute_many", queries=len(queries), workers=workers, **attrs
                ):
                    forked = _fork_search_batch(
                        self._searcher,
                        [queries[i] for i in pending],
                        budget,
                        workers,
                        max_task_retries,
                    )
                for i, result in zip(pending, forked):
                    if keys[i] is not None:
                        self._result_cache.put(keys[i], result, query=queries[i])
                    self._admission.record_outcome(result)
                    # Worker wall-clock is the honest latency of a forked query.
                    self._record(
                        result,
                        result.stats.elapsed_seconds,
                        query=queries[i],
                        tenant=tenant,
                        priority=priority,
                    )
                    results[i] = result
            return results  # type: ignore[return-value]  # every slot filled
        finally:
            self._admission.release(decision)
