"""Service-level aggregated statistics.

One :class:`ServiceStats` instance rides along with a
:class:`~repro.service.service.QueryService` and accumulates across every
query the service answers: outcome counters (served / exact / degraded /
failed / rejected), the merged per-query work counters, cache hit rates
over the database's cross-query caches, and a bounded latency reservoir
from which p50/p95 are read.

When the service runs under an overload policy, additional *lanes* are
kept — per-tenant and per-priority served/rejected counts, shed counts by
reason, and the policy-degraded count.  Lanes are created lazily the
first time a labelled query arrives, and :meth:`snapshot` /
:meth:`describe` only emit them when non-empty, so a service with no
policy configured produces byte-identical output to a build that predates
the overload layer.

Thread-safety: every mutation and every readout goes through one
instance-level lock — the counters, the ``totals`` merge, the lane dicts,
and the latency ring buffer.  :class:`LatencyReservoir` additionally
carries its *own* lock: the gateway's thread-pool bridge hands reservoirs
to direct callers (load benches, per-endpoint reservoirs) that do not sit
behind a ``ServiceStats``, and an unlocked ring buffer under concurrent
``record()`` loses samples and races the cursor.  Together that is the
whole contract concurrent ``submit`` callers rely on: interleaved records
never lose increments, and a ``snapshot()`` taken mid-storm is a
consistent cut.
"""

from __future__ import annotations

import threading

from repro.core.results import SearchResult, SearchStats

__all__ = ["LatencyReservoir", "ServiceStats"]


class LatencyReservoir:
    """A bounded sample of per-query latencies (most recent ``capacity``).

    A plain ring buffer, not reservoir sampling: a serving dashboard wants
    *recent* percentiles, and recency is also the cheapest eviction rule.
    Internally locked: gateway worker threads record concurrently, and an
    unlocked ``record`` can lose samples (two threads appending past the
    capacity check) or race the cursor into an ``IndexError``.  Holding
    the owning ``ServiceStats`` lock on top is harmless — the inner lock
    is uncontended there and never taken in the other order.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self._cursor = 0
        self._total = 0

    def record(self, seconds: float) -> None:
        """Add one latency sample, evicting the oldest when full."""
        with self._lock:
            if len(self._samples) < self._capacity:
                self._samples.append(seconds)
            else:
                self._samples[self._cursor] = seconds
                self._cursor = (self._cursor + 1) % self._capacity
            self._total += 1

    @property
    def total_recorded(self) -> int:
        """Lifetime samples recorded (evicted ones included)."""
        with self._lock:
            return self._total

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]) over the sample.

        Returns 0.0 while empty (a dashboard-friendly neutral value).
        """
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = max(1, -(-len(ordered) * p // 100))  # ceil without math import
        return ordered[int(rank) - 1]

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)


class ServiceStats:
    """Aggregated, thread-safe statistics of one query service."""

    def __init__(self, latency_capacity: int = 4096):
        self._lock = threading.Lock()
        self.queries_served = 0
        self.exact_results = 0
        self.degraded_results = 0
        self.failed_queries = 0
        self.rejected_queries = 0
        #: Queries answered from the service-level result cache (these are
        #: also counted in ``queries_served``/``exact_results`` — a hit is
        #: a served exact answer, just an O(1) one).
        self.result_cache_hits = 0
        #: Queries admitted with a policy-tightened budget that came back
        #: inexact (a subset of ``degraded_results``).
        self.policy_degraded_results = 0
        #: Policy sheds by reason slug (legacy un-reasoned rejections only
        #: count in ``rejected_queries``; this dict stays empty).
        self.shed_reasons: dict[str, int] = {}
        #: Per-tenant / per-priority ``{"served": n, "rejected": n}`` lanes,
        #: created lazily on the first labelled query.
        self.tenant_lanes: dict[str, dict[str, int]] = {}
        self.priority_lanes: dict[str, dict[str, int]] = {}
        #: Result-cache invalidation scope, folded in per mutation event
        #: (populated only on services with a result cache under live
        #: ingestion; like the policy lanes, keys stay out of snapshots
        #: until the first event).
        self.invalidation_events = 0
        self.invalidation_kinds: dict[str, int] = {}
        self.invalidation_entries_dropped = 0
        self.invalidation_entries_retained = 0
        #: Merged per-query work counters (:meth:`SearchStats.merge`).
        self.totals = SearchStats()
        self._latencies = LatencyReservoir(latency_capacity)
        #: Per-algorithm plan-vs-actual drift lanes, created lazily on the
        #: first executed query that carried a comparable plan estimate
        #: (like the policy lanes, keys stay out of snapshots until then).
        self.drift_lanes: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------ recording
    @staticmethod
    def _lane(lanes: dict[str, dict[str, int]], key: str) -> dict[str, int]:
        lane = lanes.get(key)
        if lane is None:
            lane = lanes[key] = {"served": 0, "rejected": 0}
        return lane

    def record(
        self,
        result: SearchResult,
        elapsed_seconds: float,
        tenant: str | None = None,
        priority: str | None = None,
        policy_degraded: bool = False,
    ) -> None:
        """Fold one answered query into the aggregates.

        ``tenant``/``priority`` label the query's lanes (omitted for
        unlabelled traffic); ``policy_degraded`` marks an answer produced
        under an admission-tightened budget.
        """
        with self._lock:
            self.queries_served += 1
            if result.error is not None:
                self.failed_queries += 1
            elif result.exact:
                self.exact_results += 1
            else:
                self.degraded_results += 1
                if policy_degraded:
                    self.policy_degraded_results += 1
            if result.stats.cache == "result":
                self.result_cache_hits += 1
            if tenant is not None:
                self._lane(self.tenant_lanes, tenant)["served"] += 1
            if priority is not None:
                self._lane(self.priority_lanes, priority)["served"] += 1
            self.totals.merge(result.stats)
            self._latencies.record(elapsed_seconds)

    def record_invalidation(self, kind: str, dropped: int, retained: int) -> None:
        """Fold one result-cache invalidation event into the aggregates.

        ``kind`` is the mutation kind (``add``/``remove``); ``dropped`` /
        ``retained`` are the entry counts the scoped invalidation removed
        and provably kept for this event.
        """
        with self._lock:
            self.invalidation_events += 1
            self.invalidation_kinds[kind] = self.invalidation_kinds.get(kind, 0) + 1
            self.invalidation_entries_dropped += dropped
            self.invalidation_entries_retained += retained

    def record_drift(self, algorithm: str, estimated: float, actual: float) -> None:
        """Fold one query's plan-vs-actual work comparison into its lane.

        ``estimated`` is the served plan's ``estimated_cost`` (worst-case
        work units), ``actual`` the measured ``expanded_vertices +
        similarity_evaluations``.  Callers skip queries with no comparable
        estimate (cache hits, failures, plan-less paths); the lane tracks
        the drift ratio ``actual / estimated`` — below 1.0 means pruning
        beat the worst case, above 1.0 means the planner under-estimated.
        """
        with self._lock:
            lane = self.drift_lanes.get(algorithm)
            ratio = actual / estimated
            if lane is None:
                lane = self.drift_lanes[algorithm] = {
                    "queries": 0,
                    "estimated_units": 0.0,
                    "actual_units": 0.0,
                    "sum_ratio": 0.0,
                    "min_ratio": ratio,
                    "max_ratio": ratio,
                }
            lane["queries"] += 1
            lane["estimated_units"] += estimated
            lane["actual_units"] += actual
            lane["sum_ratio"] += ratio
            lane["min_ratio"] = min(lane["min_ratio"], ratio)
            lane["max_ratio"] = max(lane["max_ratio"], ratio)

    def drift_summary(self, algorithm: str) -> dict | None:
        """One algorithm's drift lane in snapshot shape (``None`` if unseen)."""
        with self._lock:
            lane = self.drift_lanes.get(algorithm)
            return self._drift_view(lane) if lane else None

    @staticmethod
    def _drift_view(lane: dict[str, float]) -> dict:
        return {
            "queries": int(lane["queries"]),
            "estimated_units": lane["estimated_units"],
            "actual_units": lane["actual_units"],
            "mean_ratio": lane["sum_ratio"] / lane["queries"],
            "min_ratio": lane["min_ratio"],
            "max_ratio": lane["max_ratio"],
        }

    def record_rejection(
        self,
        reason: str | None = None,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> None:
        """Count a query turned away by admission control (never executed).

        A ``reason`` slug attributes the shed to a policy rule; the legacy
        un-policied cap passes none and leaves only ``rejected_queries``.
        """
        with self._lock:
            self.rejected_queries += 1
            if reason:
                self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1
            if tenant is not None:
                self._lane(self.tenant_lanes, tenant)["rejected"] += 1
            if priority is not None:
                self._lane(self.priority_lanes, priority)["rejected"] += 1

    # ------------------------------------------------------------- readouts
    def latency_ms(self, p: float) -> float:
        """The ``p``-th percentile latency, in milliseconds."""
        with self._lock:
            return self._latencies.percentile(p) * 1000.0

    @property
    def p50_ms(self) -> float:
        """Median per-query latency (ms)."""
        return self.latency_ms(50.0)

    @property
    def p95_ms(self) -> float:
        """95th-percentile per-query latency (ms)."""
        return self.latency_ms(95.0)

    @staticmethod
    def _hit_rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    @property
    def distance_cache_hit_rate(self) -> float:
        """Cross-query distance cache hit rate over all served queries."""
        return self._hit_rate(
            self.totals.distance_cache_hits, self.totals.distance_cache_misses
        )

    @property
    def text_cache_hit_rate(self) -> float:
        """Cross-query text-score cache hit rate over all served queries."""
        return self._hit_rate(self.totals.text_cache_hits, self.totals.text_cache_misses)

    def snapshot(self) -> dict:
        """A plain-dict view (stable keys; for logging/serialisation).

        Overload-policy keys (``shed_reasons``, ``policy_degraded_results``,
        ``tenants``, ``priorities``) appear only once the corresponding
        feature has been exercised — an un-policied service's snapshot is
        byte-identical to the pre-overload layout.
        """
        with self._lock:
            p50 = self._latencies.percentile(50.0) * 1000.0
            p95 = self._latencies.percentile(95.0) * 1000.0
            out = {
                "queries_served": self.queries_served,
                "exact_results": self.exact_results,
                "degraded_results": self.degraded_results,
                "failed_queries": self.failed_queries,
                "rejected_queries": self.rejected_queries,
                "result_cache_hits": self.result_cache_hits,
                "p50_ms": p50,
                "p95_ms": p95,
                "distance_cache_hit_rate": self._hit_rate(
                    self.totals.distance_cache_hits,
                    self.totals.distance_cache_misses,
                ),
                "text_cache_hit_rate": self._hit_rate(
                    self.totals.text_cache_hits, self.totals.text_cache_misses
                ),
                "expanded_vertices": self.totals.expanded_vertices,
                "refinements": self.totals.refinements,
            }
            if self.totals.shards_planned:
                out["shards_planned"] = self.totals.shards_planned
                out["shards_executed"] = self.totals.shards_executed
                out["shards_pruned"] = self.totals.shards_pruned
            if self.invalidation_events:
                out["invalidation_events"] = self.invalidation_events
                out["invalidation_kinds"] = dict(
                    sorted(self.invalidation_kinds.items())
                )
                out["invalidation_entries_dropped"] = (
                    self.invalidation_entries_dropped
                )
                out["invalidation_entries_retained"] = (
                    self.invalidation_entries_retained
                )
            if self.policy_degraded_results:
                out["policy_degraded_results"] = self.policy_degraded_results
            if self.shed_reasons:
                out["shed_reasons"] = dict(sorted(self.shed_reasons.items()))
            if self.tenant_lanes:
                out["tenants"] = {
                    tenant: dict(lane)
                    for tenant, lane in sorted(self.tenant_lanes.items())
                }
            if self.priority_lanes:
                out["priorities"] = {
                    priority: dict(lane)
                    for priority, lane in sorted(self.priority_lanes.items())
                }
            if self.drift_lanes:
                out["plan_drift"] = {
                    algorithm: self._drift_view(lane)
                    for algorithm, lane in sorted(self.drift_lanes.items())
                }
            return out

    @staticmethod
    def _render_lanes(lanes: dict[str, dict[str, int]]) -> str:
        return ", ".join(
            f"{name} {lane['served']}/{lane['rejected']}"
            for name, lane in lanes.items()
        )

    def describe(self) -> str:
        """A human-readable multi-line rendering (CLI / logs).

        Like :meth:`snapshot`, the overload-policy lines are appended only
        when their lanes are populated.
        """
        s = self.snapshot()
        lines = [
            f"queries served:  {s['queries_served']} "
            f"(exact {s['exact_results']}, degraded {s['degraded_results']}, "
            f"failed {s['failed_queries']}, rejected {s['rejected_queries']})",
            f"latency:         p50 {s['p50_ms']:.2f} ms, p95 {s['p95_ms']:.2f} ms",
            f"cache hit rate:  distance {s['distance_cache_hit_rate']:.1%}, "
            f"text {s['text_cache_hit_rate']:.1%}, "
            f"result hits {s['result_cache_hits']}",
            f"work:            {s['expanded_vertices']} expanded vertices, "
            f"{s['refinements']} refinements",
        ]
        if "shards_planned" in s:
            lines.append(
                f"shards:          {s['shards_planned']} planned, "
                f"{s['shards_executed']} executed, {s['shards_pruned']} pruned"
            )
        if "invalidation_events" in s:
            kinds = ", ".join(
                f"{kind} {n}" for kind, n in s["invalidation_kinds"].items()
            )
            lines.append(
                f"invalidation:    {s['invalidation_events']} events ({kinds}), "
                f"{s['invalidation_entries_dropped']} entries dropped, "
                f"{s['invalidation_entries_retained']} retained"
            )
        if "shed_reasons" in s:
            shed = ", ".join(f"{r} {n}" for r, n in s["shed_reasons"].items())
            lines.append(f"shed:            {shed}")
        if "policy_degraded_results" in s:
            lines.append(
                f"policy degraded: {s['policy_degraded_results']} "
                f"(tightened budget under load)"
            )
        if "tenants" in s:
            lines.append(
                "tenants:         "
                f"(served/rejected) {self._render_lanes(s['tenants'])}"
            )
        if "priorities" in s:
            lines.append(
                "priorities:      "
                f"(served/rejected) {self._render_lanes(s['priorities'])}"
            )
        if "plan_drift" in s:
            drift = ", ".join(
                f"{algorithm} x{lane['mean_ratio']:.2f} "
                f"({lane['min_ratio']:.2f}..{lane['max_ratio']:.2f}, "
                f"{lane['queries']} queries)"
                for algorithm, lane in s["plan_drift"].items()
            )
            lines.append(f"plan drift:      actual/estimated {drift}")
        return "\n".join(lines)
