"""The serving layer: query front-end, admission control, service stats."""

from repro.service.admission import AdmissionController, OverloadController
from repro.service.breaker import BREAKER_STATE_CODES, CircuitBreaker
from repro.service.policy import (
    DEFAULT_PRIORITY_THRESHOLDS,
    DEFAULT_TENANT,
    PRIORITY_CLASSES,
    AdmissionDecision,
    AdmissionPolicy,
)
from repro.service.service import QueryService
from repro.service.stats import LatencyReservoir, ServiceStats

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "BREAKER_STATE_CODES",
    "CircuitBreaker",
    "DEFAULT_PRIORITY_THRESHOLDS",
    "DEFAULT_TENANT",
    "LatencyReservoir",
    "OverloadController",
    "PRIORITY_CLASSES",
    "QueryService",
    "ServiceStats",
]
