"""The serving layer: query front-end, admission control, service stats."""

from repro.service.admission import AdmissionController
from repro.service.service import QueryService
from repro.service.stats import LatencyReservoir, ServiceStats

__all__ = [
    "AdmissionController",
    "LatencyReservoir",
    "QueryService",
    "ServiceStats",
]
