"""Failure-rate circuit breaker for the serving layer.

A :class:`CircuitBreaker` protects the service from hammering a failing
substrate (a dying disk, a crashing executor pool): repeated
infrastructure failures *trip* it, after which queries are shed instantly
instead of queueing up behind a storage layer that is only going to fail
them slowly.  The state machine is the classic three-state one:

- **closed** — normal serving; consecutive infrastructure failures are
  counted, a success resets the count, and reaching
  ``failure_threshold`` trips the breaker;
- **open** — everything is shed (reason ``breaker_open``) for
  ``cooldown_seconds``; the transition to half-open happens lazily on the
  next state read, so no timer thread exists;
- **half-open** — up to ``half_open_probes`` queries are admitted as
  probes.  The first probe success closes the breaker; any probe failure
  re-opens it for a fresh cooldown.

The clock is injectable (``clock=time.monotonic`` by default) so tests
drive cooldowns deterministically, and every state transition invokes the
optional ``on_transition(to_state)`` hook — the metrics layer mirrors it
into a state gauge and a transitions counter.  All methods are
thread-safe; the breaker is shared by every thread submitting through one
:class:`~repro.service.service.QueryService`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "BREAKER_STATE_CODES"]

#: Numeric encoding of breaker states for the ``repro_service_breaker_state``
#: gauge (ordered by severity so dashboards can alert on ``>= 1``).
BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """A consecutive-failure circuit breaker with lazy timed recovery.

    Parameters
    ----------
    failure_threshold:
        Consecutive infrastructure failures that trip the breaker.
    cooldown_seconds:
        How long the breaker stays open before probing again.
    half_open_probes:
        In-flight probe admissions allowed while half-open.
    clock:
        Monotonic time source (injectable for deterministic tests).
    on_transition:
        Optional ``callable(to_state: str)`` invoked on every state
        change, under the breaker lock — keep it cheap and non-blocking.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str], None] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.half_open_probes = half_open_probes
        self._clock = clock
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_left = 0

    # -------------------------------------------------------------- internals
    def _transition(self, to_state: str) -> None:
        self._state = to_state
        if self.on_transition is not None:
            self.on_transition(to_state)

    def _trip(self) -> None:
        self._consecutive_failures = 0
        self._opened_at = self._clock()
        self._transition(self.OPEN)

    def _advance(self) -> str:
        """Apply the lazy open -> half-open cooldown transition."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._probes_left = self.half_open_probes
            self._transition(self.HALF_OPEN)
        return self._state

    # -------------------------------------------------------------- admission
    @property
    def state(self) -> str:
        """Current state (``closed`` / ``open`` / ``half_open``), cooldown
        applied."""
        with self._lock:
            return self._advance()

    @property
    def state_code(self) -> int:
        """The numeric state (see :data:`BREAKER_STATE_CODES`)."""
        return BREAKER_STATE_CODES[self.state]

    @property
    def consecutive_failures(self) -> int:
        """Consecutive infrastructure failures seen while closed."""
        with self._lock:
            return self._consecutive_failures

    def preflight(self) -> str:
        """The state an admission decision should be made against.

        Identical to :attr:`state`; a separate name because the admission
        path reads it exactly once per query and follows up with
        :meth:`try_probe` only when it came back half-open.
        """
        return self.state

    def try_probe(self) -> bool:
        """Claim one half-open probe slot (``False`` = probe budget spent).

        Only meaningful after a :meth:`preflight` that returned
        ``half_open``; in any other state the answer is ``True`` (the
        breaker imposes no probe limit while closed, and an open breaker
        was already shed at preflight).
        """
        with self._lock:
            if self._advance() != self.HALF_OPEN:
                return True
            if self._probes_left <= 0:
                return False
            self._probes_left -= 1
            return True

    # --------------------------------------------------------------- outcomes
    def record_success(self) -> None:
        """An admitted query completed without infrastructure failure."""
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._consecutive_failures = 0
                self._transition(self.CLOSED)
            elif self._state == self.CLOSED:
                self._consecutive_failures = 0
            # OPEN: a straggler from before the trip; nothing to learn.

    def record_failure(self) -> None:
        """An admitted query failed on infrastructure (storage/executor)."""
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._trip()  # the probe failed: back to a fresh cooldown
            elif self._state == self.CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._trip()
            # OPEN: already shedding; stragglers do not extend the cooldown.

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"threshold={self.failure_threshold}, "
            f"cooldown={self.cooldown_seconds}s)"
        )
