"""Admission control: the bounded-concurrency seam of the serving layer.

A production front-end protects itself by *rejecting* excess load instead
of queueing it without bound.  :class:`AdmissionController` is that seam in
its simplest honest form — a non-blocking in-flight cap.  ``submit`` asks
``try_acquire``; a ``False`` means the query is turned away immediately
(recorded as rejected, never executed) rather than piling onto a queue
whose latency the caller can no longer reason about.

The default controller is unbounded, which keeps single-tenant and test
usage friction-free; services facing real concurrency pass
``max_inflight``.  Multi-tenant policies (per-user quotas, priority
classes) slot in by subclassing — see the ROADMAP open items.
"""

from __future__ import annotations

import threading

__all__ = ["AdmissionController"]


class AdmissionController:
    """A non-blocking in-flight query cap (unbounded when ``None``)."""

    def __init__(self, max_inflight: int | None = None):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self._semaphore = (
            threading.BoundedSemaphore(max_inflight)
            if max_inflight is not None
            else None
        )

    def try_acquire(self) -> bool:
        """Claim an in-flight slot without blocking; ``False`` = reject."""
        if self._semaphore is None:
            return True
        return self._semaphore.acquire(blocking=False)

    def release(self) -> None:
        """Return a slot claimed by a successful :meth:`try_acquire`."""
        if self._semaphore is not None:
            self._semaphore.release()
