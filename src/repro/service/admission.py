"""Admission control: the overload-protection seam of the serving layer.

A production front-end protects itself by *rejecting* excess load instead
of queueing it without bound.  Two controllers implement that here:

- :class:`AdmissionController` — the simple honest form: a non-blocking
  global in-flight cap.  ``submit`` asks :meth:`~AdmissionController.
  admit`; a shed decision means the query is turned away immediately
  (recorded as rejected, never executed) rather than piling onto a queue
  whose latency the caller can no longer reason about.  The default
  controller is unbounded, which keeps single-tenant and test usage
  friction-free.
- :class:`OverloadController` — the policy-driven form for multi-tenant
  traffic, configured by an :class:`~repro.service.policy.AdmissionPolicy`:
  per-tenant quotas and weighted fair shares, priority classes shed lowest
  first under pressure, a load-dependent cost ceiling over planned
  ``estimated_cost`` (with optional graceful degradation instead of hard
  shedding), and a failure-rate :class:`~repro.service.breaker.
  CircuitBreaker` that sheds everything while the substrate is failing.

Both speak the same protocol: ``admit(...) -> AdmissionDecision``,
``release(decision)`` from the matching ``finally`` block, and
``record_outcome(result)`` after execution (a no-op on the base
controller; the breaker's diet on the policy one).  Slot accounting is an
explicit lock-guarded counter, so an unmatched ``release`` raises a clear
invariant error instead of a bare ``ValueError`` out of a
``BoundedSemaphore`` — a double-release in some failure path is a serving
bug worth a loud, named crash.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import QueryError
from repro.resilience.budget import SearchBudget
from repro.service.breaker import CircuitBreaker
from repro.service.policy import (
    DEFAULT_TENANT,
    AdmissionDecision,
    AdmissionPolicy,
)

__all__ = ["AdmissionController", "OverloadController"]

#: The decision every un-policied admission returns (``reason`` empty: the
#: legacy cap predates reason labels, and an empty reason is what keeps
#: default-configuration stats/trace output byte-identical).
_ADMIT = AdmissionDecision(admitted=True, action="admit")
_SHED_CAP = AdmissionDecision(
    admitted=False,
    action="shed",
    detail="service at its in-flight query cap",
)

#: Exception type names (the prefix of ``SearchResult.error``) that count
#: as *infrastructure* failures and feed the circuit breaker.  User-level
#: errors (``QueryError`` et al.) never trip it — one malformed query must
#: not take the service into shed mode.
_INFRA_ERRORS = frozenset(
    {
        "StorageError",
        "CorruptPageError",
        "OSError",
        "IOError",
        "TimeoutError",
        "ConnectionError",
        "BrokenProcessPool",
    }
)


def _infrastructure_failure(error: str | None) -> bool:
    """Whether an error-marked result indicates a failing substrate."""
    if not error:
        return False
    return error.split(":", 1)[0] in _INFRA_ERRORS


class AdmissionController:
    """A non-blocking in-flight query cap (unbounded when ``None``).

    In-flight accounting is an explicit counter under a lock (not a
    semaphore) so the current load is observable (:attr:`inflight`,
    :attr:`utilization`) and an unmatched :meth:`release` fails with a
    clear invariant error.
    """

    def __init__(self, max_inflight: int | None = None):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight = 0

    # ------------------------------------------------------------- accounting
    @property
    def inflight(self) -> int:
        """Queries currently holding a slot."""
        with self._lock:
            return self._inflight

    @property
    def utilization(self) -> float:
        """Load as a fraction of the cap (``0.0`` when unbounded)."""
        with self._lock:
            return self._utilization_locked()

    def _utilization_locked(self) -> float:
        if self.max_inflight is None:
            return 0.0
        return self._inflight / self.max_inflight

    # -------------------------------------------------------------- admission
    def try_acquire(self) -> bool:
        """Claim an in-flight slot without blocking; ``False`` = reject."""
        with self._lock:
            if self.max_inflight is not None and self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            return True

    def admit(
        self,
        tenant: str | None = None,
        priority: str | None = None,
        cost: float | None = None,
    ) -> AdmissionDecision:
        """Decide one query's admission (the policy-aware seam).

        The base controller ignores ``tenant``/``priority``/``cost`` and
        reduces to :meth:`try_acquire`; :class:`OverloadController`
        overrides this with the full policy evaluation.
        """
        if self.try_acquire():
            return _ADMIT
        return _SHED_CAP

    def release(self, decision: AdmissionDecision | None = None) -> None:
        """Return a slot claimed by a successful admission.

        Raises a clear invariant error on an unmatched release — a
        double-release in a ``finally`` block is a serving-layer bug, not
        a condition to limp past (or to surface as a bare semaphore
        ``ValueError``).
        """
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError(
                    "AdmissionController.release() without a matching "
                    "acquire: in-flight count is already 0 (double release "
                    "in a failure path?)"
                )
            self._inflight -= 1

    # ---------------------------------------------------------------- outcome
    def record_outcome(self, result) -> None:
        """Feed an executed query's outcome back (no-op without a breaker)."""

    # ------------------------------------------------------------- properties
    @property
    def needs_plan(self) -> bool:
        """Whether :meth:`admit` wants the query planned first (for cost)."""
        return False

    @property
    def prefer_sequential(self) -> bool:
        """Whether batch execution should avoid the forked fan-out."""
        return False

    @property
    def breaker(self) -> CircuitBreaker | None:
        """The circuit breaker, when one is configured."""
        return None

    def __repr__(self) -> str:
        cap = "unbounded" if self.max_inflight is None else self.max_inflight
        return f"{type(self).__name__}(max_inflight={cap}, inflight={self.inflight})"


class OverloadController(AdmissionController):
    """Policy-driven admission: quotas, priorities, cost shedding, breaker.

    One :class:`~repro.service.policy.AdmissionPolicy` drives every
    decision; the controller adds the mutable half — global and per-tenant
    in-flight counters, and the circuit breaker.  Decision order (first
    refusal wins; the full table lives in DESIGN.md §10):

    1. breaker open -> shed ``breaker_open``;
    2. global cap full -> shed ``inflight_cap``;
    3. class threshold exceeded -> shed ``priority_shed``;
    4. tenant quota full -> shed ``tenant_quota``;
    5. cost over the load-dependent ceiling -> degrade (within
       ``degrade_headroom``) or shed ``cost_shed``;
    6. breaker half-open and probe budget spent -> shed ``breaker_probing``.

    Anonymous queries account against the ``default`` tenant lane.
    """

    def __init__(
        self,
        policy: AdmissionPolicy,
        breaker: CircuitBreaker | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        super().__init__(policy.max_inflight)
        self.policy = policy
        if breaker is None and policy.breaker_failures is not None:
            breaker = CircuitBreaker(
                failure_threshold=policy.breaker_failures,
                cooldown_seconds=policy.breaker_cooldown_seconds,
                half_open_probes=policy.breaker_probes,
                clock=clock,
            )
        self._breaker = breaker
        self._tenant_inflight: dict[str, int] = {}

    # ------------------------------------------------------------- properties
    @property
    def breaker(self) -> CircuitBreaker | None:
        return self._breaker

    @property
    def needs_plan(self) -> bool:
        return self.policy.uses_cost

    @property
    def prefer_sequential(self) -> bool:
        """While the breaker is anything but closed the executor stays
        sequential: an open breaker sheds anyway, and half-open probes must
        not fan out over a pool that may be the thing that is broken."""
        return self._breaker is not None and self._breaker.state != CircuitBreaker.CLOSED

    def tenant_inflight(self, tenant: str | None = None) -> int:
        """Queries a tenant currently has in flight."""
        with self._lock:
            return self._tenant_inflight.get(tenant or DEFAULT_TENANT, 0)

    # -------------------------------------------------------------- admission
    def _shed(
        self,
        reason: str,
        detail: str,
        tenant: str,
        priority: str | None,
    ) -> AdmissionDecision:
        return AdmissionDecision(
            admitted=False,
            action="shed",
            reason=reason,
            detail=detail,
            tenant=tenant,
            priority=priority,
        )

    def admit(
        self,
        tenant: str | None = None,
        priority: str | None = None,
        cost: float | None = None,
    ) -> AdmissionDecision:
        policy = self.policy
        lane = tenant if tenant is not None else DEFAULT_TENANT
        # Resolve the class threshold outside the lock: an unknown priority
        # is a caller error (QueryError), not a shed.
        threshold = (
            policy.priority_threshold(priority) if priority is not None else None
        )
        breaker_state = (
            self._breaker.preflight() if self._breaker is not None else None
        )
        if breaker_state == CircuitBreaker.OPEN:
            return self._shed(
                "breaker_open",
                "circuit breaker open after repeated infrastructure failures",
                lane,
                priority,
            )
        with self._lock:
            utilization = self._utilization_locked()
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                return self._shed(
                    "inflight_cap",
                    "service at its in-flight query cap",
                    lane,
                    priority,
                )
            if (
                threshold is not None
                and threshold < 1.0
                and self.max_inflight is not None
                and utilization >= threshold
            ):
                return self._shed(
                    "priority_shed",
                    f"priority class {priority!r} shed at "
                    f"{utilization:.0%} utilization (threshold "
                    f"{threshold:.0%})",
                    lane,
                    priority,
                )
            quota = policy.quota_for(lane)
            held = self._tenant_inflight.get(lane, 0)
            if quota is not None and held >= quota:
                return self._shed(
                    "tenant_quota",
                    f"tenant {lane!r} at its in-flight quota ({quota})",
                    lane,
                    priority,
                )
            action, budget, reason, detail = "admit", None, "", ""
            ceiling = (
                policy.effective_max_cost(utilization)
                if cost is not None
                else None
            )
            if ceiling is not None and cost > ceiling:
                headroom = policy.degrade_headroom
                if headroom is not None and cost <= ceiling * headroom:
                    action = "degrade"
                    reason = "cost_degrade"
                    detail = (
                        f"estimated cost {cost:.0f} over the current "
                        f"ceiling {ceiling:.0f}; budget tightened"
                    )
                    budget = SearchBudget(
                        max_expanded_vertices=max(1, int(ceiling))
                    )
                else:
                    return self._shed(
                        "cost_shed",
                        f"estimated cost {cost:.0f} exceeds the current "
                        f"ceiling {ceiling:.0f} at {utilization:.0%} "
                        f"utilization",
                        lane,
                        priority,
                    )
            # Breaker probe budget: the last gate before committing a slot,
            # so a refused probe never leaks admission accounting.
            if (
                breaker_state == CircuitBreaker.HALF_OPEN
                and not self._breaker.try_probe()
            ):
                return self._shed(
                    "breaker_probing",
                    "circuit breaker half-open; probe budget in use",
                    lane,
                    priority,
                )
            self._inflight += 1
            self._tenant_inflight[lane] = held + 1
            return AdmissionDecision(
                admitted=True,
                action=action,
                reason=reason,
                detail=detail,
                budget=budget,
                tenant=lane,
                priority=priority,
            )

    def try_acquire(self) -> bool:
        """The slot-only protocol, kept for compatibility with callers of
        the base controller (accounts against the ``default`` tenant)."""
        return self.admit().admitted

    def release(self, decision: AdmissionDecision | None = None) -> None:
        lane = (
            decision.tenant
            if decision is not None and decision.tenant is not None
            else DEFAULT_TENANT
        )
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError(
                    "OverloadController.release() without a matching admit: "
                    "in-flight count is already 0 (double release in a "
                    "failure path?)"
                )
            held = self._tenant_inflight.get(lane, 0)
            if held <= 0:
                raise RuntimeError(
                    f"OverloadController.release() for tenant {lane!r} "
                    f"without a matching admit (double release in a "
                    f"failure path?)"
                )
            self._inflight -= 1
            if held == 1:
                del self._tenant_inflight[lane]
            else:
                self._tenant_inflight[lane] = held - 1

    # ---------------------------------------------------------------- outcome
    def record_outcome(self, result) -> None:
        """Feed the breaker: infrastructure failures count against it,
        successes reset it, user-level errors teach it nothing."""
        if self._breaker is None:
            return
        error = getattr(result, "error", None)
        if error is None:
            self._breaker.record_success()
        elif _infrastructure_failure(error):
            self._breaker.record_failure()

    def __repr__(self) -> str:
        state = self._breaker.state if self._breaker is not None else "none"
        return (
            f"OverloadController(max_inflight={self.max_inflight}, "
            f"inflight={self.inflight}, breaker={state})"
        )
