"""Overload-protection policy: who gets a slot when the service is busy.

An :class:`AdmissionPolicy` is the declarative half of the serving layer's
overload protection — a frozen configuration record consumed by
:class:`~repro.service.admission.OverloadController`.  It answers four
questions a saturated multi-tenant service must settle *before* running a
query:

- **How much may one tenant hold?**  Per-tenant in-flight quotas, either
  explicit (``tenant_quotas``), weighted fair shares of ``max_inflight``
  (``tenant_weights``), or one default quota for everyone
  (``tenant_quota``).  Quotas bound the noisy tenant; they do not reserve
  idle slots (small tenants may overcommit while the service is quiet —
  the controller is work-conserving).
- **Who is shed first?**  Priority classes (:data:`PRIORITY_CLASSES`):
  each class has a utilization threshold above which its queries are shed,
  so ``best_effort`` traffic drains first, ``batch`` next, and
  ``interactive`` only at the hard cap.
- **How expensive may a query be right now?**  A cost ceiling over
  :attr:`~repro.core.plan.QueryPlan.estimated_cost` that *tightens with
  load* (:meth:`effective_max_cost`): at idle every planned query up to
  ``max_cost`` runs; past ``cost_pressure`` utilization the ceiling slides
  down toward ``max_cost * min_cost_fraction``, so cheap queries keep
  flowing while the expensive ones that caused the saturation are shed.
- **Reject or degrade?**  With ``degrade_headroom`` set, a query whose
  cost exceeds the current ceiling by at most that factor is *admitted
  degraded*: the controller attaches a tightened
  :class:`~repro.resilience.budget.SearchBudget` sized to the ceiling, so
  the caller gets an anytime (``exact=False``) answer with a usable
  ``confirmed_prefix()`` instead of an error.

Every field defaults to "off"; the zero-argument ``AdmissionPolicy()``
admits exactly like the plain unbounded
:class:`~repro.service.admission.AdmissionController`.

This module stays import-light (stdlib + the budget dataclass only) — it
sits on the serving layer's cold path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.errors import QueryError
from repro.resilience.budget import SearchBudget

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "DEFAULT_PRIORITY_THRESHOLDS",
    "DEFAULT_TENANT",
    "PRIORITY_CLASSES",
]

#: The canonical priority classes, most to least protected.
PRIORITY_CLASSES = ("interactive", "batch", "best_effort")

#: Utilization (in-flight / ``max_inflight``) at which each class starts
#: being shed.  ``interactive`` is only refused by the hard cap itself;
#: ``batch`` yields the last 15% of slots to it; ``best_effort`` yields
#: the top 40%.  Override per policy via ``priority_thresholds``.
DEFAULT_PRIORITY_THRESHOLDS = MappingProxyType(
    {"interactive": 1.0, "batch": 0.85, "best_effort": 0.6}
)

#: The tenant lane anonymous queries account against.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one query, before execution.

    ``action`` is one of ``"admit"`` (run as asked), ``"degrade"`` (run
    under the attached tightened ``budget``, answer flagged inexact), or
    ``"shed"`` (refused; ``admitted`` is ``False``).  ``reason`` is a
    stable slug (``inflight_cap`` / ``tenant_quota`` / ``priority_shed`` /
    ``cost_shed`` / ``breaker_open`` / ``breaker_probing``, or ``""`` for
    the legacy un-policied cap) used as the metrics/trace label; ``detail``
    is the human sentence carried into the result.  An admitted decision
    must be handed back to :meth:`~repro.service.admission.
    AdmissionController.release` — it carries the tenant lane whose
    in-flight count the admission incremented.
    """

    admitted: bool
    action: str = "shed"
    reason: str = ""
    detail: str = ""
    budget: SearchBudget | None = None
    tenant: str | None = None
    priority: str | None = None

    @property
    def degraded(self) -> bool:
        """Whether this admission carries a policy-tightened budget."""
        return self.action == "degrade"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Declarative overload-protection configuration (all features off by
    default — see the module docstring for the semantics of each knob).

    Attributes
    ----------
    max_inflight:
        Global in-flight cap (``None`` = unbounded).  Utilization-driven
        features (priority shedding, the sliding cost ceiling) need it.
    tenant_quota:
        Default per-tenant in-flight quota applied to every tenant without
        an explicit entry (``None`` = no default quota).
    tenant_quotas:
        Explicit per-tenant in-flight quotas (override everything else).
    tenant_weights:
        Weighted fair shares of ``max_inflight``: tenant ``t`` may hold up
        to ``max(1, floor(max_inflight * w_t / sum(weights)))`` slots.
        Tenants absent from the mapping weigh ``1.0``.  Requires
        ``max_inflight``.
    priority_thresholds:
        Utilization above which each priority class is shed.  Defaults to
        :data:`DEFAULT_PRIORITY_THRESHOLDS`; queries submitted without a
        priority are never priority-shed.
    max_cost:
        Cost ceiling (in :attr:`~repro.core.plan.QueryPlan.estimated_cost`
        units) at idle (``None`` = no cost-based shedding).
    cost_pressure:
        Utilization at which the ceiling starts sliding down.
    min_cost_fraction:
        The ceiling's floor at full load, as a fraction of ``max_cost``.
    degrade_headroom:
        When set (``>= 1``), a query whose cost exceeds the current
        ceiling by at most this factor is admitted with a tightened
        budget instead of shed; ``None`` sheds every over-ceiling query.
    breaker_failures:
        Consecutive infrastructure failures that trip the circuit breaker
        (``None`` = no breaker).
    breaker_cooldown_seconds / breaker_probes:
        Breaker recovery knobs (see :class:`~repro.service.breaker.
        CircuitBreaker`).
    """

    max_inflight: int | None = None
    tenant_quota: int | None = None
    tenant_quotas: Mapping[str, int] = field(default_factory=dict)
    tenant_weights: Mapping[str, float] = field(default_factory=dict)
    priority_thresholds: Mapping[str, float] = field(
        default_factory=lambda: DEFAULT_PRIORITY_THRESHOLDS
    )
    max_cost: float | None = None
    cost_pressure: float = 0.5
    min_cost_fraction: float = 0.1
    degrade_headroom: float | None = None
    breaker_failures: int | None = None
    breaker_cooldown_seconds: float = 5.0
    breaker_probes: int = 1

    def __post_init__(self):
        if self.max_inflight is not None and self.max_inflight < 1:
            raise QueryError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.tenant_quota is not None and self.tenant_quota < 1:
            raise QueryError(
                f"tenant_quota must be >= 1, got {self.tenant_quota}"
            )
        for tenant, quota in self.tenant_quotas.items():
            if quota < 1:
                raise QueryError(
                    f"tenant_quotas[{tenant!r}] must be >= 1, got {quota}"
                )
        for tenant, weight in self.tenant_weights.items():
            if weight <= 0:
                raise QueryError(
                    f"tenant_weights[{tenant!r}] must be > 0, got {weight}"
                )
        if self.tenant_weights and self.max_inflight is None:
            raise QueryError(
                "tenant_weights are shares of max_inflight; set max_inflight"
            )
        for name, threshold in self.priority_thresholds.items():
            if not (0.0 <= threshold <= 1.0):
                raise QueryError(
                    f"priority_thresholds[{name!r}] must be in [0, 1], "
                    f"got {threshold}"
                )
        if self.max_cost is not None and self.max_cost <= 0:
            raise QueryError(f"max_cost must be > 0, got {self.max_cost}")
        if not (0.0 <= self.cost_pressure < 1.0):
            raise QueryError(
                f"cost_pressure must be in [0, 1), got {self.cost_pressure}"
            )
        if not (0.0 < self.min_cost_fraction <= 1.0):
            raise QueryError(
                f"min_cost_fraction must be in (0, 1], got "
                f"{self.min_cost_fraction}"
            )
        if self.degrade_headroom is not None and self.degrade_headroom < 1.0:
            raise QueryError(
                f"degrade_headroom must be >= 1, got {self.degrade_headroom}"
            )
        if self.breaker_failures is not None and self.breaker_failures < 1:
            raise QueryError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_cooldown_seconds < 0:
            raise QueryError(
                f"breaker_cooldown_seconds must be >= 0, got "
                f"{self.breaker_cooldown_seconds}"
            )
        if self.breaker_probes < 1:
            raise QueryError(
                f"breaker_probes must be >= 1, got {self.breaker_probes}"
            )

    # ------------------------------------------------------------ derivations
    def quota_for(self, tenant: str) -> int | None:
        """The tenant's in-flight quota, or ``None`` when unlimited.

        Resolution order: explicit ``tenant_quotas`` entry, weighted fair
        share of ``max_inflight``, the ``tenant_quota`` default.  Fair
        shares floor at one slot so a configured tenant is never starved
        outright, and do not sum-reserve: an unlisted tenant weighs 1.0
        against the *configured* total, which deliberately lets small
        tenants overcommit while the hog is bounded.
        """
        explicit = self.tenant_quotas.get(tenant)
        if explicit is not None:
            return explicit
        if self.tenant_weights and self.max_inflight is not None:
            weight = self.tenant_weights.get(tenant, 1.0)
            total = sum(self.tenant_weights.values())
            if tenant not in self.tenant_weights:
                total += weight
            return max(1, int(self.max_inflight * weight / total))
        return self.tenant_quota

    def effective_max_cost(self, utilization: float) -> float | None:
        """The cost ceiling at the given utilization (``None`` = no limit).

        Flat at ``max_cost`` up to ``cost_pressure`` utilization, then a
        linear slide down to ``max_cost * min_cost_fraction`` at full
        load — the load-dependent threshold that keeps cheap queries
        flowing when the service is saturated by expensive ones.
        """
        if self.max_cost is None:
            return None
        if utilization <= self.cost_pressure:
            return self.max_cost
        span = 1.0 - self.cost_pressure
        pressure = min(1.0, (utilization - self.cost_pressure) / span)
        fraction = 1.0 - (1.0 - self.min_cost_fraction) * pressure
        return self.max_cost * fraction

    def priority_threshold(self, priority: str) -> float:
        """The shed threshold for a priority class (:class:`~repro.errors.
        QueryError` for a class the policy does not know)."""
        threshold = self.priority_thresholds.get(priority)
        if threshold is None:
            raise QueryError(
                f"unknown priority class {priority!r}; expected one of "
                f"{sorted(self.priority_thresholds)}"
            )
        return threshold

    @property
    def uses_cost(self) -> bool:
        """Whether admission wants ``QueryPlan.estimated_cost`` up front."""
        return self.max_cost is not None

    @property
    def uses_tenants(self) -> bool:
        """Whether any per-tenant quota rule is configured."""
        return bool(
            self.tenant_quota is not None
            or self.tenant_quotas
            or self.tenant_weights
        )
