"""Vertex-to-trajectory inverted index.

The expansion search needs to answer, for every vertex it settles, "which
trajectories pass through here?".  This index stores, per network vertex,
the sorted posting list of trajectory ids covering it — the in-memory
analogue of the per-vertex ArrayLists the paper describes for its
disk-resident variant.
"""

from __future__ import annotations

from bisect import insort

from repro.errors import TrajectoryIndexError, VertexNotFoundError
from repro.network.graph import SpatialNetwork
from repro.trajectory.model import Trajectory, TrajectorySet

__all__ = ["VertexTrajectoryIndex"]

_EMPTY: tuple[int, ...] = ()


class VertexTrajectoryIndex:
    """Per-vertex posting lists of the trajectories covering each vertex."""

    def __init__(self, graph: SpatialNetwork):
        self._graph = graph
        self._postings: list[list[int]] = [[] for __ in range(graph.num_vertices)]
        self._indexed: dict[int, frozenset[int]] = {}

    @classmethod
    def build(cls, graph: SpatialNetwork, trajectories: TrajectorySet) -> "VertexTrajectoryIndex":
        """Index every trajectory in ``trajectories``."""
        index = cls(graph)
        for trajectory in trajectories:
            index.add(trajectory)
        return index

    # ------------------------------------------------------------- mutation
    def add(self, trajectory: Trajectory) -> None:
        """Index one trajectory; validates vertices and rejects duplicates."""
        if trajectory.id in self._indexed:
            raise TrajectoryIndexError(f"trajectory {trajectory.id} already indexed")
        for vertex in trajectory.vertex_set:
            if not (0 <= vertex < self._graph.num_vertices):
                raise VertexNotFoundError(vertex, self._graph.num_vertices)
        self._indexed[trajectory.id] = trajectory.vertex_set
        for vertex in trajectory.vertex_set:
            insort(self._postings[vertex], trajectory.id)

    def remove(self, trajectory_id: int) -> None:
        """Remove a trajectory from all posting lists."""
        vertex_set = self._indexed.pop(trajectory_id, None)
        if vertex_set is None:
            raise TrajectoryIndexError(f"trajectory {trajectory_id} is not indexed")
        for vertex in vertex_set:
            self._postings[vertex].remove(trajectory_id)

    # -------------------------------------------------------------- queries
    def trajectories_at(self, vertex: int) -> list[int]:
        """Sorted ids of trajectories covering ``vertex`` (live view; do not mutate)."""
        if not (0 <= vertex < self._graph.num_vertices):
            raise VertexNotFoundError(vertex, self._graph.num_vertices)
        return self._postings[vertex]

    def vertices_of(self, trajectory_id: int) -> frozenset[int]:
        """The indexed vertex set of a trajectory."""
        try:
            return self._indexed[trajectory_id]
        except KeyError:
            raise TrajectoryIndexError(f"trajectory {trajectory_id} is not indexed") from None

    @property
    def num_trajectories(self) -> int:
        """How many trajectories are indexed."""
        return len(self._indexed)

    def __contains__(self, trajectory_id: int) -> bool:
        return trajectory_id in self._indexed

    def covered_vertices(self) -> list[int]:
        """Vertices covered by at least one trajectory."""
        return [v for v, posting in enumerate(self._postings) if posting]

    def __repr__(self) -> str:
        return (
            f"VertexTrajectoryIndex(trajectories={len(self._indexed)}, "
            f"covered_vertices={len(self.covered_vertices())})"
        )
