"""Trajectory indexing: vertex postings, temporal grid, database facade."""

from repro.index.database import TrajectoryDatabase
from repro.index.temporal_index import TemporalGridIndex, TemporalNode
from repro.index.vertex_index import VertexTrajectoryIndex

__all__ = [
    "TemporalGridIndex",
    "TemporalNode",
    "TrajectoryDatabase",
    "VertexTrajectoryIndex",
]
