"""Typed mutation events for live-ingestion invalidation.

Every ``TrajectoryDatabase.add``/``remove`` dispatches one
:class:`MutationEvent` to the database's registered listeners.  The event
carries the *scope* of the change — the mutated trajectory's keyword set
and covered vertices — which is exactly what per-layer caches need to
invalidate only the entries a mutation can actually affect:

- the cross-query **distance cache** drops the mutated trajectory's own
  ``(trajectory_id, location)`` rows and nothing else;
- the cross-query **text-score cache** drops only tables whose query
  keyword set intersects ``event.keywords`` (a disjoint table can neither
  contain nor need the mutated trajectory — scores of zero are never
  stored);
- the service-level **result cache** invalidates removals through a
  reverse index (``trajectory_id -> fingerprints that ranked it``) and
  bounds additions with the landmark distance-LB + keyword-overlap
  text-UB construction shared with :mod:`repro.shard.summary`;
- the **shard mirror** routes the event to the owning shard without
  re-deriving the mutation kind from database membership.

The event is immutable and self-contained (ids, keywords, vertex array):
listeners never need to re-query the database — essential for ``remove``,
where the trajectory is already gone by dispatch time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

__all__ = ["MutationEvent"]


@dataclass(frozen=True)
class MutationEvent:
    """One database mutation, scoped for fine-grained invalidation.

    Parameters
    ----------
    kind:
        ``"add"`` or ``"remove"``.
    trajectory_id:
        The mutated trajectory's id.
    keywords:
        The trajectory's (lower-cased) keyword set — the textual reach of
        the mutation.
    vertices:
        The trajectory's distinct covered vertices as an ``intp`` array —
        the spatial reach of the mutation (feeds the landmark
        lower-bound machinery that proves cached top-k entries
        unaffected by an ``add``).
    """

    kind: Literal["add", "remove"]
    trajectory_id: int
    keywords: frozenset[str]
    vertices: np.ndarray = field(repr=False)

    def __post_init__(self):
        if self.kind not in ("add", "remove"):
            raise ValueError(f"kind must be 'add' or 'remove', got {self.kind!r}")

    def __repr__(self) -> str:  # vertices elided: they can be thousands wide
        return (
            f"MutationEvent(kind={self.kind!r}, trajectory_id={self.trajectory_id}, "
            f"|keywords|={len(self.keywords)}, |vertices|={self.vertices.size})"
        )
