"""The trajectory database: network + trajectories + indexes in one handle.

Every searcher in :mod:`repro.core` operates on a
:class:`TrajectoryDatabase`, which bundles the spatial network, the
trajectory set, the vertex->trajectory and keyword->trajectory inverted
indexes, and the distance scale ``sigma`` used by the exponential similarity
decay.  Building the database once and sharing it across queries mirrors the
paper's memory-resident setup.
"""

from __future__ import annotations

from repro.errors import DatasetError
from repro.index.vertex_index import VertexTrajectoryIndex
from repro.network.graph import SpatialNetwork
from repro.network.stats import characteristic_distance
from repro.text.index import InvertedKeywordIndex
from repro.trajectory.model import Trajectory, TrajectorySet

__all__ = ["TrajectoryDatabase"]


class TrajectoryDatabase:
    """Indexed view over a trajectory set on a spatial network."""

    def __init__(
        self,
        graph: SpatialNetwork,
        trajectories: TrajectorySet,
        sigma: float | None = None,
    ):
        if len(trajectories) == 0:
            raise DatasetError("a trajectory database needs at least one trajectory")
        self._graph = graph
        self._trajectories = trajectories
        self._vertex_index = VertexTrajectoryIndex.build(graph, trajectories)
        self._keyword_index = InvertedKeywordIndex.build(trajectories)
        if sigma is None:
            # The exponential decay must separate "a few blocks away" from
            # "across town" for the bounds to prune; one eighth of the median
            # pairwise distance puts cross-town trajectories at e^-8 ~ 3e-4
            # while keeping genuinely nearby ones in the meaningful range.
            sigma = characteristic_distance(graph) / 8.0
        if sigma <= 0:
            raise DatasetError(f"sigma must be positive, got {sigma}")
        self._sigma = float(sigma)

    # ------------------------------------------------------------ accessors
    @property
    def graph(self) -> SpatialNetwork:
        """The underlying spatial network."""
        return self._graph

    @property
    def trajectories(self) -> TrajectorySet:
        """The stored trajectory set."""
        return self._trajectories

    @property
    def vertex_index(self) -> VertexTrajectoryIndex:
        """Vertex -> trajectory-id posting lists."""
        return self._vertex_index

    @property
    def keyword_index(self) -> InvertedKeywordIndex:
        """Keyword -> trajectory-id posting lists."""
        return self._keyword_index

    @property
    def sigma(self) -> float:
        """Distance scale of the exponential spatial similarity decay."""
        return self._sigma

    def __len__(self) -> int:
        return len(self._trajectories)

    def get(self, trajectory_id: int) -> Trajectory:
        """Look up a trajectory by id."""
        return self._trajectories.get(trajectory_id)

    # ------------------------------------------------------------- mutation
    def add(self, trajectory: Trajectory) -> None:
        """Insert a trajectory into the set and both indexes."""
        self._trajectories.add(trajectory)
        try:
            self._vertex_index.add(trajectory)
            self._keyword_index.add(trajectory)
        except Exception:
            # Keep the three structures consistent on partial failure.
            self._trajectories.remove(trajectory.id)
            if trajectory.id in self._vertex_index:
                self._vertex_index.remove(trajectory.id)
            raise

    def remove(self, trajectory_id: int) -> Trajectory:
        """Remove a trajectory from the set and both indexes."""
        trajectory = self._trajectories.remove(trajectory_id)
        self._vertex_index.remove(trajectory_id)
        self._keyword_index.remove(trajectory_id)
        return trajectory

    def __repr__(self) -> str:
        return (
            f"TrajectoryDatabase(|P|={len(self._trajectories)}, "
            f"graph={self._graph!r}, sigma={self._sigma:.1f})"
        )
