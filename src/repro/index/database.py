"""The trajectory database: network + trajectories + indexes in one handle.

Every searcher in :mod:`repro.core` operates on a
:class:`TrajectoryDatabase`, which bundles the spatial network, the
trajectory set, the vertex->trajectory and keyword->trajectory inverted
indexes, and the distance scale ``sigma`` used by the exponential similarity
decay.  Building the database once and sharing it across queries mirrors the
paper's memory-resident setup.

Two lazily built performance structures ride along: the ALT landmark index
(:class:`~repro.network.landmarks.LandmarkIndex`, built on first use and
``None`` on disconnected graphs, where the triangle-inequality bound has no
single table) and the cross-query caches
(:class:`~repro.perf.QueryCaches`), both shared by every searcher on this
database.  Mutation (``add``/``remove``) invalidates affected cache
entries; the landmark table only depends on the immutable graph and
survives trajectory churn.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import DatasetError, GraphError, MutationDispatchError
from repro.index.events import MutationEvent
from repro.index.vertex_index import VertexTrajectoryIndex
from repro.network.graph import SpatialNetwork
from repro.network.landmarks import LandmarkIndex
from repro.network.stats import characteristic_distance
from repro.perf import QueryCaches
from repro.text.index import InvertedKeywordIndex
from repro.trajectory.model import Trajectory, TrajectorySet

__all__ = ["TrajectoryDatabase"]

_UNSET = object()

#: Landmarks precomputed for ALT pruning (capped by the graph size).
DEFAULT_NUM_LANDMARKS = 8


class TrajectoryDatabase:
    """Indexed view over a trajectory set on a spatial network."""

    def __init__(
        self,
        graph: SpatialNetwork,
        trajectories: TrajectorySet,
        sigma: float | None = None,
        cache_size: int | None = None,
        num_landmarks: int = DEFAULT_NUM_LANDMARKS,
    ):
        """``cache_size`` bounds the cross-query caches (``0`` disables,
        ``None`` keeps the defaults); ``num_landmarks`` sizes the lazily
        built ALT table."""
        if len(trajectories) == 0:
            raise DatasetError("a trajectory database needs at least one trajectory")
        self._graph = graph
        self._trajectories = trajectories
        self._vertex_index = VertexTrajectoryIndex.build(graph, trajectories)
        self._keyword_index = InvertedKeywordIndex.build(trajectories)
        if sigma is None:
            # The exponential decay must separate "a few blocks away" from
            # "across town" for the bounds to prune; one eighth of the median
            # pairwise distance puts cross-town trajectories at e^-8 ~ 3e-4
            # while keeping genuinely nearby ones in the meaningful range.
            sigma = characteristic_distance(graph) / 8.0
        if sigma <= 0:
            raise DatasetError(f"sigma must be positive, got {sigma}")
        self._sigma = float(sigma)
        self._caches = QueryCaches(capacity=cache_size)
        self._num_landmarks = num_landmarks
        self._landmark_index: LandmarkIndex | None | object = _UNSET
        self._vertex_arrays: dict[int, np.ndarray] = {}
        self._mutation_listeners: list[Callable[[MutationEvent], None]] = []

    # ------------------------------------------------------------ accessors
    @property
    def graph(self) -> SpatialNetwork:
        """The underlying spatial network."""
        return self._graph

    @property
    def trajectories(self) -> TrajectorySet:
        """The stored trajectory set."""
        return self._trajectories

    @property
    def vertex_index(self) -> VertexTrajectoryIndex:
        """Vertex -> trajectory-id posting lists."""
        return self._vertex_index

    @property
    def keyword_index(self) -> InvertedKeywordIndex:
        """Keyword -> trajectory-id posting lists."""
        return self._keyword_index

    @property
    def sigma(self) -> float:
        """Distance scale of the exponential spatial similarity decay."""
        return self._sigma

    @property
    def caches(self) -> QueryCaches:
        """The cross-query caches shared by every searcher on this database."""
        return self._caches

    @property
    def landmark_index(self) -> LandmarkIndex | None:
        """The ALT landmark index, built on first access.

        ``None`` when the graph is disconnected (a single landmark table
        cannot bound distances across components) or has no vertices; the
        outcome, either way, is computed once and cached.
        """
        if self._landmark_index is _UNSET:
            try:
                self._landmark_index = LandmarkIndex.build(
                    self._graph,
                    num_landmarks=min(
                        self._num_landmarks, max(1, self._graph.num_vertices)
                    ),
                    seed=0,
                )
            except GraphError:
                self._landmark_index = None
        return self._landmark_index

    def adopt_landmark_index(self, index: LandmarkIndex | None) -> None:
        """Share a landmark table built by another database on the same graph.

        The ALT table depends only on the immutable graph, so a view over a
        subset of the trajectories (a shard) can reuse its parent's table
        instead of re-running the landmark Dijkstras per shard.  Passing
        ``None`` (the parent's graph is disconnected) pins the outcome so
        the view does not attempt its own build either.
        """
        self._landmark_index = index

    def vertex_array(self, trajectory_id: int) -> np.ndarray:
        """The trajectory's vertex set as a cached integer array.

        The vectorised ALT bound (:meth:`LandmarkIndex.lower_bounds_to_set`)
        indexes the landmark table with this array; caching it per
        trajectory amortises the set->array conversion across queries.
        """
        array = self._vertex_arrays.get(trajectory_id)
        if array is None:
            vertex_set = self._trajectories.get(trajectory_id).vertex_set
            array = np.fromiter(vertex_set, dtype=np.intp, count=len(vertex_set))
            self._vertex_arrays[trajectory_id] = array
        return array

    def __len__(self) -> int:
        return len(self._trajectories)

    def get(self, trajectory_id: int) -> Trajectory:
        """Look up a trajectory by id."""
        return self._trajectories.get(trajectory_id)

    # ------------------------------------------------------------- mutation
    def add(self, trajectory: Trajectory) -> None:
        """Insert a trajectory into the set and both indexes."""
        self._trajectories.add(trajectory)
        try:
            self._vertex_index.add(trajectory)
            self._keyword_index.add(trajectory)
        except Exception:
            # Keep the three structures consistent on partial failure.  No
            # event fires for a rolled-back add: nothing changed.
            self._trajectories.remove(trajectory.id)
            if trajectory.id in self._vertex_index:
                self._vertex_index.remove(trajectory.id)
            raise
        self._dispatch(self._event("add", trajectory))

    def remove(self, trajectory_id: int) -> Trajectory:
        """Remove a trajectory from the set and both indexes."""
        trajectory = self._trajectories.remove(trajectory_id)
        self._vertex_index.remove(trajectory_id)
        self._keyword_index.remove(trajectory_id)
        self._dispatch(self._event("remove", trajectory))
        return trajectory

    def add_mutation_listener(self, listener: Callable[[MutationEvent], None]) -> None:
        """Register a callback fired with a typed event on every mutation.

        The listener receives the :class:`~repro.index.events.MutationEvent`
        (kind, trajectory id, keyword set, vertex array) through the same
        hook that scrubs the database's own cross-query caches — this is
        how derived caches living *above* the database (the service-level
        :class:`~repro.perf.result_cache.ResultCache`, the shard mirror)
        stay consistent without the database knowing about those layers.
        Listeners live as long as the database; register per long-lived
        cache, not per query.  Every listener runs on every mutation even
        when an earlier one raises — failures are aggregated into one
        :class:`~repro.errors.MutationDispatchError` after full dispatch.
        """
        self._mutation_listeners.append(listener)

    def add_invalidation_listener(self, listener: Callable[[int], None]) -> None:
        """Legacy hook: register an id-only mutation callback.

        Kept for callers that only need the mutated trajectory id and none
        of the event's scope.  New code should use
        :meth:`add_mutation_listener`, which also carries the mutation kind,
        keyword set, and vertex array needed for scoped invalidation.
        """
        self._mutation_listeners.append(lambda event: listener(event.trajectory_id))

    def _event(self, kind: str, trajectory: Trajectory) -> MutationEvent:
        """Build the scoped event for a just-applied mutation.

        For removals the cached vertex array (if any) is reused — the
        trajectory is already out of the set, so this is the last cheap
        chance to capture its spatial reach.
        """
        vertices = self._vertex_arrays.get(trajectory.id)
        if vertices is None:
            vertex_set = trajectory.vertex_set
            vertices = np.fromiter(vertex_set, dtype=np.intp, count=len(vertex_set))
        return MutationEvent(
            kind=kind,
            trajectory_id=trajectory.id,
            keywords=trajectory.keywords,
            vertices=vertices,
        )

    def _dispatch(self, event: MutationEvent) -> None:
        """Scrub own caches, then fan the event out to every listener.

        Dispatch never stops early: a raising listener would otherwise
        leave later caches stale relative to the already-mutated indexes.
        Collected failures surface together as
        :class:`~repro.errors.MutationDispatchError`.
        """
        self._caches.on_event(event)
        self._vertex_arrays.pop(event.trajectory_id, None)
        failures: list[BaseException] = []
        for listener in self._mutation_listeners:
            try:
                listener(event)
            except Exception as exc:  # noqa: BLE001 - aggregated below
                failures.append(exc)
        if failures:
            raise MutationDispatchError(event, failures)

    def __repr__(self) -> str:
        return (
            f"TrajectoryDatabase(|P|={len(self._trajectories)}, "
            f"graph={self._graph!r}, sigma={self._sigma:.1f})"
        )
