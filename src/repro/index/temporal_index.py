"""Hierarchical temporal grid index over the 24-hour axis.

The temporal-first join baseline and the PTM extension organise trajectories
by time: the day is partitioned into equal leaf slots, a binary tree is built
bottom-up over the slots, and each trajectory is stored in the *lowest* node
whose time range fully covers the trajectory's ``[departure, arrival]``
range.  Deletion simply removes the entry; the structure itself is static.

Nodes are addressed as ``(level, index)`` with leaves at level 0.  A level
with an odd node count gives its last node a single-child parent, so every
tree has exactly one root.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TrajectoryIndexError
from repro.trajectory.model import DAY_SECONDS, Trajectory

__all__ = ["TemporalNode", "TemporalGridIndex"]


@dataclass
class TemporalNode:
    """One node of the temporal grid tree."""

    level: int
    index: int
    lo: float
    hi: float
    trajectory_ids: set[int] = field(default_factory=set)

    @property
    def key(self) -> tuple[int, int]:
        """The node's ``(level, index)`` address."""
        return (self.level, self.index)

    def covers(self, lo: float, hi: float) -> bool:
        """Whether ``[lo, hi]`` lies inside this node's range."""
        return self.lo <= lo and hi <= self.hi

    def __repr__(self) -> str:
        return (
            f"TemporalNode(level={self.level}, index={self.index}, "
            f"range=[{self.lo:.0f}, {self.hi:.0f}), size={len(self.trajectory_ids)})"
        )


class TemporalGridIndex:
    """Binary tree over equal time slots, storing trajectories by time range."""

    def __init__(self, num_leaves: int = 24, day: float = DAY_SECONDS):
        if num_leaves < 1:
            raise TrajectoryIndexError("temporal index needs at least one leaf")
        if day <= 0:
            raise TrajectoryIndexError("day length must be positive")
        self._day = day
        slot = day / num_leaves
        leaves = [
            TemporalNode(0, i, i * slot, (i + 1) * slot) for i in range(num_leaves)
        ]
        # The top leaf's range must include the axis end point.
        leaves[-1].hi = day
        self._levels: list[list[TemporalNode]] = [leaves]
        while len(self._levels[-1]) > 1:
            below = self._levels[-1]
            level = len(self._levels)
            parents = []
            for i in range(0, len(below), 2):
                group = below[i : i + 2]
                parents.append(
                    TemporalNode(level, i // 2, group[0].lo, group[-1].hi)
                )
            self._levels.append(parents)
        self._location: dict[int, tuple[int, int]] = {}

    # ------------------------------------------------------------ structure
    @property
    def height(self) -> int:
        """Number of levels (leaves at level 0, root at ``height - 1``)."""
        return len(self._levels)

    @property
    def num_leaves(self) -> int:
        """Number of leaf slots."""
        return len(self._levels[0])

    def leaves(self) -> list[TemporalNode]:
        """The leaf nodes in time order."""
        return list(self._levels[0])

    def level(self, level: int) -> list[TemporalNode]:
        """All nodes of one level."""
        return list(self._levels[level])

    @property
    def root(self) -> TemporalNode:
        """The root node (covers the whole day)."""
        return self._levels[-1][0]

    def node(self, level: int, index: int) -> TemporalNode:
        """The node at ``(level, index)``."""
        try:
            return self._levels[level][index]
        except IndexError:
            raise TrajectoryIndexError(f"no temporal node at level={level}, index={index}") from None

    def parent(self, node: TemporalNode) -> TemporalNode | None:
        """The node's parent (``None`` for the root)."""
        if node.level + 1 >= len(self._levels):
            return None
        return self._levels[node.level + 1][node.index // 2]

    def children(self, node: TemporalNode) -> list[TemporalNode]:
        """The node's children (empty for leaves)."""
        if node.level == 0:
            return []
        below = self._levels[node.level - 1]
        return below[2 * node.index : 2 * node.index + 2]

    def subtree_ids(self, node: TemporalNode) -> set[int]:
        """All trajectory ids stored in the node's subtree."""
        ids = set(node.trajectory_ids)
        for child in self.children(node):
            ids |= self.subtree_ids(child)
        return ids

    # ------------------------------------------------------------- mutation
    def insert(self, trajectory: Trajectory) -> TemporalNode:
        """Store a trajectory in the lowest node covering its time range."""
        if trajectory.id in self._location:
            raise TrajectoryIndexError(f"trajectory {trajectory.id} already indexed")
        lo, hi = trajectory.time_range
        node = self.root
        if not node.covers(lo, hi):
            raise TrajectoryIndexError(
                f"trajectory {trajectory.id} range [{lo}, {hi}] outside the day axis"
            )
        while True:
            covering = [c for c in self.children(node) if c.covers(lo, hi)]
            if not covering:
                break
            node = covering[0]
        node.trajectory_ids.add(trajectory.id)
        self._location[trajectory.id] = node.key
        return node

    def remove(self, trajectory_id: int) -> None:
        """Delete a trajectory's entry (no structural rebalancing needed)."""
        key = self._location.pop(trajectory_id, None)
        if key is None:
            raise TrajectoryIndexError(f"trajectory {trajectory_id} is not indexed")
        self.node(*key).trajectory_ids.discard(trajectory_id)

    def node_of(self, trajectory_id: int) -> TemporalNode:
        """The node a trajectory is stored in."""
        key = self._location.get(trajectory_id)
        if key is None:
            raise TrajectoryIndexError(f"trajectory {trajectory_id} is not indexed")
        return self.node(*key)

    @property
    def num_trajectories(self) -> int:
        """How many trajectories are stored."""
        return len(self._location)

    # ------------------------------------------------------------ distances
    @staticmethod
    def min_distance(a: TemporalNode, b: TemporalNode) -> float:
        """Minimum temporal distance between the two nodes' ranges.

        Zero when the ranges overlap; otherwise the gap between them.  This
        is the ``d_T`` used for node-level pruning during merging.
        """
        if a.hi < b.lo:
            return b.lo - a.hi
        if b.hi < a.lo:
            return a.lo - b.hi
        return 0.0

    def __repr__(self) -> str:
        return (
            f"TemporalGridIndex(leaves={self.num_leaves}, height={self.height}, "
            f"trajectories={self.num_trajectories})"
        )
