"""Keyword vocabulary generation.

UOTS trajectories carry textual attributes describing the activities and
places along a trip ("seafood", "shopping", "lakeside").  The paper's textual
data source is not redistributable, so this module generates a vocabulary
with the statistical property text pruning depends on: **Zipfian skew** — a
few very popular keywords and a long tail of rare ones.

Keywords are organised into POI categories (food, shopping, scenery, ...)
so that generated datasets also show the co-occurrence structure of real
annotations (a restaurant district contributes several food terms).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import DatasetError

__all__ = ["CATEGORY_TERMS", "Vocabulary", "zipf_weights"]

# A compact, human-readable term bank per POI category.  Generated datasets
# draw from these and extend them with numbered synthetic terms when a larger
# vocabulary is requested.
CATEGORY_TERMS: dict[str, tuple[str, ...]] = {
    "food": (
        "seafood", "noodles", "dumplings", "hotpot", "bakery", "teahouse",
        "streetfood", "vegetarian", "barbecue", "brunch",
    ),
    "shopping": (
        "mall", "market", "boutique", "antiques", "electronics", "bookstore",
        "souvenirs", "outlets",
    ),
    "scenery": (
        "lakeside", "park", "garden", "riverwalk", "hilltop", "temple",
        "oldtown", "skyline",
    ),
    "culture": (
        "museum", "gallery", "theatre", "concert", "library", "heritage",
        "exhibition",
    ),
    "nightlife": ("bar", "club", "livemusic", "karaoke", "nightmarket"),
    "sport": ("stadium", "gym", "pool", "skating", "climbing"),
    "transport": ("station", "airport", "ferry", "terminal"),
}


def zipf_weights(count: int, exponent: float = 1.0) -> list[float]:
    """Zipf rank weights ``1/rank^exponent``, normalised to sum to 1."""
    if count < 1:
        raise DatasetError("zipf_weights needs count >= 1")
    raw = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [w / total for w in raw]


@dataclass(frozen=True)
class _Term:
    keyword: str
    category: str


class Vocabulary:
    """A Zipf-weighted keyword universe grouped into categories."""

    def __init__(self, terms: list[tuple[str, str]], exponent: float = 1.0, seed: int | None = None):
        if not terms:
            raise DatasetError("vocabulary needs at least one term")
        seen: set[str] = set()
        self._terms: list[_Term] = []
        for keyword, category in terms:
            keyword = keyword.lower()
            if keyword in seen:
                raise DatasetError(f"duplicate keyword {keyword!r}")
            seen.add(keyword)
            self._terms.append(_Term(keyword, category))
        self._weights = zipf_weights(len(self._terms), exponent)
        self._rng = random.Random(seed)

    @classmethod
    def build(
        cls,
        size: int = 100,
        exponent: float = 1.0,
        seed: int | None = None,
    ) -> "Vocabulary":
        """A vocabulary of ``size`` keywords drawn from the category bank.

        When ``size`` exceeds the bank, numbered variants (``park2`` ...)
        extend each category round-robin; popularity order is shuffled by the
        seed so the head of the Zipf distribution differs across datasets.
        """
        base = [
            (keyword, category)
            for category, keywords in CATEGORY_TERMS.items()
            for keyword in keywords
        ]
        rng = random.Random(seed)
        rng.shuffle(base)
        terms = list(base[:size])
        suffix = 2
        while len(terms) < size:
            for keyword, category in base:
                if len(terms) >= size:
                    break
                terms.append((f"{keyword}{suffix}", category))
            suffix += 1
        return cls(terms[:size], exponent, seed)

    # -------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._terms)

    @property
    def keywords(self) -> list[str]:
        """All keywords in popularity order (most popular first)."""
        return [t.keyword for t in self._terms]

    def category_of(self, keyword: str) -> str:
        """The category a keyword belongs to; raises for unknown keywords."""
        for term in self._terms:
            if term.keyword == keyword:
                return term.category
        raise DatasetError(f"unknown keyword {keyword!r}")

    def categories(self) -> dict[str, list[str]]:
        """Mapping of category -> keywords (popularity order preserved)."""
        grouped: dict[str, list[str]] = {}
        for term in self._terms:
            grouped.setdefault(term.category, []).append(term.keyword)
        return grouped

    # ------------------------------------------------------------- sampling
    def sample(self, count: int, rng: random.Random | None = None) -> list[str]:
        """Draw ``count`` distinct keywords by Zipf popularity.

        ``rng`` overrides the vocabulary's own generator, letting callers
        keep their sampling independent of other vocabulary users.
        """
        if count > len(self._terms):
            raise DatasetError(
                f"cannot sample {count} keywords from a vocabulary of {len(self._terms)}"
            )
        rng = rng or self._rng
        chosen: list[str] = []
        chosen_set: set[str] = set()
        keywords = self.keywords
        while len(chosen) < count:
            keyword = rng.choices(keywords, weights=self._weights, k=1)[0]
            if keyword not in chosen_set:
                chosen.append(keyword)
                chosen_set.add(keyword)
        return chosen

    def sample_category_burst(
        self, count: int, rng: random.Random | None = None
    ) -> list[str]:
        """Draw up to ``count`` distinct keywords biased to one category.

        Models POI co-occurrence: a vertex in a restaurant district carries
        several food terms plus the odd outsider.
        """
        rng = rng or self._rng
        grouped = self.categories()
        category = rng.choice(sorted(grouped))
        pool = grouped[category]
        take = min(count, len(pool))
        burst = rng.sample(pool, take)
        while len(burst) < count:
            extra = self.sample(1, rng)[0]
            if extra not in burst:
                burst.append(extra)
        return burst
