"""Inverted keyword index over trajectories.

Maps each keyword to the sorted posting list of trajectory ids whose textual
attributes contain it.  This makes the textual domain fully evaluable from
postings: any trajectory *not* in the union of the query keywords' postings
has zero set-overlap similarity, so the text side of the UOTS bound needs no
scan of the full dataset.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Iterable

from repro.errors import TrajectoryIndexError
from repro.trajectory.model import Trajectory, TrajectorySet

__all__ = ["InvertedKeywordIndex"]


class InvertedKeywordIndex:
    """Keyword -> sorted trajectory-id posting lists, with df/idf statistics."""

    def __init__(self):
        self._postings: dict[str, list[int]] = {}
        self._indexed: dict[int, frozenset[str]] = {}

    @classmethod
    def build(cls, trajectories: TrajectorySet) -> "InvertedKeywordIndex":
        """Index every trajectory in ``trajectories``."""
        index = cls()
        for trajectory in trajectories:
            index.add(trajectory)
        return index

    # ------------------------------------------------------------- mutation
    def add(self, trajectory: Trajectory) -> None:
        """Index one trajectory; rejects re-adding the same id."""
        if trajectory.id in self._indexed:
            raise TrajectoryIndexError(f"trajectory {trajectory.id} already indexed")
        self._indexed[trajectory.id] = trajectory.keywords
        for keyword in trajectory.keywords:
            insort(self._postings.setdefault(keyword, []), trajectory.id)

    def remove(self, trajectory_id: int) -> None:
        """Remove a trajectory from all posting lists."""
        keywords = self._indexed.pop(trajectory_id, None)
        if keywords is None:
            raise TrajectoryIndexError(f"trajectory {trajectory_id} is not indexed")
        for keyword in keywords:
            posting = self._postings[keyword]
            posting.remove(trajectory_id)
            if not posting:
                del self._postings[keyword]

    # -------------------------------------------------------------- queries
    def postings(self, keyword: str) -> list[int]:
        """Sorted ids of trajectories containing ``keyword`` (copy)."""
        return list(self._postings.get(keyword.lower(), ()))

    def document_frequency(self, keyword: str) -> int:
        """Number of trajectories containing ``keyword``."""
        return len(self._postings.get(keyword.lower(), ()))

    def idf(self, keyword: str) -> float:
        """Smoothed inverse document frequency ``ln((N + 1) / (df + 1)) + 1``."""
        n = len(self._indexed)
        df = self.document_frequency(keyword)
        return math.log((n + 1) / (df + 1)) + 1.0

    def idf_table(self) -> dict[str, float]:
        """idf for every indexed keyword."""
        return {keyword: self.idf(keyword) for keyword in self._postings}

    def candidates(self, keywords: Iterable[str]) -> set[int]:
        """Ids of trajectories sharing at least one of ``keywords``.

        Everything outside this set has zero set-overlap textual similarity
        with the query.
        """
        result: set[int] = set()
        for keyword in keywords:
            result.update(self._postings.get(keyword.lower(), ()))
        return result

    def keywords_of(self, trajectory_id: int) -> frozenset[str]:
        """The indexed keyword set of a trajectory."""
        try:
            return self._indexed[trajectory_id]
        except KeyError:
            raise TrajectoryIndexError(f"trajectory {trajectory_id} is not indexed") from None

    @property
    def num_trajectories(self) -> int:
        """How many trajectories are indexed."""
        return len(self._indexed)

    @property
    def num_keywords(self) -> int:
        """How many distinct keywords have non-empty postings."""
        return len(self._postings)

    def __contains__(self, trajectory_id: int) -> bool:
        return trajectory_id in self._indexed

    def __repr__(self) -> str:
        return (
            f"InvertedKeywordIndex(trajectories={len(self._indexed)}, "
            f"keywords={len(self._postings)})"
        )
