"""Textual similarity measures between keyword sets.

UOTS combines a textual similarity with the spatial similarity; the library
defaults to Jaccard (symmetric, in ``[0, 1]``, and exactly zero without any
shared keyword — the property the pruning relies on) and also provides the
usual alternatives: Dice, overlap, cosine, and an idf-weighted Jaccard that
rewards matches on rare terms.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

from repro.errors import QueryError

__all__ = [
    "jaccard",
    "dice",
    "overlap",
    "cosine",
    "weighted_jaccard",
    "get_measure",
    "text_upper_bound",
    "TextMeasure",
]

TextMeasure = Callable[[frozenset[str], frozenset[str]], float]


def jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    """``|a & b| / |a | b|``; 0 when either set is empty."""
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    if intersection == 0:
        return 0.0
    return intersection / (len(a) + len(b) - intersection)


def dice(a: frozenset[str], b: frozenset[str]) -> float:
    """``2|a & b| / (|a| + |b|)``; 0 when either set is empty."""
    if not a or not b:
        return 0.0
    return 2.0 * len(a & b) / (len(a) + len(b))


def overlap(a: frozenset[str], b: frozenset[str]) -> float:
    """``|a & b| / min(|a|, |b|)``; 0 when either set is empty."""
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def cosine(a: frozenset[str], b: frozenset[str]) -> float:
    """Set cosine ``|a & b| / sqrt(|a| |b|)``; 0 when either set is empty."""
    if not a or not b:
        return 0.0
    return len(a & b) / math.sqrt(len(a) * len(b))


def weighted_jaccard(
    idf: Mapping[str, float],
) -> TextMeasure:
    """Jaccard with per-keyword idf weights.

    Unknown keywords get the maximum observed idf (an unseen term is at
    least as discriminative as the rarest known one); with an empty mapping
    the measure degenerates to plain Jaccard.
    """
    default = max(idf.values(), default=1.0)

    def measure(a: frozenset[str], b: frozenset[str]) -> float:
        if not a or not b:
            return 0.0
        union = a | b
        inter = a & b
        if not inter:
            return 0.0
        weight = lambda k: idf.get(k, default)  # noqa: E731 - tiny local helper
        return sum(weight(k) for k in inter) / sum(weight(k) for k in union)

    return measure


def text_upper_bound(
    keywords: frozenset[str], measure: str, vocabulary: frozenset[str]
) -> float:
    """Upper bound on ``measure(keywords, T)`` over any ``T ⊆ vocabulary``.

    With ``c = |keywords ∩ vocabulary|`` and ``q = |keywords|``, any member
    keyword set ``T`` has ``i = |keywords ∩ T| <= c``, which bounds each
    set measure by its monotone closed form in ``i`` (``|T| >= i`` in every
    denominator).  Unknown measures fall back to the trivial bound (1 when
    any overlap is possible) — admissible, never wrong, just unprunable.

    Two layers share this bound: the shard planner proves whole shards
    unable to beat the running kth score (``vocabulary`` = the shard's
    union vocabulary, see :mod:`repro.shard.summary`), and the result
    cache proves cached top-k entries unaffected by a freshly added
    trajectory (``vocabulary`` = the new trajectory's keyword set).
    """
    if not keywords:
        return 0.0
    c = len(keywords & vocabulary)
    if c == 0:
        return 0.0
    q = len(keywords)
    if measure == "jaccard":
        return c / q
    if measure == "dice":
        return 2.0 * c / (q + c)
    if measure == "cosine":
        return math.sqrt(c / q)
    if measure == "overlap":
        return 1.0
    return 1.0


_MEASURES: dict[str, TextMeasure] = {
    "jaccard": jaccard,
    "dice": dice,
    "overlap": overlap,
    "cosine": cosine,
}


def get_measure(name: str) -> TextMeasure:
    """Look up a similarity measure by name.

    All provided measures are symmetric, bounded by ``[0, 1]``, and return 0
    for disjoint sets — the three properties the search bounds assume.
    """
    try:
        return _MEASURES[name]
    except KeyError:
        raise QueryError(
            f"unknown text measure {name!r}; choose from {sorted(_MEASURES)}"
        ) from None
