"""Textual substrate: vocabulary, analysis, similarity measures, inverted index."""

from repro.text.analysis import STOPWORDS, normalize_keywords, tokenize
from repro.text.assignment import annotate_trajectories, assign_vertex_keywords
from repro.text.index import InvertedKeywordIndex
from repro.text.similarity import (
    TextMeasure,
    cosine,
    dice,
    get_measure,
    jaccard,
    overlap,
    weighted_jaccard,
)
from repro.text.vocabulary import CATEGORY_TERMS, Vocabulary, zipf_weights

__all__ = [
    "CATEGORY_TERMS",
    "InvertedKeywordIndex",
    "STOPWORDS",
    "TextMeasure",
    "Vocabulary",
    "annotate_trajectories",
    "assign_vertex_keywords",
    "cosine",
    "dice",
    "get_measure",
    "jaccard",
    "normalize_keywords",
    "overlap",
    "tokenize",
    "weighted_jaccard",
    "zipf_weights",
]
