"""Text analysis: tokenisation and normalisation of free-form preference text.

The UOTS query lets a traveler type their preference ("quiet lakeside walk,
then seafood"); this module turns such strings into the keyword sets the
similarity functions operate on.
"""

from __future__ import annotations

import re
from typing import Iterable

__all__ = ["STOPWORDS", "tokenize", "normalize_keywords"]

# A deliberately small English stopword list: enough to strip connective
# tissue from preference phrases without needing a language-resource
# dependency.
STOPWORDS: frozenset[str] = frozenset(
    """a an and are at be but by for from has have i in is it my of on or our
    so some that the then this to want we with near around visit go see"""
    .split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens of ``text`` with stopwords removed.

    Order is preserved and duplicates are kept; use
    :func:`normalize_keywords` for a set.
    """
    return [t for t in _TOKEN_RE.findall(text.lower()) if t not in STOPWORDS]


def normalize_keywords(keywords: Iterable[str] | str) -> frozenset[str]:
    """Normalise keywords to the canonical lower-cased set form.

    Accepts either an iterable of keywords or a free-form string (which is
    tokenised first).
    """
    if isinstance(keywords, str):
        return frozenset(tokenize(keywords))
    return frozenset(k.lower().strip() for k in keywords if k and k.strip())
