"""Keyword assignment: give vertices POI annotations and trajectories text.

Real trajectory annotations come from the POIs a trip passes.  We reproduce
that generative process: a fraction of network vertices become POI sites
carrying a category-coherent keyword burst, and each trajectory inherits
(a sample of) the keywords of the POI vertices it visits.  The result is the
skewed, spatially correlated text distribution UOTS exploits.
"""

from __future__ import annotations

import random

from repro.errors import DatasetError
from repro.network.graph import SpatialNetwork
from repro.text.vocabulary import Vocabulary
from repro.trajectory.model import TrajectorySet

__all__ = ["assign_vertex_keywords", "annotate_trajectories"]


def assign_vertex_keywords(
    graph: SpatialNetwork,
    vocabulary: Vocabulary,
    poi_fraction: float = 0.15,
    burst_size: int = 3,
    seed: int | None = None,
) -> dict[int, frozenset[str]]:
    """Annotate a random ``poi_fraction`` of vertices with keyword bursts.

    Each POI vertex receives up to ``burst_size`` keywords biased toward a
    single category (see :meth:`Vocabulary.sample_category_burst`).
    Returns a mapping only for annotated vertices.
    """
    if not (0.0 < poi_fraction <= 1.0):
        raise DatasetError(f"poi_fraction must be in (0, 1], got {poi_fraction}")
    if burst_size < 1:
        raise DatasetError("burst_size must be >= 1")
    rng = random.Random(seed)
    num_pois = max(1, int(graph.num_vertices * poi_fraction))
    poi_vertices = rng.sample(range(graph.num_vertices), num_pois)
    return {
        vertex: frozenset(
            vocabulary.sample_category_burst(rng.randint(1, burst_size), rng)
        )
        for vertex in poi_vertices
    }


def annotate_trajectories(
    trajectories: TrajectorySet,
    vertex_keywords: dict[int, frozenset[str]],
    max_keywords: int = 8,
    seed: int | None = None,
) -> TrajectorySet:
    """Attach inherited keywords to every trajectory.

    A trajectory collects the keywords of every annotated vertex it visits;
    when that exceeds ``max_keywords``, a random subset is kept (real
    annotations are never exhaustive).  Trajectories visiting no POI keep an
    empty keyword set — the realistic cold-start case the search must handle.
    """
    if max_keywords < 1:
        raise DatasetError("max_keywords must be >= 1")
    rng = random.Random(seed)
    annotated = TrajectorySet()
    for trajectory in trajectories:
        collected: set[str] = set()
        for vertex in trajectory.vertex_set:
            collected.update(vertex_keywords.get(vertex, ()))
        if len(collected) > max_keywords:
            collected = set(rng.sample(sorted(collected), max_keywords))
        annotated.add(trajectory.with_keywords(collected))
    return annotated
