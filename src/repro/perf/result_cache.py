"""Service-level result cache: hot repeated trips become O(1) lookups.

The UOTS serving workload is many travelers asking for trips over one
slowly-changing trajectory set — popular queries repeat.  The cross-query
caches (:mod:`repro.perf.query_cache`) memoise *intermediates* (refinement
distances, text score tables), so a repeated identical query still pays
the full collaborative search.  :class:`ResultCache` closes that gap at
the layer above: a canonical :func:`query_fingerprint` maps a completed
:class:`~repro.core.results.SearchResult` to the query that produced it,
and an identical repeat is answered from memory.

Correctness invariants (the semantics oracle in
``tests/service/test_result_cache_service.py`` enforces all three):

- **Exact-only.**  Only un-budgeted, error-free, ``exact=True`` results
  are stored (:meth:`ResultCache.cacheable`); budgeted or degraded runs
  bypass the cache entirely — both read and write — because a degraded
  answer is execution policy, not query semantics.
- **Scoped invalidation on mutation.**  Every ``database.add``/``remove``
  dispatches a typed :class:`~repro.index.events.MutationEvent` into
  :meth:`ResultCache.on_event`, which drops exactly the entries the
  mutation can affect:

  * a **removal** only changes results that *ranked* the removed
    trajectory (dropping a non-member cannot reorder or admit anyone),
    so a reverse index ``trajectory_id -> fingerprints that ranked it``
    names the doomed entries directly — zero-filled padding items count
    as ranked, keeping underfull-database results covered;
  * an **add** can only displace a cached top-k whose kth score the new
    trajectory could reach.  Its best possible score against a cached
    query is bounded by the landmark distance lower bound per query
    location (``(lam/|O|) * exp(-lb/sigma)`` summed over sources) plus
    the keyword-overlap text upper bound
    (:func:`repro.text.similarity.text_upper_bound` with the new
    trajectory's keywords as the vocabulary).  An entry whose cached kth
    score *strictly* exceeds that bound provably survives — strict,
    because score ties are broken by lower id and the newcomer could win
    one.  The conservative path still drops the entry whenever the
    proof is unavailable: no stored query metadata, an underfull or
    zero-padded top-k (``kth_score == 0``), or no landmark table to
    bound the spatial term below the trivial ``lam`` cap when that cap
    alone cannot clear the kth score.

  Constructing with ``scoped=False`` restores wholesale clear-on-anything
  (the A/B baseline the ingest benchmark measures against).
- **Copy-out.**  A hit returns a *fresh* :class:`SearchResult` (items are
  immutable frozen dataclasses and safely shared; the list and the stats
  block are new), marked ``stats.cache = "result"`` with zero work
  counters — the honest accounting for a query that did no search work.

Fork-safety follows the :mod:`repro.perf.cache` argument: entries hold
only exact immutable values under immutable keys, forked workers see a
copy-on-write snapshot and never write back, and the parent-side probe in
``QueryService.execute_many`` is the only reader on the fork path.

Thread-safety: gateway worker threads ``get``/``put`` concurrently while
ingest threads dispatch mutation events into :meth:`ResultCache.on_event`,
so every public operation runs under one instance-level re-entrant lock.
The inner :class:`~repro.perf.cache.LRUCache` is itself locked, but that
alone is not enough — ``put`` must link the reverse index atomically with
the entry insert, and ``on_event`` must see an index consistent with the
entries it scans; interleaving those compound sequences corrupts the
``trajectory_id -> fingerprints`` postings (stale keys that resurrect
dropped results, or missing keys that leak stale answers past a removal).
Lock order is always ResultCache -> LRUCache (the capacity-eviction hook
fires under both and only touches the index).
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import TYPE_CHECKING, Hashable, Iterable

import numpy as np

from repro.core.results import SearchResult, SearchStats
from repro.perf.cache import CacheStats, LRUCache
from repro.text.similarity import text_upper_bound

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.query import UOTSQuery
    from repro.index.database import TrajectoryDatabase
    from repro.index.events import MutationEvent
    from repro.resilience.budget import SearchBudget

__all__ = ["ResultCache", "query_fingerprint", "DEFAULT_RESULT_CAPACITY"]

#: Default bound on cached (query fingerprint -> result) entries.
DEFAULT_RESULT_CAPACITY = 1024

#: The ``SearchStats.cache`` marker stamped on served cache hits.
RESULT_CACHE_MARKER = "result"

#: Live result caches whose locks are re-armed in forked children (same
#: rationale as :data:`repro.perf.cache._LIVE_CACHES`: a fork taken while
#: a pool thread holds the lock would strand the child's copy locked).
_LIVE_RESULT_CACHES: weakref.WeakSet[ResultCache] = weakref.WeakSet()


def _rearm_locks_after_fork() -> None:  # pragma: no cover - exercised via fork
    for cache in list(_LIVE_RESULT_CACHES):
        cache._lock = threading.RLock()


if hasattr(os, "register_at_fork"):  # not on Windows (no fork there anyway)
    os.register_at_fork(after_in_child=_rearm_locks_after_fork)


def query_fingerprint(
    query: UOTSQuery,
    algorithm: str,
    tuning: Iterable[tuple[str, object]] = (),
) -> Hashable:
    """The canonical cache key of one query under one serving configuration.

    ``q.O`` is order-normalized (spatial similarity sums over the intended
    places, so ``(3, 7)`` and ``(7, 3)`` are the same trip request),
    ``q.T`` is already a frozenset, and ``lam``/``k``/``text_measure``
    complete the query identity.  ``algorithm`` plus the *resolved* tuning
    kwargs (sorted key/value pairs, pins applied — see
    :meth:`~repro.core.registry.AlgorithmSpec.resolve_tuning`) pin the
    serving configuration: two services tuned differently never alias,
    even over one shared cache.  The carried ``query.budget`` is execution
    policy and deliberately excluded — budgeted queries never reach the
    cache at all.
    """
    return (
        algorithm,
        tuple(sorted(tuning)),
        tuple(sorted(query.locations)),
        query.keywords,
        query.lam,
        query.k,
        query.text_measure,
    )


class _CachedEntry:
    """One cached result plus the query scope its survival proof needs.

    ``locations is None`` marks an entry stored without query metadata
    (legacy ``put`` callers): it still serves hits and still invalidates
    correctly on removal through the reverse index, but it carries no
    proof material, so any ``add`` drops it conservatively.
    """

    __slots__ = ("items", "locations", "keywords", "lam", "k", "text_measure")

    def __init__(
        self,
        items: tuple,
        locations: np.ndarray | None,
        keywords: frozenset[str],
        lam: float,
        k: int,
        text_measure: str,
    ):
        self.items = items
        self.locations = locations  # intp array of q.O, or None
        self.keywords = keywords
        self.lam = lam
        self.k = k
        self.text_measure = text_measure

    @property
    def kth_score(self) -> float:
        """The cached kth (worst ranked) score — the add-survival floor."""
        return self.items[-1].score if self.items else 0.0


class ResultCache:
    """A bounded (query fingerprint -> SearchResult) LRU cache.

    ``capacity=None`` keeps :data:`DEFAULT_RESULT_CAPACITY`; ``0`` (or any
    non-positive value) disables the cache — every :meth:`get` misses and
    every :meth:`put` is dropped, mirroring :class:`~repro.perf.cache.
    LRUCache` semantics so callers need no separate on/off branch.
    ``scoped=False`` disables per-entry invalidation: every mutation event
    clears the cache wholesale (the ingest benchmark's baseline arm).
    """

    __slots__ = (
        "_entries",
        "_ranked_by",
        "_scoped",
        "_lock",
        "invalidation_events",
        "invalidation_entries_dropped",
        "invalidation_entries_retained",
        "__weakref__",
    )

    def __init__(self, capacity: int | None = None, scoped: bool = True):
        if capacity is None:
            capacity = DEFAULT_RESULT_CAPACITY
        self._entries = LRUCache(capacity)
        self._entries.evict_hook = self._on_evict
        self._ranked_by: dict[int, set[Hashable]] = {}
        self._scoped = bool(scoped)
        # Re-entrant: put -> LRU eviction -> _on_evict -> _unlink re-enters
        # while the outer put still holds the lock.
        self._lock = threading.RLock()
        self.invalidation_events = 0
        self.invalidation_entries_dropped = 0
        self.invalidation_entries_retained = 0
        _LIVE_RESULT_CACHES.add(self)

    # ------------------------------------------------------------ accessors
    @property
    def capacity(self) -> int:
        """Maximum number of cached results (``<= 0`` means disabled)."""
        return self._entries.capacity

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self._entries.enabled

    @property
    def scoped(self) -> bool:
        """Whether mutation events invalidate per entry (vs wholesale)."""
        return self._scoped

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters (only eligible lookups are counted —
        budgeted queries bypass the cache and leave no trace here)."""
        return self._entries.stats

    # ------------------------------------------------------------- caching
    @staticmethod
    def cacheable(result: SearchResult, budget: SearchBudget | None = None) -> bool:
        """Whether a completed result may populate the cache.

        Only exact, error-free, undegraded answers from un-budgeted (or
        never-tripping unlimited-budget) runs qualify — the exact-only
        invariant that makes hits correctness-preserving.
        """
        if budget is not None and not budget.unlimited:
            return False
        return (
            result.error is None
            and result.exact
            and result.degradation_reason is None
        )

    def get(self, key: Hashable) -> SearchResult | None:
        """The cached answer as a fresh result object, or ``None``.

        Every hit constructs a new :class:`SearchResult` with a new items
        list and a zeroed :class:`SearchStats` marked ``cache="result"``:
        callers stamp wall time and executor labels onto results, and a
        shared mutable object would let one caller corrupt the next hit.
        """
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            return None
        return SearchResult(
            items=list(entry.items),
            stats=SearchStats(cache=RESULT_CACHE_MARKER),
            exact=True,
        )

    def put(
        self,
        key: Hashable,
        result: SearchResult,
        budget: SearchBudget | None = None,
        query: UOTSQuery | None = None,
    ) -> bool:
        """Store a completed result if it is :meth:`cacheable`.

        Only the immutable item ranking is kept — stats are per-execution
        and rebuilt fresh on every hit.  Passing ``query`` stores the
        scope metadata (locations, keywords, lam, k, measure) that lets
        :meth:`on_event` prove the entry unaffected by later adds; without
        it the entry drops on any add.  Returns whether the entry was
        stored.
        """
        if not self.enabled or not self.cacheable(result, budget):
            return False
        if query is not None:
            locations = np.array(sorted(query.locations), dtype=np.intp)
            entry = _CachedEntry(
                items=tuple(result.items),
                locations=locations,
                keywords=query.keywords,
                lam=query.lam,
                k=query.k,
                text_measure=query.text_measure,
            )
        else:
            entry = _CachedEntry(
                items=tuple(result.items),
                locations=None,
                keywords=frozenset(),
                lam=0.0,
                k=len(result.items),
                text_measure="jaccard",
            )
        with self._lock:
            old = self._entries.peek(key)
            if old is not None:
                self._unlink(key, old)
            self._entries.put(key, entry)
            for item in entry.items:
                self._ranked_by.setdefault(item.trajectory_id, set()).add(key)
        return True

    # ---------------------------------------------------------- invalidation
    def on_event(
        self,
        event: MutationEvent,
        database: TrajectoryDatabase | None = None,
    ) -> tuple[int, int]:
        """Invalidate for one typed mutation event; ``(dropped, retained)``.

        ``database`` supplies the landmark table and ``sigma`` that
        tighten the add-survival spatial bound; without it the spatial
        term falls back to the trivial ``lam`` cap (still correct, far
        less selective).  In wholesale mode (``scoped=False``) every
        event clears the cache.
        """
        with self._lock:
            self.invalidation_events += 1
            size_before = len(self._entries)
            if not self._scoped:
                self.clear()
                dropped = size_before
            elif event.kind == "remove":
                dropped = self._on_remove(event.trajectory_id)
            else:
                dropped = self._on_add(event, database)
            retained = len(self._entries)
            self.invalidation_entries_dropped += dropped
            self.invalidation_entries_retained += retained
            return dropped, retained

    def _on_remove(self, trajectory_id: int) -> int:
        """Drop exactly the entries that ranked the removed trajectory."""
        keys = self._ranked_by.pop(trajectory_id, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            entry = self._entries.pop(key)
            if entry is not None:
                dropped += 1
                self._unlink(key, entry, skip=trajectory_id)
        return dropped

    def _on_add(
        self, event: MutationEvent, database: TrajectoryDatabase | None
    ) -> int:
        """Drop entries the new trajectory could displace; keep the proven.

        Survival proof per entry: the newcomer's best possible score
        against the cached query is at most ``spatial_ub + (1-lam) *
        text_upper_bound``; a cached kth score strictly above that cannot
        be displaced (strict — at equal score the lower id wins, and the
        newcomer might have one).
        """
        landmarks = sigma = None
        if database is not None:
            landmarks = database.landmark_index
            sigma = database.sigma
        dropped = 0
        for key, entry in self._entries.items():
            if self._survives_add(entry, event, landmarks, sigma):
                continue
            self._entries.pop(key)
            self._unlink(key, entry)
            dropped += 1
        return dropped

    @staticmethod
    def _survives_add(
        entry: _CachedEntry,
        event: MutationEvent,
        landmarks,
        sigma: float | None,
    ) -> bool:
        if entry.locations is None:
            return False  # no proof material stored
        if len(entry.items) < entry.k or entry.kth_score <= 0.0:
            return False  # underfull or zero-padded: anything can enter
        lam = entry.lam
        spatial_ub = 0.0
        if lam > 0.0:
            spatial_ub = lam  # trivial cap: exp(-d/sigma) <= 1 per source
            if landmarks is not None and sigma is not None and event.vertices.size:
                bounds = landmarks.lower_bounds_to_set(
                    entry.locations, event.vertices
                )
                spatial_ub = float(
                    np.exp(-bounds / sigma).sum() * (lam / entry.locations.size)
                )
        text_ub = (1.0 - lam) * text_upper_bound(
            entry.keywords, entry.text_measure, event.keywords
        )
        return entry.kth_score > spatial_ub + text_ub

    def _unlink(self, key: Hashable, entry: _CachedEntry, skip: int = -1) -> None:
        """Remove ``key`` from every reverse-index posting of ``entry``."""
        for item in entry.items:
            trajectory_id = item.trajectory_id
            if trajectory_id == skip:
                continue
            keys = self._ranked_by.get(trajectory_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._ranked_by[trajectory_id]

    def _on_evict(self, key: Hashable, entry: _CachedEntry) -> None:
        """LRU capacity eviction hook: keep the reverse index consistent."""
        self._unlink(key, entry)

    def on_mutation(self, trajectory_id: int) -> None:
        """Legacy id-only mutation hook: clears everything.

        Without the mutation's kind and scope neither the reverse index
        (needs to know it was a removal) nor the add bound (needs keywords
        and vertices) applies; wholesale clearing is the only correct
        response to a bare id.  The database now dispatches typed events —
        prefer wiring :meth:`on_event` through
        ``database.add_mutation_listener``.
        """
        self.clear()

    def clear(self) -> None:
        """Drop all cached results (counters are kept — they are history)."""
        with self._lock:
            self._entries.clear()
            self._ranked_by.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self._entries)}/{self.capacity}, "
            f"scoped={self._scoped}, stats={self.stats!r})"
        )
