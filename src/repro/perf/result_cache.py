"""Service-level result cache: hot repeated trips become O(1) lookups.

The UOTS serving workload is many travelers asking for trips over one
slowly-changing trajectory set — popular queries repeat.  The cross-query
caches (:mod:`repro.perf.query_cache`) memoise *intermediates* (refinement
distances, text score tables), so a repeated identical query still pays
the full collaborative search.  :class:`ResultCache` closes that gap at
the layer above: a canonical :func:`query_fingerprint` maps a completed
:class:`~repro.core.results.SearchResult` to the query that produced it,
and an identical repeat is answered from memory.

Correctness invariants (the semantics oracle in
``tests/service/test_result_cache_service.py`` enforces all three):

- **Exact-only.**  Only un-budgeted, error-free, ``exact=True`` results
  are stored (:meth:`ResultCache.cacheable`); budgeted or degraded runs
  bypass the cache entirely — both read and write — because a degraded
  answer is execution policy, not query semantics.
- **Invalidation on mutation.**  Any ``database.add``/``remove`` clears
  the cache wholesale, through the same
  :meth:`~repro.index.database.TrajectoryDatabase._invalidate` hook that
  already scrubs ``database.caches`` (an added trajectory can enter *any*
  top-k, so per-entry invalidation would be wrong for half the mutations
  and is not worth the asymmetry).
- **Copy-out.**  A hit returns a *fresh* :class:`SearchResult` (items are
  immutable frozen dataclasses and safely shared; the list and the stats
  block are new), marked ``stats.cache = "result"`` with zero work
  counters — the honest accounting for a query that did no search work.

Fork-safety follows the :mod:`repro.perf.cache` argument: entries hold
only exact immutable values under immutable keys, forked workers see a
copy-on-write snapshot and never write back, and the parent-side probe in
``QueryService.execute_many`` is the only reader on the fork path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable

from repro.core.results import SearchResult, SearchStats
from repro.perf.cache import CacheStats, LRUCache

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.query import UOTSQuery
    from repro.resilience.budget import SearchBudget

__all__ = ["ResultCache", "query_fingerprint", "DEFAULT_RESULT_CAPACITY"]

#: Default bound on cached (query fingerprint -> result) entries.
DEFAULT_RESULT_CAPACITY = 1024

#: The ``SearchStats.cache`` marker stamped on served cache hits.
RESULT_CACHE_MARKER = "result"


def query_fingerprint(
    query: UOTSQuery,
    algorithm: str,
    tuning: Iterable[tuple[str, object]] = (),
) -> Hashable:
    """The canonical cache key of one query under one serving configuration.

    ``q.O`` is order-normalized (spatial similarity sums over the intended
    places, so ``(3, 7)`` and ``(7, 3)`` are the same trip request),
    ``q.T`` is already a frozenset, and ``lam``/``k``/``text_measure``
    complete the query identity.  ``algorithm`` plus the *resolved* tuning
    kwargs (sorted key/value pairs, pins applied — see
    :meth:`~repro.core.registry.AlgorithmSpec.resolve_tuning`) pin the
    serving configuration: two services tuned differently never alias,
    even over one shared cache.  The carried ``query.budget`` is execution
    policy and deliberately excluded — budgeted queries never reach the
    cache at all.
    """
    return (
        algorithm,
        tuple(sorted(tuning)),
        tuple(sorted(query.locations)),
        query.keywords,
        query.lam,
        query.k,
        query.text_measure,
    )


class ResultCache:
    """A bounded (query fingerprint -> SearchResult) LRU cache.

    ``capacity=None`` keeps :data:`DEFAULT_RESULT_CAPACITY`; ``0`` (or any
    non-positive value) disables the cache — every :meth:`get` misses and
    every :meth:`put` is dropped, mirroring :class:`~repro.perf.cache.
    LRUCache` semantics so callers need no separate on/off branch.
    """

    __slots__ = ("_entries",)

    def __init__(self, capacity: int | None = None):
        if capacity is None:
            capacity = DEFAULT_RESULT_CAPACITY
        self._entries = LRUCache(capacity)

    # ------------------------------------------------------------ accessors
    @property
    def capacity(self) -> int:
        """Maximum number of cached results (``<= 0`` means disabled)."""
        return self._entries.capacity

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self._entries.enabled

    @property
    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters (only eligible lookups are counted —
        budgeted queries bypass the cache and leave no trace here)."""
        return self._entries.stats

    # ------------------------------------------------------------- caching
    @staticmethod
    def cacheable(result: SearchResult, budget: SearchBudget | None = None) -> bool:
        """Whether a completed result may populate the cache.

        Only exact, error-free, undegraded answers from un-budgeted (or
        never-tripping unlimited-budget) runs qualify — the exact-only
        invariant that makes hits correctness-preserving.
        """
        if budget is not None and not budget.unlimited:
            return False
        return (
            result.error is None
            and result.exact
            and result.degradation_reason is None
        )

    def get(self, key: Hashable) -> SearchResult | None:
        """The cached answer as a fresh result object, or ``None``.

        Every hit constructs a new :class:`SearchResult` with a new items
        list and a zeroed :class:`SearchStats` marked ``cache="result"``:
        callers stamp wall time and executor labels onto results, and a
        shared mutable object would let one caller corrupt the next hit.
        """
        items = self._entries.get(key)
        if items is None:
            return None
        return SearchResult(
            items=list(items),
            stats=SearchStats(cache=RESULT_CACHE_MARKER),
            exact=True,
        )

    def put(
        self,
        key: Hashable,
        result: SearchResult,
        budget: SearchBudget | None = None,
    ) -> bool:
        """Store a completed result if it is :meth:`cacheable`.

        Only the immutable item ranking is kept — stats are per-execution
        and rebuilt fresh on every hit.  Returns whether the entry was
        stored.
        """
        if not self.enabled or not self.cacheable(result, budget):
            return False
        self._entries.put(key, tuple(result.items))
        return True

    # ---------------------------------------------------------- invalidation
    def on_mutation(self, trajectory_id: int) -> None:
        """Database mutation hook: any trajectory churn clears everything.

        A removed trajectory invalidates every result that ranked it; an
        added one can enter any top-k.  Wholesale clearing is the simplest
        rule that is correct for both, and entries are cheap to rebuild
        (one search) relative to reasoning about partial invalidation.
        """
        self.clear()

    def clear(self) -> None:
        """Drop all cached results (counters are kept — they are history)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self._entries)}/{self.capacity}, "
            f"stats={self.stats!r})"
        )
