"""Performance layer: cross-query caching and cache observability.

Grown for the serving workload the ROADMAP targets — one long-lived
process answering heavy query traffic over an immutable network.  The
pieces:

- :class:`~repro.perf.cache.LRUCache` / :class:`~repro.perf.cache.CacheStats`
  — the bounded container and its counters;
- :class:`~repro.perf.query_cache.QueryCaches` — the per-database cache
  block (refinement distances, text score tables) the searchers consult.
"""

from repro.perf.cache import CacheStats, LRUCache
from repro.perf.query_cache import (
    DEFAULT_DISTANCE_CAPACITY,
    DEFAULT_TEXT_CAPACITY,
    QueryCaches,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "QueryCaches",
    "DEFAULT_DISTANCE_CAPACITY",
    "DEFAULT_TEXT_CAPACITY",
]
