"""Performance layer: cross-query caching and cache observability.

Grown for the serving workload the ROADMAP targets — one long-lived
process answering heavy query traffic over an immutable network.  The
pieces:

- :class:`~repro.perf.cache.LRUCache` / :class:`~repro.perf.cache.CacheStats`
  — the bounded container and its counters;
- :class:`~repro.perf.query_cache.QueryCaches` — the per-database cache
  block (refinement distances, text score tables) the searchers consult;
- :class:`~repro.perf.result_cache.ResultCache` — the service-level
  (query fingerprint -> SearchResult) cache that answers hot repeated
  trips in O(1) without re-running the search.
"""

from repro.perf.cache import CacheStats, LRUCache
from repro.perf.query_cache import (
    DEFAULT_DISTANCE_CAPACITY,
    DEFAULT_TEXT_CAPACITY,
    QueryCaches,
)
from repro.perf.result_cache import (
    DEFAULT_RESULT_CAPACITY,
    ResultCache,
    query_fingerprint,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "QueryCaches",
    "ResultCache",
    "query_fingerprint",
    "DEFAULT_DISTANCE_CAPACITY",
    "DEFAULT_RESULT_CAPACITY",
    "DEFAULT_TEXT_CAPACITY",
]
