"""Cross-query caches for the hot search path.

A serving workload asks many UOTS queries against one immutable network and
a slowly changing trajectory set.  Two classes of exact intermediate
results recur across queries and are cached here:

- **distance cache** — refinement distances ``d(o, tau)`` keyed on the
  ``(trajectory_id, location)`` pair.  A refinement Dijkstra prices every
  query location against one trajectory; queries that share locations (the
  common case for popular places) skip the traversal entirely on a full
  hit and shrink it to the missing locations on a partial hit.
- **text-score cache** — the keyword-postings evaluation in front of
  ``_exact_text_scores``, keyed on ``(keyword set, measure)``.  Queries
  with the same preference text reuse the whole score table.

Both caches hold exact values only, so hits never change results — the
semantics-preserving invariant the benchmark asserts.  Mutating the
database (``add``/``remove``) dispatches a typed
:class:`~repro.index.events.MutationEvent` into :meth:`QueryCaches.on_event`,
which drops only the entries the mutation can reach: the mutated
trajectory's own distance rows, and text tables whose keyword set
intersects the trajectory's (score tables store only positive scores, so
a keyword-disjoint table can neither contain nor come to need the mutated
trajectory).  See :mod:`repro.perf.cache` for the fork-safety argument.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.perf.cache import CacheStats, LRUCache

if TYPE_CHECKING:  # pragma: no cover - import would cycle through repro.index
    from repro.index.events import MutationEvent

__all__ = ["QueryCaches", "DEFAULT_DISTANCE_CAPACITY", "DEFAULT_TEXT_CAPACITY"]

#: Default bound on cached (trajectory, location) distance pairs.
DEFAULT_DISTANCE_CAPACITY = 65536

#: Default bound on cached per-keyword-set text score tables.
DEFAULT_TEXT_CAPACITY = 512


class QueryCaches:
    """The cache block one :class:`~repro.index.database.TrajectoryDatabase` owns.

    ``capacity`` scales both member caches: ``None`` keeps the defaults,
    ``0`` disables caching entirely, any positive value bounds the distance
    cache directly.  The text cache gets a proportional share (at least 8)
    clamped to the distance bound — a tiny overall capacity must not hand
    the secondary cache a *larger* budget than the primary one.
    """

    __slots__ = ("distances", "text")

    def __init__(self, capacity: int | None = None):
        if capacity is None:
            distance_capacity = DEFAULT_DISTANCE_CAPACITY
            text_capacity = DEFAULT_TEXT_CAPACITY
        elif capacity <= 0:
            distance_capacity = 0
            text_capacity = 0
        else:
            distance_capacity = capacity
            text_capacity = min(distance_capacity, max(8, capacity // 128))
        self.distances = LRUCache(distance_capacity)
        self.text = LRUCache(text_capacity)

    @property
    def enabled(self) -> bool:
        """Whether any caching is in force."""
        return self.distances.enabled or self.text.enabled

    # ---------------------------------------------------------- invalidation
    def on_event(self, event: "MutationEvent") -> None:
        """Scoped invalidation for one typed mutation event.

        Distance entries are keyed ``(trajectory_id, location)``, so only
        the mutated trajectory's rows go.  Text tables are keyed
        ``(query keyword set, measure)`` and store only trajectories with a
        *positive* score; a table whose keyword set is disjoint from the
        mutated trajectory's neither contains it (removal) nor would gain
        it (add), so only intersecting tables are dropped.  A mutation with
        no keywords touches no text table at all.
        """
        trajectory_id = event.trajectory_id
        self.distances.invalidate_where(lambda key: key[0] == trajectory_id)
        if event.keywords:
            keywords = event.keywords
            self.text.invalidate_where(lambda key: bool(key[0] & keywords))

    def invalidate_trajectory(self, trajectory_id: int) -> None:
        """Legacy conservative invalidation by id alone.

        Without the mutation's keyword scope the text cache cannot tell
        which tables are affected, so it clears wholesale.  The database
        now dispatches typed events through :meth:`on_event`; this remains
        for callers holding only an id.
        """
        self.distances.invalidate_where(lambda key: key[0] == trajectory_id)
        self.text.clear()

    def clear(self) -> None:
        """Drop all cached entries from both caches."""
        self.distances.clear()
        self.text.clear()

    # -------------------------------------------------------------- metrics
    def stats(self) -> dict[str, CacheStats]:
        """Current counters per cache, by name."""
        return {"distances": self.distances.stats, "text": self.text.stats}

    def __repr__(self) -> str:
        return f"QueryCaches(distances={self.distances!r}, text={self.text!r})"
