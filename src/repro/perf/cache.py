"""Bounded LRU caching with observable statistics.

The serving-workload layer of the search: one process answers many queries
against the same immutable network, so exact intermediate results —
point-to-trajectory network distances, per-keyword-set text scores — are
worth keeping across queries.  :class:`LRUCache` is the single bounded
container both caches build on; :class:`CacheStats` is the counter block
surfaced through ``SearchStats`` and the CLI.

Fork-safety: caches hold only *exact, immutable* values keyed by immutable
keys, so a forked worker's copy-on-write snapshot is always internally
consistent — workers warm their private copies independently and results
never depend on cache contents (a miss recomputes the same exact value).

Thread-safety: the gateway's thread-pool bridge (:mod:`repro.gateway`)
runs concurrent searches *in one process*, all sharing the database's
cross-query caches and the service result cache, so :class:`LRUCache` is
internally locked — an unlocked ``OrderedDict`` corrupts under concurrent
``get``'s ``move_to_end`` against ``put``'s eviction.  The lock is a
plain (non-reentrant) mutex; the ``evict_hook`` fires while it is held,
so hooks must not call back into the same cache (the result cache's
reverse-index hook only touches its own structures, guarded by the
*outer* :class:`~repro.perf.result_cache.ResultCache` lock, which is
always acquired first — one fixed order, no deadlock).
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from typing import Any, Callable, Hashable

__all__ = ["CacheStats", "LRUCache"]

_MISSING = object()

#: Live caches whose locks must be re-armed in forked children: a fork
#: taken while another thread holds a cache lock would hand the child a
#: permanently-held lock (the owning thread does not exist there).  The
#: child is single-threaded at birth, so fresh unlocked mutexes are safe;
#: the data itself is a consistent copy-on-write snapshot per the
#: fork-safety argument above only when the parent quiesces its writers —
#: the fork executor snapshots between queries, and a torn mid-``put``
#: OrderedDict in a child is repaired by the child's first ``clear``-free
#: recompute path never being reached (children only read-or-warm their
#: private copies, and a miss recomputes the same exact value).
_LIVE_CACHES: weakref.WeakSet[LRUCache] = weakref.WeakSet()


def _rearm_locks_after_fork() -> None:  # pragma: no cover - exercised via fork
    for cache in list(_LIVE_CACHES):
        cache._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # not on Windows (no fork there anyway)
    os.register_at_fork(after_in_child=_rearm_locks_after_fork)


class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self, hits: int = 0, misses: int = 0, evictions: int = 0):
        self.hits = hits
        self.misses = misses
        self.evictions = evictions

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def delta_since(self, snapshot: "CacheStats") -> "CacheStats":
        """Counters accumulated since ``snapshot`` (for per-query stats)."""
        return CacheStats(
            hits=self.hits - snapshot.hits,
            misses=self.misses - snapshot.misses,
            evictions=self.evictions - snapshot.evictions,
        )

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.evictions)

    def as_dict(self) -> dict[str, int]:
        """Plain-dict form for JSON reporting."""
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``capacity <= 0`` disables the cache entirely: every ``get`` misses,
    every ``put`` is dropped — callers need no separate on/off branch.
    Lookups and insertions are O(1); eviction removes the least recently
    *used* (read or written) entry.  All operations are thread-safe (see
    the module docstring for the lock-ordering contract around
    ``evict_hook``).
    """

    __slots__ = (
        "_capacity", "_data", "_lock", "stats", "evict_hook", "__weakref__",
    )

    def __init__(self, capacity: int):
        self._capacity = int(capacity)
        self._lock = threading.Lock()
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.stats = CacheStats()
        _LIVE_CACHES.add(self)
        #: Optional ``(key, value)`` callback fired on capacity eviction —
        #: lets owners of auxiliary indexes (e.g. the result cache's
        #: trajectory reverse index) unlink evicted entries.  Not fired by
        #: explicit ``pop``/``invalidate_where``/``clear``, whose callers
        #: already know which keys they removed.
        self.evict_hook: Callable[[Hashable, Any], None] | None = None

    @property
    def capacity(self) -> int:
        """Maximum number of entries (``<= 0`` means disabled)."""
        return self._capacity

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self._capacity > 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, counting a hit or a miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.stats.misses += 1
                return default
            self.stats.hits += 1
            self._data.move_to_end(key)
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without touching counters or recency."""
        with self._lock:
            value = self._data.get(key, _MISSING)
        return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU one when full."""
        if self._capacity <= 0:
            return
        with self._lock:
            data = self._data
            if key in data:
                data.move_to_end(key)
            data[key] = value
            if len(data) > self._capacity:
                evicted_key, evicted_value = data.popitem(last=False)
                self.stats.evictions += 1
                if self.evict_hook is not None:
                    self.evict_hook(evicted_key, evicted_value)

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return an entry without touching hit/miss counters."""
        with self._lock:
            value = self._data.pop(key, _MISSING)
        return default if value is _MISSING else value

    def items(self) -> list[tuple[Hashable, Any]]:
        """A snapshot of ``(key, value)`` pairs, LRU first.

        A list copy, so callers may mutate the cache while iterating —
        the scoped-invalidation scan relies on this.
        """
        with self._lock:
            return list(self._data.items())

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns count."""
        with self._lock:
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    def clear(self) -> None:
        """Drop all entries (counters are kept — they describe history)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self._data)}/{self._capacity}, "
            f"stats={self.stats!r})"
        )
