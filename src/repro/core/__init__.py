"""The UOTS core: query model, similarity, bounds, schedulers, searchers."""

from repro.core.baselines import BruteForceSearcher, TextFirstSearcher
from repro.core.bounds import BoundTracker, SourceRadiiWeights
from repro.core.engine import ALGORITHMS, Recommendation, TripRecommender, make_searcher
from repro.core.plan import QueryPlan, Searcher
from repro.core.query import UOTSQuery
from repro.core.registry import AlgorithmSpec
from repro.core.results import ScoredTrajectory, SearchResult, SearchStats, TopK
from repro.core.scheduler import (
    HeuristicScheduler,
    RoundRobinScheduler,
    Scheduler,
    make_scheduler,
)
from repro.core.search import CollaborativeSearcher, SpatialFirstSearcher
from repro.core.similarity import (
    ExactScorer,
    combine,
    nearest_trajectory_distance,
    spatial_similarity,
    text_similarity,
)
from repro.core.sources import QuerySource, current_radii_weights, make_sources

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "BoundTracker",
    "BruteForceSearcher",
    "CollaborativeSearcher",
    "ExactScorer",
    "HeuristicScheduler",
    "QueryPlan",
    "QuerySource",
    "Recommendation",
    "RoundRobinScheduler",
    "Scheduler",
    "Searcher",
    "ScoredTrajectory",
    "SearchResult",
    "SearchStats",
    "SourceRadiiWeights",
    "SpatialFirstSearcher",
    "TextFirstSearcher",
    "TopK",
    "TripRecommender",
    "UOTSQuery",
    "combine",
    "current_radii_weights",
    "make_scheduler",
    "make_searcher",
    "make_sources",
    "nearest_trajectory_distance",
    "spatial_similarity",
    "text_similarity",
]
