"""The algorithm registry: named searcher configurations as a contract.

Every entry maps a public algorithm name to an :class:`AlgorithmSpec` — the
searcher class plus the settings that *define* the variant (pinned) and the
tuning knobs callers may adjust.  The registry is the single construction
path for searchers: the service layer, the CLI, the parallel executor, and
the bench harness all build through :func:`make_searcher`, so every entry
is guaranteed to satisfy the :class:`~repro.core.plan.Searcher` protocol
(enforced by the registry contract tests).

Kwarg semantics
---------------
- The universal tuning vocabulary is ``alt``, ``batch_size``,
  ``refinement``, ``scheduler``, ``shards``, ``workers``.  Anything else raises
  :class:`~repro.errors.QueryError` (typos should not pass silently).
- ``None``-valued kwargs mean "keep the default" and are dropped — this is
  what lets the CLI forward unset flags wholesale.
- A kwarg the variant does not accept (``batch_size`` for brute force) is
  dropped: batch callers tune one vocabulary across a whole battery of
  algorithms, and the knob simply has no meaning for some of them.
- A kwarg the variant *pins* is overridden by the pin: ``collaborative-rr``
  *is* the round-robin ablation; letting ``scheduler=`` repoint it would
  make the registry name a lie.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Callable, Mapping

from repro.core.baselines import BruteForceSearcher, TextFirstSearcher
from repro.core.plan import Searcher
from repro.core.search import CollaborativeSearcher, SpatialFirstSearcher
from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.shard.searcher import ShardedSearcher

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "TUNING_KWARGS",
    "get_spec",
    "make_searcher",
]

#: The universal tuning vocabulary accepted by :func:`make_searcher`.
TUNING_KWARGS = frozenset(
    {"alt", "batch_size", "refinement", "scheduler", "shards", "workers"}
)


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registry entry: a searcher class plus its variant identity.

    ``accepts`` lists the tuning kwargs the factory understands; ``pinned``
    holds the settings that define the variant and always win over caller
    kwargs.  ``description`` is the one-liner shown by ``repro bench`` help
    and the docs.
    """

    name: str
    factory: Callable[..., Searcher]
    accepts: frozenset[str] = frozenset()
    pinned: Mapping[str, object] = field(default_factory=lambda: MappingProxyType({}))
    description: str = ""

    def resolve_tuning(self, **kwargs) -> dict[str, object]:
        """The effective tuning the factory receives, kwarg semantics applied.

        ``None`` values are dropped (keep the default), kwargs outside the
        vocabulary raise, inapplicable knobs are dropped, and pinned variant
        settings win.  This resolved mapping — not the caller's raw kwargs —
        is what identifies a serving configuration: the service-level
        result cache keys on ``(algorithm, resolved tuning)``, so two
        services differing only in dropped/defaulted kwargs alias the same
        entries while genuinely different tunings never collide.
        """
        tuning = {key: value for key, value in kwargs.items() if value is not None}
        unknown = set(tuning) - TUNING_KWARGS
        if unknown:
            raise QueryError(
                f"unknown searcher option(s) {sorted(unknown)}; "
                f"the tuning vocabulary is {sorted(TUNING_KWARGS)}"
            )
        effective = {
            key: value
            for key, value in tuning.items()
            if key in self.accepts and key not in self.pinned
        }
        effective.update(self.pinned)
        return effective

    def build(self, database: TrajectoryDatabase, **kwargs) -> Searcher:
        """Instantiate the variant, applying the kwarg semantics above."""
        return self.factory(database, **self.resolve_tuning(**kwargs))


def _spec(name, factory, accepts=(), pinned=None, description=""):
    return AlgorithmSpec(
        name=name,
        factory=factory,
        accepts=frozenset(accepts),
        pinned=MappingProxyType(dict(pinned or {})),
        description=description,
    )


#: Algorithm registry: name -> :class:`AlgorithmSpec`.
ALGORITHMS: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        _spec(
            "collaborative",
            CollaborativeSearcher,
            accepts=("scheduler", "batch_size", "refinement", "alt"),
            description="the paper's collaborative spatial-textual search",
        ),
        _spec(
            "collaborative-rr",
            CollaborativeSearcher,
            accepts=("batch_size", "refinement", "alt"),
            pinned={"scheduler": "round-robin"},
            description="collaborative search without the scheduling heuristic",
        ),
        _spec(
            "collaborative-nr",
            CollaborativeSearcher,
            accepts=("scheduler", "batch_size", "alt"),
            pinned={"refinement": False},
            description="collaborative search without direct refinement",
        ),
        _spec(
            "spatial-first",
            SpatialFirstSearcher,
            accepts=("scheduler", "batch_size"),
            description="pure expansion ablation (text only at refinement)",
        ),
        _spec(
            "text-first",
            TextFirstSearcher,
            description="text-domain-driven baseline with spatial refinement",
        ),
        _spec(
            "brute-force",
            BruteForceSearcher,
            description="exhaustive exact scoring (the oracle)",
        ),
        _spec(
            "sharded",
            ShardedSearcher,
            accepts=("shards", "workers", "scheduler", "batch_size", "refinement", "alt"),
            description="scatter-gather over spatial shards with bound-based shard pruning",
        ),
    )
}


def get_spec(algorithm: str) -> AlgorithmSpec:
    """The registry entry for ``algorithm`` (:class:`QueryError` if unknown).

    Ad-hoc entries registered as bare callables (tests inject fakes this
    way) are wrapped on the fly: they receive any tuning kwarg the caller
    passes, unfiltered — their signature is the injector's concern.
    """
    try:
        entry = ALGORITHMS[algorithm]
    except KeyError:
        raise QueryError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    if isinstance(entry, AlgorithmSpec):
        return entry
    return AlgorithmSpec(name=algorithm, factory=entry, accepts=TUNING_KWARGS)


def make_searcher(
    database: TrajectoryDatabase, algorithm: str = "collaborative", **kwargs
) -> Searcher:
    """Instantiate a registered searcher by name.

    The tuning kwargs (``alt=``, ``batch_size=``, ``refinement=``,
    ``scheduler=``) follow the semantics in the module docstring:
    ``None`` keeps defaults, inapplicable knobs are dropped, pinned
    variant settings win, and anything outside the vocabulary raises.
    """
    return get_spec(algorithm).build(database, **kwargs)
