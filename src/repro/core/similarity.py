"""Exact UOTS similarity evaluation.

Implements the reconstructed similarity model (see DESIGN.md section 1):

``Sim(q, tau) = lam * SimS(q.O, tau) + (1 - lam) * SimT(q.T, tau.T)`` with

``SimS(q.O, tau) = (1/|O|) * sum_{o in O} exp(-d(o, tau) / sigma)`` and
``d(o, tau) = min_{p in tau} sd(o, p)`` (network distance from the intended
place to the trajectory).  Both components live in ``[0, 1]``, so the
combined score does too — which is what makes the upper-bound algebra in
:mod:`repro.core.bounds` composable.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, Mapping

from repro.index.database import TrajectoryDatabase
from repro.network.graph import SpatialNetwork
from repro.text.similarity import TextMeasure, get_measure
from repro.trajectory.model import Trajectory

from repro.core.query import UOTSQuery
from repro.core.results import ScoredTrajectory

__all__ = [
    "distance_transform",
    "nearest_trajectory_distance",
    "trajectory_to_locations_distances",
    "spatial_similarity",
    "text_similarity",
    "combine",
    "ExactScorer",
]

_INF = float("inf")


def distance_transform(
    graph: SpatialNetwork, vertex_set: frozenset[int] | set[int]
) -> dict[int, float]:
    """Network distance from every reachable vertex to the vertex set.

    One multi-source Dijkstra seeded with all of ``vertex_set`` at distance
    zero: the settled distance of any vertex ``v`` is
    ``min over p in vertex_set of sd(v, p)``.  This is the refinement
    primitive — it prices *all* query locations against one trajectory in a
    single traversal.  Runs on the CSR fast path (one SciPy ``min_only``
    call when available).
    """
    from repro.network.csr import array_to_distance_dict, sssp_array

    for vertex in vertex_set:
        graph._check_vertex(vertex)
    if not vertex_set:
        return {}
    return array_to_distance_dict(sssp_array(graph.csr, vertex_set))


def trajectory_to_locations_distances(
    graph: SpatialNetwork,
    vertex_set: frozenset[int] | set[int],
    locations: tuple[int, ...],
) -> list[float]:
    """``d(o, tau)`` for each query location, in one bounded traversal.

    A multi-source Dijkstra from the trajectory's vertices that stops as
    soon as every query location is settled — the cheap form of the
    refinement primitive when only a handful of locations need pricing.
    Unreachable locations come back as ``inf``.
    """
    from repro.network.csr import targets_array

    for location in locations:
        graph._check_vertex(location)
    for vertex in vertex_set:
        graph._check_vertex(vertex)
    if not vertex_set:
        return [_INF] * len(locations)
    unique = list(dict.fromkeys(locations))
    found = dict(zip(unique, targets_array(graph.csr, vertex_set, unique)))
    return [found[location] for location in locations]


def nearest_trajectory_distance(
    graph: SpatialNetwork, source: int, vertex_set: frozenset[int] | set[int]
) -> float:
    """``d(source, tau) = min`` network distance from ``source`` to any vertex
    of the trajectory.

    A Dijkstra that stops at the *first* settled trajectory vertex (Dijkstra
    settles in distance order, so the first hit is the minimum).  Returns
    ``inf`` when the trajectory is unreachable.
    """
    graph._check_vertex(source)
    if source in vertex_set:
        return 0.0
    csr = graph.csr
    n = csr.num_vertices
    dist = [_INF] * n
    dist[source] = 0.0
    settled = bytearray(n)
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    pop = heapq.heappop
    push = heapq.heappush
    while heap:
        d, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if u in vertex_set:
            return d
        for k in range(indptr[u], indptr[u + 1]):
            v = indices[k]
            nd = d + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                push(heap, (nd, v))
    return _INF


def spatial_similarity(
    distances: Iterable[float], num_locations: int, sigma: float
) -> float:
    """``(1/|O|) * sum exp(-d / sigma)`` over per-location distances.

    Infinite distances (unreachable locations) contribute zero.
    """
    total = 0.0
    for d in distances:
        if d != _INF:
            total += math.exp(-d / sigma)
    return total / num_locations


def text_similarity(query: UOTSQuery, trajectory: Trajectory) -> float:
    """The query's textual similarity to a trajectory's keywords."""
    return get_measure(query.text_measure)(query.keywords, trajectory.keywords)


def combine(lam: float, spatial: float, textual: float) -> float:
    """The linear combination ``lam * SimS + (1 - lam) * SimT``."""
    return lam * spatial + (1.0 - lam) * textual


class ExactScorer:
    """Exact scoring of individual trajectories against one query.

    Used by the brute-force oracle, by refinement steps, and by tests.  Two
    spatial strategies are offered:

    - :meth:`score` runs one bounded Dijkstra per query location per call
      (cheap for a handful of trajectories);
    - :meth:`score_all` runs one *full* Dijkstra per query location and
      reuses the distance arrays across every trajectory (the right shape
      for scoring the whole database).
    """

    def __init__(self, database: TrajectoryDatabase, query: UOTSQuery):
        query.validate_against(database.graph)
        self._database = database
        self._query = query
        self._measure: TextMeasure = get_measure(query.text_measure)
        self._full_distances: list[Mapping[int, float]] | None = None

    # ------------------------------------------------------------ one-shot
    def score(self, trajectory: Trajectory) -> ScoredTrajectory:
        """Exact score of one trajectory (per-call Dijkstras)."""
        graph = self._database.graph
        query = self._query
        distances = (
            nearest_trajectory_distance(graph, location, trajectory.vertex_set)
            for location in query.locations
        )
        spatial = spatial_similarity(
            distances, query.num_locations, self._database.sigma
        )
        textual = self._measure(query.keywords, trajectory.keywords)
        return ScoredTrajectory(
            trajectory_id=trajectory.id,
            score=combine(query.lam, spatial, textual),
            spatial_similarity=spatial,
            text_similarity=textual,
        )

    # ------------------------------------------------------------ database
    def _ensure_full_distances(self) -> list[Mapping[int, float]]:
        if self._full_distances is None:
            from repro.network.dijkstra import single_source_distances

            self._full_distances = [
                single_source_distances(self._database.graph, location)
                for location in self._query.locations
            ]
        return self._full_distances

    def score_with_shared_distances(self, trajectory: Trajectory) -> ScoredTrajectory:
        """Exact score using the shared full-Dijkstra distance maps."""
        tables = self._ensure_full_distances()
        query = self._query
        distances = []
        for table in tables:
            best = _INF
            for vertex in trajectory.vertex_set:
                d = table.get(vertex)
                if d is not None and d < best:
                    best = d
            distances.append(best)
        spatial = spatial_similarity(
            distances, query.num_locations, self._database.sigma
        )
        textual = self._measure(query.keywords, trajectory.keywords)
        return ScoredTrajectory(
            trajectory_id=trajectory.id,
            score=combine(query.lam, spatial, textual),
            spatial_similarity=spatial,
            text_similarity=textual,
        )

    def score_all(self) -> list[ScoredTrajectory]:
        """Exact scores for every trajectory in the database, best first."""
        scored = [
            self.score_with_shared_distances(trajectory)
            for trajectory in self._database.trajectories
        ]
        scored.sort()
        return scored
