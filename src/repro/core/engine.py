"""High-level facade: the trip recommender.

Wraps a :class:`TrajectoryDatabase` and a searcher behind the interface the
paper's motivating application needs: "here are the places I want to pass
and what I like — recommend me trips".

The facade sits on the serving layer: each recommender owns a
:class:`~repro.service.service.QueryService`, so its queries flow through
the same admission/stats/isolation substrate as every other caller.  The
algorithm registry itself lives in :mod:`repro.core.registry`;
``ALGORITHMS`` and :func:`make_searcher` are re-exported here for
backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.plan import QueryPlan
from repro.core.query import UOTSQuery
from repro.core.registry import ALGORITHMS, make_searcher
from repro.core.results import SearchResult
from repro.index.database import TrajectoryDatabase
from repro.resilience.budget import SearchBudget
from repro.service.service import QueryService
from repro.trajectory.model import Trajectory

__all__ = ["Recommendation", "TripRecommender", "make_searcher", "ALGORITHMS"]


@dataclass(frozen=True)
class Recommendation:
    """A recommended trip, hydrated with the trajectory object."""

    trajectory: Trajectory
    score: float
    spatial_similarity: float
    text_similarity: float


class TripRecommender:
    """User-facing trip recommendation over a trajectory database.

    Tuning keywords (``alt=``, ``batch_size=``, ``scheduler=``,
    ``refinement=``) are forwarded to the algorithm's registry factory, so
    the facade can configure the search exactly as the CLI can.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        algorithm: str = "collaborative",
        **searcher_kwargs,
    ):
        self._service = QueryService(database, algorithm, **searcher_kwargs)

    @property
    def database(self) -> TrajectoryDatabase:
        """The underlying trajectory database."""
        return self._service.database

    @property
    def service(self) -> QueryService:
        """The query service answering this recommender's searches."""
        return self._service

    def recommend(
        self,
        locations: Iterable[int],
        preference: Iterable[str] | str = (),
        lam: float = 0.5,
        k: int = 3,
        text_measure: str = "jaccard",
        budget: SearchBudget | None = None,
    ) -> list[Recommendation]:
        """Recommend ``k`` trips passing near ``locations`` matching ``preference``.

        ``preference`` accepts free-form text ("lakeside walk then seafood")
        or an iterable of keywords.  ``budget`` caps the work (a latency
        contract): if it trips, the best trips found so far are returned.
        """
        result = self.search(
            UOTSQuery.create(
                locations, preference, lam=lam, k=k, text_measure=text_measure
            ),
            budget=budget,
        )
        database = self._service.database
        return [
            Recommendation(
                trajectory=database.get(item.trajectory_id),
                score=item.score,
                spatial_similarity=item.spatial_similarity,
                text_similarity=item.text_similarity,
            )
            for item in result.items
        ]

    def search(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Run a fully specified :class:`UOTSQuery` (optionally budgeted)."""
        return self._service.search(query, budget=budget)

    def explain(self, query: UOTSQuery) -> QueryPlan:
        """The query's execution plan, without running the search."""
        return self._service.plan(query)
