"""High-level facade: the trip recommender.

Wraps a :class:`TrajectoryDatabase` and a searcher behind the interface the
paper's motivating application needs: "here are the places I want to pass
and what I like — recommend me trips".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.baselines import BruteForceSearcher, TextFirstSearcher
from repro.core.query import UOTSQuery
from repro.core.results import SearchResult
from repro.core.search import CollaborativeSearcher, SpatialFirstSearcher
from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.resilience.budget import SearchBudget
from repro.trajectory.model import Trajectory

__all__ = ["Recommendation", "TripRecommender", "make_searcher", "ALGORITHMS"]

#: Algorithm registry: name -> searcher factory.  Factories accept the
#: collaborative searcher's tuning keywords (``alt=``, ``batch_size=``);
#: ablation baselines ignore the ones that don't apply to them.
ALGORITHMS = {
    "collaborative": lambda db, **kw: CollaborativeSearcher(
        db, scheduler="heuristic", **kw
    ),
    "collaborative-rr": lambda db, **kw: CollaborativeSearcher(
        db, scheduler="round-robin", **kw
    ),
    "collaborative-nr": lambda db, **kw: CollaborativeSearcher(
        db, refinement=False, **kw
    ),
    "spatial-first": lambda db, **kw: SpatialFirstSearcher(db),
    "text-first": lambda db, **kw: TextFirstSearcher(db),
    "brute-force": lambda db, **kw: BruteForceSearcher(db),
}


def make_searcher(database: TrajectoryDatabase, algorithm: str = "collaborative", **kwargs):
    """Instantiate a registered searcher by name.

    Extra keyword arguments (``alt=False``, ``batch_size=...``) reach the
    collaborative factories; the baselines ignore them.
    """
    try:
        factory = ALGORITHMS[algorithm]
    except KeyError:
        raise QueryError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    return factory(database, **kwargs)


@dataclass(frozen=True)
class Recommendation:
    """A recommended trip, hydrated with the trajectory object."""

    trajectory: Trajectory
    score: float
    spatial_similarity: float
    text_similarity: float


class TripRecommender:
    """User-facing trip recommendation over a trajectory database."""

    def __init__(self, database: TrajectoryDatabase, algorithm: str = "collaborative"):
        self._database = database
        self._searcher = make_searcher(database, algorithm)

    @property
    def database(self) -> TrajectoryDatabase:
        """The underlying trajectory database."""
        return self._database

    def recommend(
        self,
        locations: Iterable[int],
        preference: Iterable[str] | str = (),
        lam: float = 0.5,
        k: int = 3,
        text_measure: str = "jaccard",
        budget: SearchBudget | None = None,
    ) -> list[Recommendation]:
        """Recommend ``k`` trips passing near ``locations`` matching ``preference``.

        ``preference`` accepts free-form text ("lakeside walk then seafood")
        or an iterable of keywords.  ``budget`` caps the work (a latency
        contract): if it trips, the best trips found so far are returned.
        """
        result = self.search(
            UOTSQuery.create(
                locations, preference, lam=lam, k=k, text_measure=text_measure
            ),
            budget=budget,
        )
        return [
            Recommendation(
                trajectory=self._database.get(item.trajectory_id),
                score=item.score,
                spatial_similarity=item.spatial_similarity,
                text_similarity=item.text_similarity,
            )
            for item in result.items
        ]

    def search(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Run a fully specified :class:`UOTSQuery` (optionally budgeted)."""
        return self._searcher.search(query, budget=budget)
