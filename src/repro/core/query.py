"""The UOTS query model.

A user-oriented trajectory search query combines the traveler's *intended
places* (vertices of the spatial network they want their trip to pass near)
with their *textual preference* (keywords describing the kind of trip), a
preference weight ``lam`` between the two domains, and a result size ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import QueryError
from repro.network.graph import SpatialNetwork
from repro.resilience.budget import SearchBudget
from repro.text.analysis import normalize_keywords
from repro.text.similarity import get_measure

__all__ = ["UOTSQuery"]


@dataclass(frozen=True)
class UOTSQuery:
    """A user-oriented trajectory search query ``q = (O, T, lam, k)``.

    Attributes
    ----------
    locations:
        The intended places ``q.O`` — vertex ids of the spatial network.
        At least one; duplicates are rejected (they would double-count a
        place in the spatial similarity).
    keywords:
        The preference keywords ``q.T`` (may be empty: a purely spatial
        query).
    lam:
        Weight of the spatial domain; ``1 - lam`` weighs the textual domain.
    k:
        Number of trajectories to return.
    text_measure:
        Name of the textual similarity ("jaccard", "dice", "overlap",
        "cosine").
    budget:
        Optional :class:`~repro.resilience.SearchBudget` carried with the
        query (e.g. a per-query latency contract in a batch).  Execution
        policy, not query semantics: excluded from equality and hashing.
        A budget passed directly to ``search(query, budget=...)`` takes
        precedence.
    """

    locations: tuple[int, ...]
    keywords: frozenset[str] = frozenset()
    lam: float = 0.5
    k: int = 1
    text_measure: str = "jaccard"
    budget: SearchBudget | None = field(default=None, compare=False)

    def __post_init__(self):
        if not self.locations:
            raise QueryError("a query needs at least one intended location")
        if len(set(self.locations)) != len(self.locations):
            raise QueryError(f"duplicate query locations in {self.locations}")
        if not (0.0 <= self.lam <= 1.0):
            raise QueryError(f"lam must be in [0, 1], got {self.lam}")
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")
        get_measure(self.text_measure)  # validates the name eagerly

    @classmethod
    def create(
        cls,
        locations: Iterable[int],
        preference: Iterable[str] | str = (),
        lam: float = 0.5,
        k: int = 1,
        text_measure: str = "jaccard",
        budget: SearchBudget | None = None,
    ) -> "UOTSQuery":
        """Build a query from user-level inputs.

        ``preference`` accepts either a keyword iterable or a free-form
        string ("quiet lakeside walk then seafood"), which is tokenised and
        stop-word filtered.
        """
        return cls(
            locations=tuple(locations),
            keywords=normalize_keywords(preference),
            lam=lam,
            k=k,
            text_measure=text_measure,
            budget=budget,
        )

    def validate_against(self, graph: SpatialNetwork) -> None:
        """Check that every query location exists in ``graph``."""
        for location in self.locations:
            if not (0 <= location < graph.num_vertices):
                raise QueryError(
                    f"query location {location} is not a vertex of the network "
                    f"(|V|={graph.num_vertices})"
                )

    @property
    def num_locations(self) -> int:
        """``|q.O|`` — the number of intended places."""
        return len(self.locations)

    def __repr__(self) -> str:
        return (
            f"UOTSQuery(|O|={len(self.locations)}, T={sorted(self.keywords)!r}, "
            f"lam={self.lam}, k={self.k}, measure={self.text_measure})"
        )
