"""Query sources: one incremental expansion per intended place.

A *query source* is the paper family's name for a point the search expands
from — here, one of the query's intended locations in the spatial domain.
The scheduler (see :mod:`repro.core.scheduler`) decides which source gets to
expand next.
"""

from __future__ import annotations

import math

from repro.core.bounds import SourceRadiiWeights
from repro.network.expansion import IncrementalExpansion
from repro.network.graph import SpatialNetwork

__all__ = ["QuerySource", "make_sources", "current_radii_weights"]


class QuerySource:
    """One query location with its resumable network expansion."""

    __slots__ = ("index", "location", "expansion")

    def __init__(self, index: int, location: int, graph: SpatialNetwork):
        self.index = index
        self.location = location
        self.expansion = IncrementalExpansion(graph, location)

    @property
    def radius(self) -> float:
        """Current expansion radius (stays at the last settled distance
        once the source is exhausted — check :attr:`exhausted`)."""
        return self.expansion.radius

    @property
    def exhausted(self) -> bool:
        """Whether the reachable component is fully settled."""
        return self.expansion.exhausted

    def expand(self) -> tuple[int, float] | None:
        """Settle and return the next vertex, or ``None`` at exhaustion."""
        return self.expansion.expand()

    def expand_steps(self, max_steps: int) -> list[tuple[int, float]]:
        """Settle up to ``max_steps`` vertices in one batched call."""
        return self.expansion.expand_steps(max_steps)

    def __repr__(self) -> str:
        return (
            f"QuerySource(index={self.index}, location={self.location}, "
            f"radius={self.radius:.2f})"
        )


def make_sources(graph: SpatialNetwork, locations: tuple[int, ...]) -> list[QuerySource]:
    """One :class:`QuerySource` per query location, in query order."""
    return [QuerySource(i, loc, graph) for i, loc in enumerate(locations)]


def current_radii_weights(
    sources: list[QuerySource], sigma: float, alpha: float
) -> SourceRadiiWeights:
    """Frontier contributions ``alpha * exp(-r_i / sigma)`` for current radii.

    ``alpha`` is the per-source score weight (``lam / |O|`` for a UOTS
    query); exhausted sources contribute zero.
    """
    weights = []
    for source in sources:
        if source.exhausted:
            # An exhausted source can reach nothing further: its frontier
            # contribution is exactly zero even though its radius stays at
            # the last settled distance.
            weights.append(0.0)
        else:
            weights.append(alpha * math.exp(-source.radius / sigma))
    return SourceRadiiWeights(weights)
