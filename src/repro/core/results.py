"""Result and statistics types shared by all searchers."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["ScoredTrajectory", "SearchStats", "SearchResult", "TopK"]


@dataclass(frozen=True, slots=True)
class ScoredTrajectory:
    """One recommended trajectory with its similarity decomposition."""

    trajectory_id: int
    score: float
    spatial_similarity: float
    text_similarity: float

    def __lt__(self, other: "ScoredTrajectory") -> bool:
        # Higher score first; ties broken by lower id for determinism.
        if self.score != other.score:
            return self.score > other.score
        return self.trajectory_id < other.trajectory_id


@dataclass
class SearchStats:
    """Work counters, the paper's efficiency metrics.

    ``visited_trajectories`` counts distinct trajectories whose similarity
    state was materialised during the search (the paper's "number of visited
    trajectories", a proxy for data accesses); ``expanded_vertices`` counts
    Dijkstra settle operations across all query sources;
    ``similarity_evaluations`` counts exact spatiotemporal/spatial-textual
    scoring calls; ``pruned_trajectories`` counts trajectories eliminated by
    bounds without exact evaluation.
    """

    visited_trajectories: int = 0
    expanded_vertices: int = 0
    similarity_evaluations: int = 0
    pruned_trajectories: int = 0
    text_candidates: int = 0
    elapsed_seconds: float = 0.0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another stats record into this one (for batch runs)."""
        self.visited_trajectories += other.visited_trajectories
        self.expanded_vertices += other.expanded_vertices
        self.similarity_evaluations += other.similarity_evaluations
        self.pruned_trajectories += other.pruned_trajectories
        self.text_candidates += other.text_candidates
        self.elapsed_seconds += other.elapsed_seconds


@dataclass
class SearchResult:
    """Ranked output of one search plus its work counters."""

    items: list[ScoredTrajectory]
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def ids(self) -> list[int]:
        """Result trajectory ids, best first."""
        return [item.trajectory_id for item in self.items]

    @property
    def scores(self) -> list[float]:
        """Result scores, best first."""
        return [item.score for item in self.items]

    def best(self) -> ScoredTrajectory | None:
        """The top-ranked item, or ``None`` for an empty result."""
        return self.items[0] if self.items else None

    def __len__(self) -> int:
        return len(self.items)


class TopK:
    """A bounded max-result collector with a monotone admission threshold.

    Keeps the ``k`` best :class:`ScoredTrajectory` items seen so far.  Ties
    at the admission boundary are broken toward lower trajectory ids so that
    every correct algorithm returns an identical ranking.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = k
        # Min-heap on (score, -id): the worst kept item sits at heap[0].
        self._heap: list[tuple[float, int, ScoredTrajectory]] = []

    def offer(self, item: ScoredTrajectory) -> bool:
        """Consider an item; returns whether it was admitted."""
        entry = (item.score, -item.trajectory_id, item)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    @property
    def full(self) -> bool:
        """Whether ``k`` items have been collected."""
        return len(self._heap) >= self._k

    @property
    def threshold(self) -> float:
        """Score of the current k-th best item (``-inf`` until full).

        A candidate whose upper bound is below (or ties, losing on id) this
        threshold can never enter the result.
        """
        if not self.full:
            return float("-inf")
        return self._heap[0][0]

    def ranked(self) -> list[ScoredTrajectory]:
        """The kept items, best first."""
        return sorted((entry[2] for entry in self._heap))

    def __len__(self) -> int:
        return len(self._heap)
