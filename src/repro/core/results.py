"""Result and statistics types shared by all searchers."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["ScoredTrajectory", "SearchStats", "SearchResult", "TopK"]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class ScoredTrajectory:
    """One recommended trajectory with its similarity decomposition.

    ``exact=False`` marks a best-effort item from a degraded (budgeted)
    search whose score is a *lower bound* — the trajectory was only partly
    scanned when the budget tripped.
    """

    trajectory_id: int
    score: float
    spatial_similarity: float
    text_similarity: float
    exact: bool = True

    def __lt__(self, other: "ScoredTrajectory") -> bool:
        # Higher score first; ties broken by lower id for determinism.
        if self.score != other.score:
            return self.score > other.score
        return self.trajectory_id < other.trajectory_id


@dataclass
class SearchStats:
    """Work counters, the paper's efficiency metrics plus resilience counters.

    ``visited_trajectories`` counts distinct trajectories whose similarity
    state was materialised during the search (the paper's "number of visited
    trajectories", a proxy for data accesses); ``expanded_vertices`` counts
    Dijkstra settle operations across all query sources;
    ``similarity_evaluations`` counts exact spatiotemporal/spatial-textual
    scoring calls; ``pruned_trajectories`` counts trajectories eliminated by
    bounds without exact evaluation.

    The resilience counters: ``refinements`` counts direct candidate
    refinements (each a multi-source Dijkstra, metered by search budgets);
    ``retries`` counts task re-submissions after worker crashes;
    ``degraded_queries``/``failed_queries`` count budget degradations and
    isolated per-query failures in a batch; ``executor`` records which
    execution path actually ran (``"sequential"``, ``"fork"``, or
    ``"sequential-fallback"`` after persistent pool failure).

    The performance counters: ``expand_batches`` counts scheduler rounds
    (each one batched ``expand_steps`` call into the Dijkstra kernel);
    ``alt_pruned`` counts active trajectories whose landmark-capped upper
    bound sat at or below the admission threshold when the search
    terminated while the pure radius bound still exceeded it — the states
    ALT retired early; the ``*_cache_*`` fields are this query's share of
    the cross-query distance/text cache traffic.

    ``cache`` records whether the answer was served from a cache instead
    of a search: ``"result"`` marks a service-level result-cache hit
    (zero work counters, O(1) serve), ``""`` an actually executed query —
    dashboards and the semantics oracle distinguish the two paths by it.

    The sharding counters: ``shards_planned`` counts shards the sharded
    planner considered, ``shards_executed`` the shards actually searched,
    ``shards_pruned`` the shards skipped because their best-possible upper
    bound fell below the running global kth score.  ``shard_seconds`` sums
    per-shard search wall time; ``shard_critical_seconds`` sums, per
    scheduling wave, only the *slowest* shard of the wave — the scatter
    phase's critical path, i.e. what the shard portion of the query would
    cost with one core per shard.  Flat searches leave all five at zero.
    """

    visited_trajectories: int = 0
    expanded_vertices: int = 0
    similarity_evaluations: int = 0
    pruned_trajectories: int = 0
    text_candidates: int = 0
    elapsed_seconds: float = 0.0
    refinements: int = 0
    retries: int = 0
    degraded_queries: int = 0
    failed_queries: int = 0
    executor: str = ""
    expand_batches: int = 0
    alt_pruned: int = 0
    distance_cache_hits: int = 0
    distance_cache_misses: int = 0
    text_cache_hits: int = 0
    text_cache_misses: int = 0
    cache: str = ""
    shards_planned: int = 0
    shards_executed: int = 0
    shards_pruned: int = 0
    shard_seconds: float = 0.0
    shard_critical_seconds: float = 0.0
    #: The served plan's ``estimated_cost`` (worst-case vertex settles +
    #: text evaluations), stamped by the searcher that executed the plan;
    #: 0.0 when the query ran without one (plan-less baseline ``search``
    #: calls, cache hits).  The drift accounting compares it against the
    #: measured ``expanded_vertices + similarity_evaluations``.
    estimated_cost: float = 0.0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another stats record into this one (for batch runs)."""
        self.visited_trajectories += other.visited_trajectories
        self.expanded_vertices += other.expanded_vertices
        self.similarity_evaluations += other.similarity_evaluations
        self.pruned_trajectories += other.pruned_trajectories
        self.text_candidates += other.text_candidates
        self.elapsed_seconds += other.elapsed_seconds
        self.refinements += other.refinements
        self.retries += other.retries
        self.degraded_queries += other.degraded_queries
        self.failed_queries += other.failed_queries
        if not self.executor:
            self.executor = other.executor
        self.expand_batches += other.expand_batches
        self.alt_pruned += other.alt_pruned
        self.distance_cache_hits += other.distance_cache_hits
        self.distance_cache_misses += other.distance_cache_misses
        self.text_cache_hits += other.text_cache_hits
        self.text_cache_misses += other.text_cache_misses
        if not self.cache:
            self.cache = other.cache
        self.shards_planned += other.shards_planned
        self.shards_executed += other.shards_executed
        self.shards_pruned += other.shards_pruned
        self.shard_seconds += other.shard_seconds
        self.shard_critical_seconds += other.shard_critical_seconds
        self.estimated_cost += other.estimated_cost


@dataclass
class SearchResult:
    """Ranked output of one search plus its work counters.

    A budgeted search that runs out of budget returns ``exact=False`` with
    a ``degradation_reason`` and the bound tracker's ``residual_bound``:
    no trajectory missing from ``items`` (and no ``exact=False`` item's
    true score) can exceed ``residual_bound`` — the score error bar of the
    degraded answer.  A query isolated as failed inside a batch carries the
    one-line failure in ``error`` with empty ``items``.
    """

    items: list[ScoredTrajectory]
    stats: SearchStats = field(default_factory=SearchStats)
    exact: bool = True
    degradation_reason: str | None = None
    residual_bound: float = 0.0
    error: str | None = None

    @property
    def ids(self) -> list[int]:
        """Result trajectory ids, best first."""
        return [item.trajectory_id for item in self.items]

    @property
    def scores(self) -> list[float]:
        """Result scores, best first."""
        return [item.score for item in self.items]

    @property
    def ok(self) -> bool:
        """Whether the search produced a (possibly degraded) answer."""
        return self.error is None

    def best(self) -> ScoredTrajectory | None:
        """The top-ranked item, or ``None`` for an empty result."""
        return self.items[0] if self.items else None

    def confirmed_prefix(self) -> list[ScoredTrajectory]:
        """The leading items guaranteed to match the exact top-k ranking.

        For an exact result this is all of ``items``.  For a degraded
        result it is the maximal prefix of exactly scored items whose
        scores strictly dominate ``residual_bound``: every trajectory the
        budget cut off is bounded by ``residual_bound``, so nothing missed
        can outrank (or reorder) these items.
        """
        if self.exact:
            return list(self.items)
        prefix = []
        for item in self.items:
            if item.exact and item.score > self.residual_bound + _EPS:
                prefix.append(item)
            else:
                break
        return prefix

    def __len__(self) -> int:
        return len(self.items)


class TopK:
    """A bounded max-result collector with a monotone admission threshold.

    Keeps the ``k`` best :class:`ScoredTrajectory` items seen so far.  Ties
    at the admission boundary are broken toward lower trajectory ids so that
    every correct algorithm returns an identical ranking.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self._k = k
        # Min-heap on (score, -id): the worst kept item sits at heap[0].
        self._heap: list[tuple[float, int, ScoredTrajectory]] = []

    def offer(self, item: ScoredTrajectory) -> bool:
        """Consider an item; returns whether it was admitted."""
        entry = (item.score, -item.trajectory_id, item)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    @property
    def full(self) -> bool:
        """Whether ``k`` items have been collected."""
        return len(self._heap) >= self._k

    @property
    def threshold(self) -> float:
        """Score of the current k-th best item (``-inf`` until full).

        A candidate whose upper bound is below (or ties, losing on id) this
        threshold can never enter the result.
        """
        if not self.full:
            return float("-inf")
        return self._heap[0][0]

    def ranked(self) -> list[ScoredTrajectory]:
        """The kept items, best first."""
        return sorted((entry[2] for entry in self._heap))

    def __len__(self) -> int:
        return len(self._heap)
