"""Shared span instrumentation for searchers.

Every registry searcher (and the directional engine) wraps its execution
in one ``execute`` span and annotates it with the work counters of the
result it produced; the collaborative searcher additionally attaches the
per-stage breakdown (see :class:`~repro.obs.trace.StageTimer`).  The
helpers here keep that uniform — and keep the cost of *disabled* tracing
to a single ambient-tracer check per query.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING

from repro.obs.trace import Span, current_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SearchResult

__all__ = ["execute_span", "annotate_search_span"]


@contextmanager
def execute_span(algorithm: str):
    """An ``execute`` span under the ambient tracer (``None`` when off)."""
    tracer = current_tracer()
    if not tracer.enabled:
        yield None
        return
    span = tracer.begin("execute", algorithm=algorithm)
    try:
        yield span
    finally:
        tracer.end(span)


def annotate_search_span(span: Span | None, result: "SearchResult") -> None:
    """Stamp a finished search's work counters onto its span."""
    if span is None:
        return
    stats = result.stats
    attributes = {
        "exact": result.exact,
        "visited": stats.visited_trajectories,
        "expanded_vertices": stats.expanded_vertices,
        "evaluations": stats.similarity_evaluations,
        "pruned": stats.pruned_trajectories,
        "refinements": stats.refinements,
    }
    if stats.expand_batches:
        attributes["expand_batches"] = stats.expand_batches
    if stats.alt_pruned:
        attributes["alt_pruned"] = stats.alt_pruned
    if stats.retries:
        attributes["retries"] = stats.retries
    if stats.shards_planned:
        attributes["shards_planned"] = stats.shards_planned
        attributes["shards_executed"] = stats.shards_executed
        attributes["shards_pruned"] = stats.shards_pruned
    cache_hits = stats.distance_cache_hits + stats.text_cache_hits
    cache_misses = stats.distance_cache_misses + stats.text_cache_misses
    if cache_hits or cache_misses:
        attributes["cache_hits"] = cache_hits
        attributes["cache_misses"] = cache_misses
    if result.degradation_reason is not None:
        attributes["degradation_reason"] = result.degradation_reason
    if result.error is not None:
        attributes["error"] = result.error
    span.update(attributes)
