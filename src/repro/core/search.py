"""The collaborative spatial-textual expansion search (the UOTS algorithm).

The search explores the spatial and textual domains together:

1. the textual domain is resolved up front from the keyword inverted index
   (exact ``SimT`` for every trajectory sharing a keyword; zero elsewhere);
2. the spatial domain is explored by interleaved incremental expansions from
   the query locations, under a scheduling strategy;
3. similarity upper bounds over partly scanned and unseen trajectories
   (:mod:`repro.core.bounds`) drive the termination test: once the k-th best
   exact score dominates the global bound, everything not fully scanned is
   pruned wholesale.

``SpatialFirstSearcher`` is the ablation that refuses to use text during
search (text enters only at refinement), which demonstrates the value of the
textual collaboration; the round-robin scheduler option is the ablation for
the scheduling heuristic.
"""

from __future__ import annotations

import math
import time
from typing import Callable

import numpy as np

from repro.core.bounds import BoundTracker
from repro.core.query import UOTSQuery
from repro.core.results import ScoredTrajectory, SearchResult, SearchStats, TopK
from repro.core.scheduler import Scheduler, make_scheduler
from repro.core.similarity import (
    combine,
    spatial_similarity,
    trajectory_to_locations_distances,
)
from repro.core.sources import current_radii_weights, make_sources
from repro.errors import BudgetExceededError
from repro.index.database import TrajectoryDatabase
from repro.resilience.budget import SearchBudget
from repro.text.similarity import get_measure

__all__ = ["CollaborativeSearcher", "SpatialFirstSearcher"]

_EPS = 1e-9
_MISS = object()


class CollaborativeSearcher:
    """Top-k UOTS search with spatial-textual pruning.

    Parameters
    ----------
    database:
        The indexed trajectory database to search.
    scheduler:
        ``"heuristic"`` (the paper's strategy, default), ``"round-robin"``
        (the w/o-h ablation), or a custom :class:`Scheduler`.
    batch_size:
        Expansion steps granted to the selected source between scheduler and
        termination re-evaluations.
    """

    #: Whether textual similarities participate in the search bounds.
    use_text_in_bounds: bool = True

    #: Whether blocked candidates are resolved by direct refinement (one
    #: distance-transform Dijkstra) instead of waiting for every expansion
    #: to reach them.  The spatial-first ablation turns this off.
    use_refinement: bool = True

    #: Whether landmark (ALT) lower bounds cap the frontier term of partly
    #: scanned trajectories.  Semantics-preserving: caps only tighten upper
    #: bounds, so the exact top-k is unchanged — the search just terminates
    #: earlier.  Ignored when the database has no landmark index
    #: (disconnected graph) or the query is text-only.
    use_alt: bool = True

    def __init__(
        self,
        database: TrajectoryDatabase,
        scheduler: str | Scheduler = "heuristic",
        batch_size: int = 16,
        refinement: bool | None = None,
        alt: bool | None = None,
    ):
        """``refinement=None``/``alt=None`` keep the class defaults (both
        on for the collaborative search, off for the spatial-first
        ablation)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._database = database
        self._scheduler_spec = scheduler
        self._batch_size = batch_size
        if refinement is not None:
            self.use_refinement = refinement
        if alt is not None:
            self.use_alt = alt

    # ----------------------------------------------------------------- API
    def search(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Run the query; exact top-k, or the best-so-far under a budget.

        ``budget`` (or ``query.budget`` when none is passed) caps the work:
        when it trips, the search stops at the next batch boundary and
        returns its current top-k flagged ``exact=False``, with the bound
        tracker's residual upper bound as the score error bar — the
        anytime behaviour a latency-bound service needs.  Strict budgets
        raise :class:`~repro.errors.BudgetExceededError` instead.
        """
        database = self._database
        query.validate_against(database.graph)
        if budget is None:
            budget = query.budget
        meter = None if budget is None or budget.unlimited else budget.start()
        started = time.perf_counter()
        stats = SearchStats()
        caches = database.caches
        distance_snapshot = caches.distances.stats.snapshot()
        text_snapshot = caches.text.stats.snapshot()

        def capture_cache_stats() -> None:
            """Attribute this query's share of the shared cache traffic."""
            d = caches.distances.stats.delta_since(distance_snapshot)
            t = caches.text.stats.delta_since(text_snapshot)
            stats.distance_cache_hits = d.hits
            stats.distance_cache_misses = d.misses
            stats.text_cache_hits = t.hits
            stats.text_cache_misses = t.misses

        if self.use_text_in_bounds or query.lam == 0.0:
            text_scores = self._exact_text_scores(query, stats)
        else:
            text_scores = {}  # spatial-first defers all text evaluation
        if query.lam == 0.0:
            result = self._text_only(query, text_scores, stats)
            capture_cache_stats()
            result.stats.elapsed_seconds = time.perf_counter() - started
            return result

        scheduler = (
            make_scheduler(self._scheduler_spec)
            if isinstance(self._scheduler_spec, str)
            else self._scheduler_spec
        )
        lam = query.lam
        alpha = lam / query.num_locations  # per-source score weight
        sigma = database.sigma
        frontier_caps = (
            self._make_frontier_caps(query, alpha, sigma) if self.use_alt else None
        )
        tracker = self._make_tracker(query, text_scores, frontier_caps)
        sources = make_sources(database.graph, query.locations)
        topk = TopK(query.k)
        measure = get_measure(query.text_measure)

        def finalize_exact(trajectory_id: int, spatial: float, text_hint: float) -> None:
            if self.use_text_in_bounds:
                text = text_hint
            else:  # spatial-first: text evaluated only now, at refinement
                text = measure(
                    query.keywords, database.get(trajectory_id).keywords
                )
            stats.similarity_evaluations += 1
            topk.offer(
                ScoredTrajectory(
                    trajectory_id=trajectory_id,
                    score=combine(lam, spatial, text),
                    spatial_similarity=spatial,
                    text_similarity=text,
                )
            )

        def finalize(trajectory_id: int, weight_sum: float, text_from_tracker: float) -> None:
            finalize_exact(trajectory_id, weight_sum / lam, text_from_tracker)

        distance_cache = caches.distances

        def refined_distances(trajectory_id: int) -> list[float]:
            """Exact per-location distances, via the cross-query cache.

            Full hits skip the Dijkstra entirely; partial hits shrink it to
            the missing locations.  ``stats.refinements`` counts only the
            traversals actually run, so budgets meter real work.
            """
            if not distance_cache.enabled:
                stats.refinements += 1
                return trajectory_to_locations_distances(
                    database.graph,
                    database.get(trajectory_id).vertex_set,
                    query.locations,
                )
            resolved: dict[int, float] = {}
            missing: list[int] = []
            for location in query.locations:
                if location in resolved or location in missing:
                    continue
                hit = distance_cache.get((trajectory_id, location), _MISS)
                if hit is _MISS:
                    missing.append(location)
                else:
                    resolved[location] = hit
            if missing:
                stats.refinements += 1
                computed = trajectory_to_locations_distances(
                    database.graph,
                    database.get(trajectory_id).vertex_set,
                    tuple(missing),
                )
                for location, distance in zip(missing, computed):
                    resolved[location] = distance
                    distance_cache.put((trajectory_id, location), distance)
            return [resolved[location] for location in query.locations]

        def refine(trajectory_id: int, text_hint: float) -> None:
            """Resolve one blocked candidate exactly: a single multi-source
            Dijkstra from the candidate's vertices prices every query
            location at once (stopping as soon as all are settled)."""
            tracker.finish(trajectory_id)
            distances = refined_distances(trajectory_id)
            finalize_exact(
                trajectory_id,
                spatial_similarity(distances, query.num_locations, sigma),
                text_hint,
            )

        vertex_index = database.vertex_index
        terminated_early = False
        degradation_reason = None
        while True:
            radii_weights = current_radii_weights(sources, sigma, alpha)
            if meter is not None:
                # Budget checks live at batch boundaries: work counters are
                # compared first, the deadline costs one perf_counter call.
                reason = meter.exceeded(stats.expanded_vertices, stats.refinements)
                if reason is not None:
                    if budget.strict:
                        raise BudgetExceededError(reason)
                    degradation_reason = reason
                    break
            if topk.full:
                threshold = topk.threshold
                unseen = tracker.unseen_upper_bound(radii_weights)
                best_bound, best_id = tracker.best_active_bound(radii_weights)
                if max(unseen, best_bound) <= threshold + _EPS:
                    if frontier_caps is not None:
                        stats.alt_pruned = tracker.count_alt_pruned(
                            radii_weights, threshold
                        )
                    terminated_early = True
                    break
                if self.use_refinement:
                    # A candidate whose irreducible bound (known + text)
                    # already beats the threshold can never be pruned by
                    # more expansion — evaluate it exactly instead.
                    if (
                        best_id is not None
                        and tracker.irreducible_bound_of(best_id) > threshold + _EPS
                    ):
                        refine(best_id, tracker.text_score(best_id))
                        continue
                    text_score, text_id = tracker.best_unseen_text_candidate()
                    if (
                        text_id is not None
                        and (1.0 - lam) * text_score > threshold + _EPS
                    ):
                        refine(text_id, text_score)
                        continue
            source = scheduler.select(sources, tracker, radii_weights)
            if source is None:
                break  # every component fully settled
            stats.expand_batches += 1
            steps = source.expand_steps(self._batch_size)
            if steps:
                stats.expanded_vertices += len(steps)
                source_index = source.index
                trajectories_at = vertex_index.trajectories_at
                record_hit = tracker.record_hit
                exp = math.exp
                for vertex, distance in steps:
                    hit_weight = alpha * exp(-distance / sigma)
                    for trajectory_id in trajectories_at(vertex):
                        completed = record_hit(
                            trajectory_id, source_index, hit_weight, radii_weights
                        )
                        if completed is not None:
                            finalize(trajectory_id, *completed)
            if source.exhausted:
                for item in tracker.mark_source_exhausted(source.index):
                    finalize(*item)

        if degradation_reason is not None:
            stats.degraded_queries = 1
            residual = tracker.global_upper_bound(radii_weights)
            items = self._best_effort_items(query, tracker, topk)
            stats.visited_trajectories = tracker.num_seen
            stats.pruned_trajectories = len(database) - stats.similarity_evaluations
            capture_cache_stats()
            stats.elapsed_seconds = time.perf_counter() - started
            return SearchResult(
                items=items,
                stats=stats,
                exact=False,
                degradation_reason=degradation_reason,
                residual_bound=residual,
            )

        if not terminated_early:
            self._drain_at_exhaustion(query, tracker, text_scores, finalize, topk)

        stats.visited_trajectories = tracker.num_seen
        stats.pruned_trajectories = len(database) - stats.similarity_evaluations
        capture_cache_stats()
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(items=topk.ranked(), stats=stats)

    def _best_effort_items(
        self, query: UOTSQuery, tracker: BoundTracker, topk: TopK
    ) -> list[ScoredTrajectory]:
        """The degraded ranking: exact results merged with lower bounds.

        Finished trajectories keep their exact scores.  Partly scanned ones
        enter with a score *lower bound* (accumulated expansion weight plus
        the known text term — unknown sources contribute at least zero), and
        the best never-scanned keyword candidates enter on their textual
        term alone.  Items ranked by these estimates, best first, top-k.
        The spatial-first mode knows no exact text during the search, so its
        lower bounds use text 0.
        """
        lam = query.lam
        entries = {item.trajectory_id: item for item in topk.ranked()}
        for trajectory_id, known_weight, text in tracker.active_states():
            if trajectory_id in entries:
                continue
            text_lb = text if self.use_text_in_bounds else 0.0
            spatial_lb = known_weight / lam if lam > 0.0 else 0.0
            entries[trajectory_id] = ScoredTrajectory(
                trajectory_id=trajectory_id,
                score=combine(lam, spatial_lb, text_lb),
                spatial_similarity=spatial_lb,
                text_similarity=text_lb,
                exact=False,
            )
        for text, trajectory_id in tracker.unseen_text_candidates(query.k):
            if trajectory_id in entries:
                continue
            entries[trajectory_id] = ScoredTrajectory(
                trajectory_id=trajectory_id,
                score=combine(lam, 0.0, text),
                spatial_similarity=0.0,
                text_similarity=text,
                exact=False,
            )
        return sorted(entries.values())[: query.k]

    # -------------------------------------------------------------- pieces
    def _exact_text_scores(
        self, query: UOTSQuery, stats: SearchStats
    ) -> dict[int, float]:
        """Exact textual similarity for every keyword-sharing trajectory.

        Cached across queries on ``(keyword set, measure)``: the score
        table only depends on the query text, not the locations, so
        repeated preference texts reuse it wholesale.
        """
        cache = self._database.caches.text
        key = (query.keywords, query.text_measure)
        cached = cache.get(key, _MISS)
        if cached is not _MISS:
            stats.text_candidates = len(cached)
            return dict(cached)
        index = self._database.keyword_index
        measure = get_measure(query.text_measure)
        scores = {}
        for trajectory_id in index.candidates(query.keywords):
            score = measure(query.keywords, index.keywords_of(trajectory_id))
            if score > 0.0:
                scores[trajectory_id] = score
        stats.text_candidates = len(scores)
        cache.put(key, dict(scores))
        return scores

    def _make_frontier_caps(
        self, query: UOTSQuery, alpha: float, sigma: float
    ) -> Callable[[int], list[float]] | None:
        """The ALT cap provider: per-source contribution ceilings.

        For source location ``o_i`` and trajectory ``tau``, the landmark
        table gives an admissible lower bound ``lb_i <= d(o_i, tau)``
        (triangle inequality, minimised over the trajectory's vertices), so
        ``alpha * exp(-lb_i / sigma)`` caps the source's contribution no
        matter how slowly its expansion radius grows.  ``None`` when the
        database has no landmark index (disconnected graph).
        """
        landmark_index = self._database.landmark_index
        if landmark_index is None:
            return None
        loc_array = np.array(query.locations, dtype=np.intp)
        vertex_array = self._database.vertex_array
        lower_bounds_to_set = landmark_index.lower_bounds_to_set

        def frontier_caps(trajectory_id: int) -> list[float]:
            bounds = lower_bounds_to_set(loc_array, vertex_array(trajectory_id))
            return (alpha * np.exp(-bounds / sigma)).tolist()

        return frontier_caps

    def _make_tracker(
        self,
        query: UOTSQuery,
        text_scores: dict[int, float],
        frontier_caps: Callable[[int], list[float]] | None = None,
    ) -> BoundTracker:
        return BoundTracker(
            num_sources=query.num_locations,
            text_weight=1.0 - query.lam,
            text_scores=text_scores,
            frontier_caps=frontier_caps,
        )

    def _text_only(
        self, query: UOTSQuery, text_scores: dict[int, float], stats: SearchStats
    ) -> SearchResult:
        """Fast path for ``lam == 0``: the ranking is the text ranking."""
        topk = TopK(query.k)
        for trajectory_id, text in text_scores.items():
            stats.similarity_evaluations += 1
            topk.offer(
                ScoredTrajectory(trajectory_id, text * (1.0 - query.lam), 0.0, text)
            )
        self._zero_fill(topk, stats, exclude=text_scores.keys())
        stats.visited_trajectories = len(text_scores)
        stats.pruned_trajectories = len(self._database) - stats.similarity_evaluations
        return SearchResult(items=topk.ranked(), stats=stats)

    def _drain_at_exhaustion(self, query, tracker, text_scores, finalize, topk) -> None:
        """Every source is exhausted: all remaining scores are now exact.

        Partly scanned trajectories keep their accumulated spatial weight
        (missing sources are unreachable, contributing zero); spatially
        unseen trajectories have zero spatial similarity, so only those with
        positive text can score, plus zero-score filler if k exceeds the
        number of scoring trajectories.
        """
        for trajectory_id, known_weight, text in list(tracker.active_states()):
            finalize(trajectory_id, known_weight, text)
        candidate_ids = (
            text_scores
            if self.use_text_in_bounds
            else self._database.keyword_index.candidates(query.keywords)
        )
        for trajectory_id in candidate_ids:
            if not tracker.is_seen(trajectory_id):
                finalize(trajectory_id, 0.0, text_scores.get(trajectory_id, 0.0))
        if not topk.full:
            stats_probe = SearchStats()  # zero-fill shouldn't inflate counters
            self._zero_fill(
                topk,
                stats_probe,
                exclude={
                    item.trajectory_id for item in topk.ranked()
                },
            )

    def _zero_fill(self, topk: TopK, stats: SearchStats, exclude) -> None:
        """Fill an underfull result with (deterministic) zero-score items."""
        if topk.full:
            return
        for trajectory_id in sorted(self._database.trajectories.ids()):
            if topk.full:
                break
            if trajectory_id in exclude:
                continue
            topk.offer(ScoredTrajectory(trajectory_id, 0.0, 0.0, 0.0))


class SpatialFirstSearcher(CollaborativeSearcher):
    """Expansion search without textual collaboration (baseline).

    Textual similarity is evaluated only when a trajectory is refined; the
    search bounds must therefore assume the maximal text score (1) for every
    unrefined trajectory whenever the query carries keywords, which weakens
    pruning exactly as the paper argues.  Direct refinement is disabled too:
    this ablation is the pure expansion strategy.
    """

    use_text_in_bounds = False
    use_refinement = False
    use_alt = False  # the ablation is the *pure* expansion strategy

    def __init__(
        self,
        database: TrajectoryDatabase,
        scheduler: str | Scheduler = "round-robin",
        batch_size: int = 16,
    ):
        super().__init__(database, scheduler, batch_size)

    def _make_tracker(
        self,
        query: UOTSQuery,
        text_scores: dict[int, float],
        frontier_caps: Callable[[int], list[float]] | None = None,
    ) -> BoundTracker:
        text_bound = 1.0 if query.keywords else 0.0
        return BoundTracker(
            num_sources=query.num_locations,
            text_weight=1.0 - query.lam,
            text_scores={},
            default_text=text_bound,
            unseen_text_override=text_bound,
            frontier_caps=frontier_caps,
        )
