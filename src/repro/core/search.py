"""The collaborative spatial-textual expansion search (the UOTS algorithm).

The search explores the spatial and textual domains together:

1. the textual domain is resolved up front from the keyword inverted index
   (exact ``SimT`` for every trajectory sharing a keyword; zero elsewhere);
2. the spatial domain is explored by interleaved incremental expansions from
   the query locations, under a scheduling strategy;
3. similarity upper bounds over partly scanned and unseen trajectories
   (:mod:`repro.core.bounds`) drive the termination test: once the k-th best
   exact score dominates the global bound, everything not fully scanned is
   pruned wholesale.

``SpatialFirstSearcher`` is the ablation that refuses to use text during
search (text enters only at refinement), which demonstrates the value of the
textual collaboration; the round-robin scheduler option is the ablation for
the scheduling heuristic.

Plan/execute split
------------------
Searchers are *stateless*: they hold only the database handle and immutable
configuration.  Every piece of per-query mutable state — sources, scheduler
instance, bound tracker, top-k collector, budget meter, stats — lives in a
:class:`SearchContext` created inside :meth:`CollaborativeSearcher.execute`,
so one searcher instance is shareable across queries, callers, and threads.
The search itself is a loop over named pipeline stages operating on that
context::

    plan(query)          resolve decisions (scheduler, ALT, candidates)
    _resolve_text        exact SimT table from the inverted index
    per round:
      _begin_round       refresh radii weights, check the budget
      _terminate         the bound-vs-threshold termination test
      _refine_blocked    directly resolve candidates expansion can't prune
      _expand_round      one scheduled batch of incremental expansion
    _finalize            drain / degrade / wrap up stats

``search(query)`` remains the one-call convenience:
``execute(plan(query), budget)``.
"""

from __future__ import annotations

import math
import time
from typing import Callable

import numpy as np

from repro.core.bounds import BoundTracker
from repro.core.instrument import annotate_search_span, execute_span
from repro.core.plan import QueryPlan
from repro.core.query import UOTSQuery
from repro.core.results import ScoredTrajectory, SearchResult, SearchStats, TopK
from repro.core.scheduler import Scheduler, make_scheduler
from repro.core.similarity import (
    combine,
    spatial_similarity,
    trajectory_to_locations_distances,
)
from repro.core.sources import current_radii_weights, make_sources
from repro.errors import BudgetExceededError
from repro.index.database import TrajectoryDatabase
from repro.obs.trace import StageTimer, current_tracer
from repro.resilience.budget import SearchBudget
from repro.text.similarity import get_measure

__all__ = ["CollaborativeSearcher", "SpatialFirstSearcher", "SearchContext"]

_EPS = 1e-9
_MISS = object()


class SearchContext:
    """All per-query mutable state of one search execution.

    Created by :meth:`CollaborativeSearcher.execute` and threaded through
    the pipeline stages; nothing in it outlives the query.  State-ownership
    rule: the searcher owns configuration and shared indexes (immutable
    during a search), the context owns everything that changes — so two
    concurrent executions on the same searcher never share mutable state
    (the database's cross-query caches are themselves safe to share).
    """

    __slots__ = (
        "query",
        "budget",
        "score_floor",
        "unseen_caps",
        "meter",
        "started",
        "stats",
        "scheduler",
        "sources",
        "tracker",
        "topk",
        "measure",
        "text_scores",
        "lam",
        "alpha",
        "frontier_caps",
        "radii_weights",
        "round_threshold",
        "round_best_id",
        "terminated_early",
        "degradation_reason",
        "caches",
        "distance_snapshot",
        "text_snapshot",
    )

    def __init__(
        self,
        query: UOTSQuery,
        budget: SearchBudget | None,
        score_floor: float | None = None,
        unseen_caps: list[float] | None = None,
    ):
        self.query = query
        self.budget = budget
        self.score_floor = score_floor
        self.unseen_caps = unseen_caps
        self.meter = None if budget is None or budget.unlimited else budget.start()
        self.started = time.perf_counter()
        self.stats = SearchStats()
        self.lam = query.lam
        self.alpha = query.lam / query.num_locations
        self.scheduler: Scheduler | None = None
        self.sources = None
        self.tracker: BoundTracker | None = None
        self.topk: TopK | None = None
        self.measure = None
        self.text_scores: dict[int, float] = {}
        self.frontier_caps = None
        self.radii_weights = None
        self.round_threshold: float | None = None
        self.round_best_id: int | None = None
        self.terminated_early = False
        self.degradation_reason: str | None = None
        self.caches = None
        self.distance_snapshot = None
        self.text_snapshot = None


class CollaborativeSearcher:
    """Top-k UOTS search with spatial-textual pruning.

    Stateless and shareable: instances carry only the database handle and
    tuning configuration; per-query state lives in a :class:`SearchContext`
    created per :meth:`execute` call.

    Parameters
    ----------
    database:
        The indexed trajectory database to search.
    scheduler:
        ``"heuristic"`` (the paper's strategy, default), ``"round-robin"``
        (the w/o-h ablation), or a custom :class:`Scheduler` *instance*.
        Named schedulers are instantiated fresh per query; a custom
        instance is reused as-is (the caller owns its state).
    batch_size:
        Expansion steps granted to the selected source between scheduler and
        termination re-evaluations.
    """

    #: Registry-facing algorithm name reported in query plans.
    plan_name = "collaborative"

    #: Whether textual similarities participate in the search bounds.
    use_text_in_bounds: bool = True

    #: Whether blocked candidates are resolved by direct refinement (one
    #: distance-transform Dijkstra) instead of waiting for every expansion
    #: to reach them.  The spatial-first ablation turns this off.
    use_refinement: bool = True

    #: Whether landmark (ALT) lower bounds cap the frontier term of partly
    #: scanned trajectories.  Semantics-preserving: caps only tighten upper
    #: bounds, so the exact top-k is unchanged — the search just terminates
    #: earlier.  Ignored when the database has no landmark index
    #: (disconnected graph) or the query is text-only.
    use_alt: bool = True

    def __init__(
        self,
        database: TrajectoryDatabase,
        scheduler: str | Scheduler = "heuristic",
        batch_size: int = 16,
        refinement: bool | None = None,
        alt: bool | None = None,
    ):
        """``refinement=None``/``alt=None`` keep the class defaults (both
        on for the collaborative search, off for the spatial-first
        ablation)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._database = database
        self._scheduler_spec = scheduler
        self._batch_size = batch_size
        if refinement is not None:
            self.use_refinement = refinement
        if alt is not None:
            self.use_alt = alt

    # ----------------------------------------------------------------- API
    def plan(self, query: UOTSQuery) -> QueryPlan:
        """Resolve the query's execution decisions without running it."""
        database = self._database
        query.validate_against(database.graph)
        spec = self._scheduler_spec
        notes: list[str] = []
        if isinstance(spec, str):
            scheduler_name = spec
        else:
            scheduler_name = type(spec).__name__
            notes.append("custom scheduler instance supplied by the caller")
        alt_enabled, alt_reason = self._resolve_alt(query)
        candidate_count = (
            len(database.keyword_index.candidates(query.keywords))
            if query.keywords
            else 0
        )
        if query.lam == 0.0:
            scheduler_name = "none"
            estimated_cost = float(candidate_count)
            notes.append("text-only fast path: the ranking is the text ranking")
        else:
            # Worst case: every source settles the whole graph, plus one
            # textual evaluation per keyword candidate.
            estimated_cost = float(
                candidate_count + query.num_locations * database.graph.num_vertices
            )
        return QueryPlan(
            algorithm=self.plan_name,
            query=query,
            scheduler=scheduler_name,
            batch_size=self._batch_size,
            use_text_in_bounds=self.use_text_in_bounds,
            use_refinement=self.use_refinement,
            alt_enabled=alt_enabled,
            alt_reason=alt_reason,
            text_measure=query.text_measure,
            source_vertices=query.locations,
            candidate_count=candidate_count,
            database_size=len(database),
            cache_enabled=database.caches.distances.enabled,
            estimated_cost=estimated_cost,
            notes=tuple(notes),
        )

    def execute(
        self,
        plan: QueryPlan,
        budget: SearchBudget | None = None,
        *,
        score_floor: float | None = None,
        unseen_caps: list[float] | None = None,
    ) -> SearchResult:
        """Run a previously built plan; exact top-k, or best-so-far under a
        budget.

        ``budget`` (or ``plan.query.budget`` when none is passed) caps the
        work: when it trips, the search stops at the next batch boundary
        and returns its current top-k flagged ``exact=False``, with the
        bound tracker's residual upper bound as the score error bar — the
        anytime behaviour a latency-bound service needs.  Strict budgets
        raise :class:`~repro.errors.BudgetExceededError` instead.

        ``score_floor`` is the scatter-gather hook: a caller merging this
        result with others (the sharded searcher) promises it will discard
        anything scoring at or below the floor, so the termination test may
        prune against ``max(kth score, floor)`` — and may terminate before
        ``k`` items are even collected once every unresolved bound sits at
        or below the floor.  ``unseen_caps`` (per-source contribution caps
        valid for every trajectory of this database, see
        :class:`~repro.core.bounds.BoundTracker`) tightens the unseen bound
        the same way.  Both default to off, leaving the classic single
        -database semantics byte-identical.
        """
        query: UOTSQuery = plan.query
        query.validate_against(self._database.graph)
        if budget is None:
            budget = query.budget
        with execute_span(self.plan_name) as span:
            timer = StageTimer() if span is not None else None
            result = self._run_stages(
                plan, query, budget, timer,
                score_floor=score_floor, unseen_caps=unseen_caps,
            )
            result.stats.estimated_cost = plan.estimated_cost
            if span is not None:
                timer.attach_to(span)
                annotate_search_span(span, result)
            return result

    def _run_stages(
        self,
        plan: QueryPlan,
        query: UOTSQuery,
        budget: SearchBudget | None,
        timer: StageTimer | None = None,
        *,
        score_floor: float | None = None,
        unseen_caps: list[float] | None = None,
    ) -> SearchResult:
        """The pipeline-stage loop, optionally metered by a stage timer.

        The untraced branch is the whole hot path when tracing is off (the
        default); the traced branch is the same loop with one clock read per
        stage transition, which is what makes the per-stage breakdown sum to
        the execute-span total by construction.
        """
        ctx = self._open_context(query, budget, score_floor, unseen_caps)
        if timer is not None:
            timer.enter("resolve_text")
        self._resolve_text(ctx)
        if query.lam == 0.0:
            if timer is not None:
                timer.enter("finalize")
            return self._finalize_text_only(ctx)
        if timer is not None:
            timer.enter("prepare_domain")
        self._prepare_domain(ctx, plan.alt_enabled)
        if timer is None:
            while True:
                self._begin_round(ctx)
                if ctx.degradation_reason is not None:
                    break
                if self._terminate(ctx):
                    break
                if self._refine_blocked(ctx):
                    continue
                if not self._expand_round(ctx):
                    break
        else:
            while True:
                timer.enter("begin_round")
                self._begin_round(ctx)
                if ctx.degradation_reason is not None:
                    break
                timer.enter("terminate")
                if self._terminate(ctx):
                    break
                timer.enter("refine_blocked")
                if self._refine_blocked(ctx):
                    continue
                timer.enter("expand_round")
                if not self._expand_round(ctx):
                    break
            timer.enter("finalize")
        return self._finalize(ctx)

    def search(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Run the query end to end: ``execute(plan(query), budget)``."""
        tracer = current_tracer()
        if not tracer.enabled:
            return self.execute(self.plan(query), budget)
        with tracer.span("plan", algorithm=self.plan_name) as span:
            plan = self.plan(query)
            if span is not None:
                span.set("scheduler", plan.scheduler)
                span.set("candidates", plan.candidate_count)
                span.set("estimated_cost", plan.estimated_cost)
        return self.execute(plan, budget)

    # ------------------------------------------------------ pipeline stages
    def _open_context(
        self,
        query: UOTSQuery,
        budget: SearchBudget | None,
        score_floor: float | None = None,
        unseen_caps: list[float] | None = None,
    ) -> SearchContext:
        """Stage 0: the per-query state container plus cache snapshots."""
        ctx = SearchContext(query, budget, score_floor, unseen_caps)
        caches = self._database.caches
        ctx.caches = caches
        ctx.distance_snapshot = caches.distances.stats.snapshot()
        ctx.text_snapshot = caches.text.stats.snapshot()
        return ctx

    def _resolve_text(self, ctx: SearchContext) -> None:
        """Stage ``resolve_text``: the exact SimT table (or nothing, for the
        spatial-first ablation that defers text to refinement)."""
        if self.use_text_in_bounds or ctx.query.lam == 0.0:
            ctx.text_scores = self._exact_text_scores(ctx.query, ctx.stats)
        else:
            ctx.text_scores = {}  # spatial-first defers all text evaluation

    def _prepare_domain(self, ctx: SearchContext, alt_enabled: bool) -> None:
        """Build the spatial-domain state: scheduler, tracker, sources."""
        query = ctx.query
        spec = self._scheduler_spec
        ctx.scheduler = make_scheduler(spec) if isinstance(spec, str) else spec
        ctx.frontier_caps = (
            self._make_frontier_caps(query, ctx.alpha, self._database.sigma)
            if alt_enabled
            else None
        )
        ctx.tracker = self._make_tracker(
            query, ctx.text_scores, ctx.frontier_caps, ctx.unseen_caps
        )
        ctx.sources = make_sources(self._database.graph, query.locations)
        ctx.topk = TopK(query.k)
        ctx.measure = get_measure(query.text_measure)

    def _begin_round(self, ctx: SearchContext) -> None:
        """Refresh the frontier radii weights and check the budget.

        Budget checks live at batch boundaries: work counters are compared
        first, the deadline costs one perf_counter call.  A tripped strict
        budget raises; a plain budget records the degradation reason and
        the main loop stops at this round.
        """
        ctx.radii_weights = current_radii_weights(
            ctx.sources, self._database.sigma, ctx.alpha
        )
        meter = ctx.meter
        if meter is not None:
            reason = meter.exceeded(
                ctx.stats.expanded_vertices, ctx.stats.refinements
            )
            if reason is not None:
                if ctx.budget.strict:
                    raise BudgetExceededError(reason)
                ctx.degradation_reason = reason

    def _terminate(self, ctx: SearchContext) -> bool:
        """Stage ``terminate?``: the bound-vs-threshold termination test.

        Also stashes the round's threshold and loosest candidate for
        :meth:`_refine_blocked`, so the (heap-refining) bound computation
        runs once per round.
        """
        topk = ctx.topk
        floor = ctx.score_floor
        if not topk.full:
            if floor is None:
                ctx.round_threshold = None
                ctx.round_best_id = None
                return False
            # Scatter-gather mode: the merging caller discards anything at
            # or below the floor, so the floor alone justifies termination
            # even before k items exist in this shard.
            threshold = floor
        elif floor is None:
            threshold = topk.threshold
        else:
            threshold = max(topk.threshold, floor)
        tracker = ctx.tracker
        radii_weights = ctx.radii_weights
        unseen = tracker.unseen_upper_bound(radii_weights)
        best_bound, best_id = tracker.best_active_bound(radii_weights)
        if max(unseen, best_bound) <= threshold + _EPS:
            if ctx.frontier_caps is not None:
                ctx.stats.alt_pruned = tracker.count_alt_pruned(
                    radii_weights, threshold
                )
            ctx.terminated_early = True
            return True
        ctx.round_threshold = threshold
        ctx.round_best_id = best_id
        return False

    def _refine_blocked(self, ctx: SearchContext) -> bool:
        """Stage ``refine_blocked``: directly resolve candidates that more
        expansion can never prune.  Returns whether one was refined (the
        round restarts to re-check budget and termination)."""
        if not self.use_refinement or ctx.round_threshold is None:
            return False
        tracker = ctx.tracker
        threshold = ctx.round_threshold
        best_id = ctx.round_best_id
        # A candidate whose irreducible bound (known + text) already beats
        # the threshold can never be pruned by more expansion — evaluate it
        # exactly instead.
        if (
            best_id is not None
            and tracker.irreducible_bound_of(best_id) > threshold + _EPS
        ):
            self._refine_one(ctx, best_id, tracker.text_score(best_id))
            return True
        text_score, text_id = tracker.best_unseen_text_candidate()
        if text_id is not None and (1.0 - ctx.lam) * text_score > threshold + _EPS:
            self._refine_one(ctx, text_id, text_score)
            return True
        return False

    def _expand_round(self, ctx: SearchContext) -> bool:
        """Stage ``expand_round``: one scheduled batch of expansion.

        Returns ``False`` when every component is fully settled (nothing
        left to expand)."""
        source = ctx.scheduler.select(ctx.sources, ctx.tracker, ctx.radii_weights)
        if source is None:
            return False
        stats = ctx.stats
        stats.expand_batches += 1
        steps = source.expand_steps(self._batch_size)
        if steps:
            stats.expanded_vertices += len(steps)
            source_index = source.index
            trajectories_at = self._database.vertex_index.trajectories_at
            record_hit = ctx.tracker.record_hit
            radii_weights = ctx.radii_weights
            finalize = self._finalize_completed
            alpha = ctx.alpha
            sigma = self._database.sigma
            exp = math.exp
            for vertex, distance in steps:
                hit_weight = alpha * exp(-distance / sigma)
                for trajectory_id in trajectories_at(vertex):
                    completed = record_hit(
                        trajectory_id, source_index, hit_weight, radii_weights
                    )
                    if completed is not None:
                        finalize(ctx, trajectory_id, *completed)
        if source.exhausted:
            for item in ctx.tracker.mark_source_exhausted(source.index):
                self._finalize_completed(ctx, *item)
        return True

    def _finalize(self, ctx: SearchContext) -> SearchResult:
        """Stage ``finalize``: degraded wrap-up or exhaustion drain, then
        the stats bookkeeping shared by both outcomes."""
        stats = ctx.stats
        if ctx.degradation_reason is not None:
            stats.degraded_queries = 1
            residual = ctx.tracker.global_upper_bound(ctx.radii_weights)
            items = self._best_effort_items(ctx.query, ctx.tracker, ctx.topk)
            stats.visited_trajectories = ctx.tracker.num_seen
            stats.pruned_trajectories = (
                len(self._database) - stats.similarity_evaluations
            )
            self._capture_cache_stats(ctx)
            stats.elapsed_seconds = time.perf_counter() - ctx.started
            return SearchResult(
                items=items,
                stats=stats,
                exact=False,
                degradation_reason=ctx.degradation_reason,
                residual_bound=residual,
            )

        if not ctx.terminated_early:
            self._drain_at_exhaustion(ctx)

        stats.visited_trajectories = ctx.tracker.num_seen
        stats.pruned_trajectories = len(self._database) - stats.similarity_evaluations
        self._capture_cache_stats(ctx)
        stats.elapsed_seconds = time.perf_counter() - ctx.started
        return SearchResult(items=ctx.topk.ranked(), stats=stats)

    # ------------------------------------------------------------- helpers
    def _resolve_alt(self, query: UOTSQuery) -> tuple[bool, str]:
        """The query-time ALT decision and its reason (for the plan)."""
        if not self.use_alt:
            return False, "disabled by configuration"
        if query.lam == 0.0:
            return False, "text-only query (lam=0) performs no spatial expansion"
        if self._database.landmark_index is None:
            return False, "no landmark index (disconnected graph)"
        return True, "landmark lower bounds cap frontier terms of blocking candidates"

    def _capture_cache_stats(self, ctx: SearchContext) -> None:
        """Attribute this query's share of the shared cache traffic."""
        stats = ctx.stats
        d = ctx.caches.distances.stats.delta_since(ctx.distance_snapshot)
        t = ctx.caches.text.stats.delta_since(ctx.text_snapshot)
        stats.distance_cache_hits = d.hits
        stats.distance_cache_misses = d.misses
        stats.text_cache_hits = t.hits
        stats.text_cache_misses = t.misses

    def _finalize_exact(
        self, ctx: SearchContext, trajectory_id: int, spatial: float, text_hint: float
    ) -> None:
        """Offer one exactly scored trajectory to the top-k collector."""
        if self.use_text_in_bounds:
            text = text_hint
        else:  # spatial-first: text evaluated only now, at refinement
            text = ctx.measure(
                ctx.query.keywords, self._database.get(trajectory_id).keywords
            )
        ctx.stats.similarity_evaluations += 1
        ctx.topk.offer(
            ScoredTrajectory(
                trajectory_id=trajectory_id,
                score=combine(ctx.lam, spatial, text),
                spatial_similarity=spatial,
                text_similarity=text,
            )
        )

    def _finalize_completed(
        self, ctx: SearchContext, trajectory_id: int, weight_sum: float, text: float
    ) -> None:
        """Finalize a trajectory fully scanned by the expansions."""
        self._finalize_exact(ctx, trajectory_id, weight_sum / ctx.lam, text)

    def _refined_distances(self, ctx: SearchContext, trajectory_id: int) -> list[float]:
        """Exact per-location distances, via the cross-query cache.

        Full hits skip the Dijkstra entirely; partial hits shrink it to
        the missing locations.  ``stats.refinements`` counts only the
        traversals actually run, so budgets meter real work.
        """
        query = ctx.query
        distance_cache = ctx.caches.distances
        if not distance_cache.enabled:
            ctx.stats.refinements += 1
            return trajectory_to_locations_distances(
                self._database.graph,
                self._database.get(trajectory_id).vertex_set,
                query.locations,
            )
        resolved: dict[int, float] = {}
        missing: list[int] = []
        for location in query.locations:
            if location in resolved or location in missing:
                continue
            hit = distance_cache.get((trajectory_id, location), _MISS)
            if hit is _MISS:
                missing.append(location)
            else:
                resolved[location] = hit
        if missing:
            ctx.stats.refinements += 1
            computed = trajectory_to_locations_distances(
                self._database.graph,
                self._database.get(trajectory_id).vertex_set,
                tuple(missing),
            )
            for location, distance in zip(missing, computed):
                resolved[location] = distance
                distance_cache.put((trajectory_id, location), distance)
        return [resolved[location] for location in query.locations]

    def _refine_one(
        self, ctx: SearchContext, trajectory_id: int, text_hint: float
    ) -> None:
        """Resolve one blocked candidate exactly: a single multi-source
        Dijkstra from the candidate's vertices prices every query
        location at once (stopping as soon as all are settled)."""
        ctx.tracker.finish(trajectory_id)
        distances = self._refined_distances(ctx, trajectory_id)
        self._finalize_exact(
            ctx,
            trajectory_id,
            spatial_similarity(distances, ctx.query.num_locations, self._database.sigma),
            text_hint,
        )

    def _best_effort_items(
        self, query: UOTSQuery, tracker: BoundTracker, topk: TopK
    ) -> list[ScoredTrajectory]:
        """The degraded ranking: exact results merged with lower bounds.

        Finished trajectories keep their exact scores.  Partly scanned ones
        enter with a score *lower bound* (accumulated expansion weight plus
        the known text term — unknown sources contribute at least zero), and
        the best never-scanned keyword candidates enter on their textual
        term alone.  Items ranked by these estimates, best first, top-k.
        The spatial-first mode knows no exact text during the search, so its
        lower bounds use text 0.
        """
        lam = query.lam
        entries = {item.trajectory_id: item for item in topk.ranked()}
        for trajectory_id, known_weight, text in tracker.active_states():
            if trajectory_id in entries:
                continue
            text_lb = text if self.use_text_in_bounds else 0.0
            spatial_lb = known_weight / lam if lam > 0.0 else 0.0
            entries[trajectory_id] = ScoredTrajectory(
                trajectory_id=trajectory_id,
                score=combine(lam, spatial_lb, text_lb),
                spatial_similarity=spatial_lb,
                text_similarity=text_lb,
                exact=False,
            )
        for text, trajectory_id in tracker.unseen_text_candidates(query.k):
            if trajectory_id in entries:
                continue
            entries[trajectory_id] = ScoredTrajectory(
                trajectory_id=trajectory_id,
                score=combine(lam, 0.0, text),
                spatial_similarity=0.0,
                text_similarity=text,
                exact=False,
            )
        return sorted(entries.values())[: query.k]

    # -------------------------------------------------------------- pieces
    def _exact_text_scores(
        self, query: UOTSQuery, stats: SearchStats
    ) -> dict[int, float]:
        """Exact textual similarity for every keyword-sharing trajectory.

        Cached across queries on ``(keyword set, measure)``: the score
        table only depends on the query text, not the locations, so
        repeated preference texts reuse it wholesale.
        """
        cache = self._database.caches.text
        key = (query.keywords, query.text_measure)
        cached = cache.get(key, _MISS)
        if cached is not _MISS:
            stats.text_candidates = len(cached)
            return dict(cached)
        index = self._database.keyword_index
        measure = get_measure(query.text_measure)
        scores = {}
        for trajectory_id in index.candidates(query.keywords):
            score = measure(query.keywords, index.keywords_of(trajectory_id))
            if score > 0.0:
                scores[trajectory_id] = score
        stats.text_candidates = len(scores)
        cache.put(key, dict(scores))
        return scores

    def _make_frontier_caps(
        self, query: UOTSQuery, alpha: float, sigma: float
    ) -> Callable[[int], list[float]] | None:
        """The ALT cap provider: per-source contribution ceilings.

        For source location ``o_i`` and trajectory ``tau``, the landmark
        table gives an admissible lower bound ``lb_i <= d(o_i, tau)``
        (triangle inequality, minimised over the trajectory's vertices), so
        ``alpha * exp(-lb_i / sigma)`` caps the source's contribution no
        matter how slowly its expansion radius grows.  ``None`` when the
        database has no landmark index (disconnected graph).
        """
        landmark_index = self._database.landmark_index
        if landmark_index is None:
            return None
        loc_array = np.array(query.locations, dtype=np.intp)
        vertex_array = self._database.vertex_array
        lower_bounds_to_set = landmark_index.lower_bounds_to_set

        def frontier_caps(trajectory_id: int) -> list[float]:
            bounds = lower_bounds_to_set(loc_array, vertex_array(trajectory_id))
            return (alpha * np.exp(-bounds / sigma)).tolist()

        return frontier_caps

    def _make_tracker(
        self,
        query: UOTSQuery,
        text_scores: dict[int, float],
        frontier_caps: Callable[[int], list[float]] | None = None,
        unseen_caps: list[float] | None = None,
    ) -> BoundTracker:
        return BoundTracker(
            num_sources=query.num_locations,
            text_weight=1.0 - query.lam,
            text_scores=text_scores,
            frontier_caps=frontier_caps,
            unseen_caps=unseen_caps,
        )

    def _finalize_text_only(self, ctx: SearchContext) -> SearchResult:
        """Fast path for ``lam == 0``: the ranking is the text ranking."""
        query = ctx.query
        stats = ctx.stats
        topk = TopK(query.k)
        for trajectory_id, text in ctx.text_scores.items():
            stats.similarity_evaluations += 1
            topk.offer(
                ScoredTrajectory(trajectory_id, text * (1.0 - query.lam), 0.0, text)
            )
        self._zero_fill(topk, stats, exclude=ctx.text_scores.keys())
        stats.visited_trajectories = len(ctx.text_scores)
        stats.pruned_trajectories = len(self._database) - stats.similarity_evaluations
        self._capture_cache_stats(ctx)
        stats.elapsed_seconds = time.perf_counter() - ctx.started
        return SearchResult(items=topk.ranked(), stats=stats)

    def _drain_at_exhaustion(self, ctx: SearchContext) -> None:
        """Every source is exhausted: all remaining scores are now exact.

        Partly scanned trajectories keep their accumulated spatial weight
        (missing sources are unreachable, contributing zero); spatially
        unseen trajectories have zero spatial similarity, so only those with
        positive text can score, plus zero-score filler if k exceeds the
        number of scoring trajectories.
        """
        for trajectory_id, known_weight, text in list(ctx.tracker.active_states()):
            self._finalize_completed(ctx, trajectory_id, known_weight, text)
        candidate_ids = (
            ctx.text_scores
            if self.use_text_in_bounds
            else self._database.keyword_index.candidates(ctx.query.keywords)
        )
        for trajectory_id in candidate_ids:
            if not ctx.tracker.is_seen(trajectory_id):
                self._finalize_completed(
                    ctx, trajectory_id, 0.0, ctx.text_scores.get(trajectory_id, 0.0)
                )
        if not ctx.topk.full:
            stats_probe = SearchStats()  # zero-fill shouldn't inflate counters
            self._zero_fill(
                ctx.topk,
                stats_probe,
                exclude={item.trajectory_id for item in ctx.topk.ranked()},
            )

    def _zero_fill(self, topk: TopK, stats: SearchStats, exclude) -> None:
        """Fill an underfull result with (deterministic) zero-score items."""
        if topk.full:
            return
        for trajectory_id in sorted(self._database.trajectories.ids()):
            if topk.full:
                break
            if trajectory_id in exclude:
                continue
            topk.offer(ScoredTrajectory(trajectory_id, 0.0, 0.0, 0.0))


class SpatialFirstSearcher(CollaborativeSearcher):
    """Expansion search without textual collaboration (baseline).

    Textual similarity is evaluated only when a trajectory is refined; the
    search bounds must therefore assume the maximal text score (1) for every
    unrefined trajectory whenever the query carries keywords, which weakens
    pruning exactly as the paper argues.  Direct refinement is disabled too:
    this ablation is the pure expansion strategy.
    """

    plan_name = "spatial-first"
    use_text_in_bounds = False
    use_refinement = False
    use_alt = False  # the ablation is the *pure* expansion strategy

    def __init__(
        self,
        database: TrajectoryDatabase,
        scheduler: str | Scheduler = "round-robin",
        batch_size: int = 16,
    ):
        super().__init__(database, scheduler, batch_size)

    def _make_tracker(
        self,
        query: UOTSQuery,
        text_scores: dict[int, float],
        frontier_caps: Callable[[int], list[float]] | None = None,
        unseen_caps: list[float] | None = None,
    ) -> BoundTracker:
        text_bound = 1.0 if query.keywords else 0.0
        return BoundTracker(
            num_sources=query.num_locations,
            text_weight=1.0 - query.lam,
            text_scores={},
            default_text=text_bound,
            unseen_text_override=text_bound,
            frontier_caps=frontier_caps,
            unseen_caps=unseen_caps,
        )
