"""Similarity upper bounds over partially explored trajectories.

During an expansion search each query source (an intended place in UOTS; a
sample point or timestamp in the matching/join extensions) explores its
domain incrementally.  For a trajectory ``tau`` and source ``i`` one of
three things is true at any moment:

1. the expansion from ``i`` has scanned ``tau`` at distance ``d_i`` — then
   the source's *weight contribution* ``alpha_i * exp(-d_i / sigma_i)`` is
   exact (expansions scan in non-decreasing distance order);
2. it has not — then ``d_i >= r_i``, the expansion's current radius, so the
   contribution is at most ``alpha_i * exp(-r_i / sigma_i)``;
3. the expansion is exhausted without reaching ``tau`` — the contribution
   is exactly zero.

``alpha_i`` folds the domain weighting into the source (``lam/m`` for the
``m`` spatial sources of a UOTS query; ``(1-lam)/m`` for temporal sources in
the extensions), so a trajectory's *score* is simply the sum of all source
contributions plus ``text_weight * SimT``.  Because radii only grow, every
bound computed now dominates every bound computed later — which makes a lazy
max-heap a valid way to track the loosest partly scanned trajectory, the
quantity the termination test needs.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Mapping, Sequence

__all__ = ["SourceRadiiWeights", "BoundTracker"]

_INF = float("inf")
_EPS = 1e-12


class SourceRadiiWeights:
    """Per-source frontier contributions ``alpha_i * exp(-r_i / sigma_i)``.

    Recomputed once per termination check instead of once per trajectory.
    An exhausted source has radius ``inf`` and weight 0.  The caller supplies
    the already-evaluated weights (it knows each source's domain scale).
    """

    __slots__ = ("weights", "total")

    def __init__(self, weights: list[float]):
        self.weights = weights
        self.total = sum(weights)


class _State:
    """Partial knowledge about one scanned, not yet finished trajectory."""

    __slots__ = ("known", "known_weight", "text", "caps")

    def __init__(self, text: float):
        self.known: set[int] = set()
        self.known_weight = 0.0
        self.text = text
        # Per-source frontier caps (ALT): source i's unknown contribution
        # can never exceed caps[i], however small the radii still are.
        # Computed lazily — only for states that reach the top of the bound
        # heap, where tightening actually decides termination.
        self.caps: list[float] | None = None


class BoundTracker:
    """Bookkeeping of partial contributions, bounds, and completion events."""

    def __init__(
        self,
        num_sources: int,
        text_weight: float,
        text_scores: Mapping[int, float],
        default_text: float = 0.0,
        unseen_text_override: float | None = None,
        frontier_caps: Callable[[int], list[float] | None] | None = None,
        unseen_caps: Sequence[float] | None = None,
    ):
        """``text_scores`` maps trajectory id -> *exact* textual similarity.

        ``text_weight`` scales the textual term in every bound (``1 - lam``
        for UOTS; 0 for the purely spatiotemporal extensions).
        ``default_text`` is the textual value assumed for ids absent from
        ``text_scores`` (0 when texts are fully known, as in the
        collaborative search; 1 for a spatial-first search that defers text
        evaluation and must stay admissible).  ``unseen_text_override``,
        when given, replaces the best-unseen-text bookkeeping with a
        constant (again for the spatial-first mode).

        ``frontier_caps`` is the ALT hook: given a trajectory id it returns
        per-source caps on the unknown-source contributions
        (``alpha_i * exp(-lb_i / sigma_i)`` from an admissible distance
        lower bound ``lb_i <= d_i``).  Caps only ever *tighten* upper
        bounds, so every pruning decision stays semantics-preserving;
        ``None`` keeps the pure radius-based bound.  The hook is invoked
        lazily — only for trajectories that surface as the loosest active
        candidate — so its cost scales with the handful of states blocking
        termination, not with everything scanned.

        ``unseen_caps`` are per-source constants capping the contribution
        of any *never-scanned* trajectory, regardless of the current radii.
        A sharded search supplies ``alpha_i * exp(-lb_i / sigma_i)`` from a
        lower bound ``lb_i`` on source ``i``'s distance to the whole shard:
        every unseen trajectory of the shard satisfies the bound, so the
        capped unseen bound stays admissible while letting a far shard
        terminate without growing its radii past the shard's distance.
        """
        if num_sources < 1:
            raise ValueError("need at least one query source")
        self._m = num_sources
        self._text_weight = text_weight
        self._frontier_caps = frontier_caps
        if unseen_caps is not None and len(unseen_caps) != num_sources:
            raise ValueError("unseen_caps must have one entry per source")
        self._unseen_caps = list(unseen_caps) if unseen_caps is not None else None
        self._text = dict(text_scores)
        self._default_text = default_text
        self._unseen_text_override = unseen_text_override
        self._states: dict[int, _State] = {}
        self._finished: set[int] = set()
        self._exhausted: set[int] = set()
        # Lazy max-heap of (-upper_bound, trajectory_id); keys only ever
        # overestimate the current bound (bounds decrease over time).
        self._heap: list[tuple[float, int]] = []
        # Descending text scores drive the best-unseen-text pointer.
        self._text_order: list[tuple[float, int]] = sorted(
            ((score, tid) for tid, score in self._text.items()), reverse=True
        )
        self._text_pointer = 0

    # ------------------------------------------------------------ accessors
    @property
    def num_seen(self) -> int:
        """Distinct trajectories scanned so far (active + finished)."""
        return len(self._states) + len(self._finished)

    @property
    def num_active(self) -> int:
        """Currently partly scanned trajectories."""
        return len(self._states)

    def is_finished(self, trajectory_id: int) -> bool:
        """Whether the trajectory's expansion contributions are final."""
        return trajectory_id in self._finished

    def is_seen(self, trajectory_id: int) -> bool:
        """Whether any source has reached the trajectory."""
        return trajectory_id in self._states or trajectory_id in self._finished

    def text_score(self, trajectory_id: int) -> float:
        """The textual value used in bounds (exact score or the default)."""
        return self._text.get(trajectory_id, self._default_text)

    # -------------------------------------------------------------- updates
    def record_hit(
        self,
        trajectory_id: int,
        source_index: int,
        weight: float,
        radii_weights: SourceRadiiWeights,
    ) -> tuple[float, float] | None:
        """Register the first scan of ``trajectory_id`` by ``source_index``.

        ``weight`` is the source's exact contribution
        ``alpha_i * exp(-d_i / sigma_i)``.  Returns
        ``(expansion_weight_sum, text_similarity)`` when the hit completes
        the trajectory (every source has reached it or is exhausted), else
        ``None``.  Repeated hits from the same source are ignored (only the
        first is the minimum distance).
        """
        if trajectory_id in self._finished:
            return None
        state = self._states.get(trajectory_id)
        if state is None:
            state = _State(self.text_score(trajectory_id))
            self._states[trajectory_id] = state
        if source_index in state.known:
            return None
        state.known.add(source_index)
        state.known_weight += weight

        if len(state.known) + len(self._exhausted - state.known) >= self._m:
            return self._complete(trajectory_id, state)
        heapq.heappush(
            self._heap,
            (-self._upper_bound(state, radii_weights), trajectory_id),
        )
        return None

    def mark_source_exhausted(
        self, source_index: int
    ) -> list[tuple[int, float, float]]:
        """Mark a source as exhausted; finish trajectories it alone blocked.

        Returns ``(trajectory_id, expansion_weight_sum, text_similarity)``
        for every trajectory completed by this event.
        """
        if source_index in self._exhausted:
            return []
        self._exhausted.add(source_index)
        completed = []
        for trajectory_id in list(self._states):
            state = self._states[trajectory_id]
            if len(state.known) + len(self._exhausted - state.known) >= self._m:
                weight, text = self._complete(trajectory_id, state)
                completed.append((trajectory_id, weight, text))
        return completed

    def _complete(self, trajectory_id: int, state: _State) -> tuple[float, float]:
        """Finalise: unknown sources are exhausted, contributing zero."""
        del self._states[trajectory_id]
        self._finished.add(trajectory_id)
        return (state.known_weight, state.text)

    def finish(self, trajectory_id: int) -> None:
        """Retire an active trajectory whose exact score was computed
        out-of-band (refinement).  Its heap entries become stale and are
        dropped lazily."""
        if trajectory_id in self._states:
            del self._states[trajectory_id]
        self._finished.add(trajectory_id)

    # --------------------------------------------------------------- bounds
    def _upper_bound(self, state: _State, radii_weights: SourceRadiiWeights) -> float:
        """Score upper bound for one partly scanned trajectory.

        Without ALT caps, evaluated as ``known + text + (total frontier -
        frontier of known sources)`` so the cost is O(|known|), not O(m) —
        this sits on the hottest path of the search.  With caps the unknown
        term is ``sum over unknown i of min(frontier_i, cap_i)`` (O(m),
        with m the handful of query locations): the frontier weight is the
        radius-based bound, the cap is the ALT bound, and the smaller of
        the two is still admissible.
        """
        weights = radii_weights.weights
        caps = state.caps
        known = state.known
        if caps is None:
            unknown_frontier = radii_weights.total
            for i in known:
                unknown_frontier -= weights[i]
        else:
            unknown_frontier = 0.0
            for i in range(self._m):
                if i not in known:
                    w = weights[i]
                    c = caps[i]
                    unknown_frontier += w if w < c else c
        return state.known_weight + self._text_weight * state.text + unknown_frontier

    def _tighten(self, trajectory_id: int, state: _State) -> None:
        """Attach the (lazily computed) ALT caps to a heap-top state."""
        if self._frontier_caps is not None and state.caps is None:
            state.caps = self._frontier_caps(trajectory_id)

    def upper_bound_of(
        self, trajectory_id: int, radii_weights: SourceRadiiWeights
    ) -> float:
        """Current upper bound of a seen, unfinished trajectory."""
        return self._upper_bound(self._states[trajectory_id], radii_weights)

    def irreducible_bound_of(self, trajectory_id: int) -> float:
        """The part of a trajectory's bound no expansion can remove.

        ``known contributions + text term``: the frontier term shrinks as
        radii grow, but this floor does not — a trajectory whose floor
        exceeds the pruning threshold can only be resolved by completing or
        refining it, never by expanding past it.
        """
        state = self._states[trajectory_id]
        return state.known_weight + self._text_weight * state.text

    def best_unseen_text(self) -> float:
        """Max textual similarity among never-scanned trajectories."""
        score, __ = self.best_unseen_text_candidate()
        return score

    def best_unseen_text_candidate(self) -> tuple[float, int | None]:
        """The never-scanned trajectory with the best textual similarity.

        Returns ``(score, trajectory_id)``; the id is ``None`` when nothing
        textual remains unseen (or when an override constant is in force).
        """
        if self._unseen_text_override is not None:
            return self._unseen_text_override, None
        order = self._text_order
        while self._text_pointer < len(order):
            score, tid = order[self._text_pointer]
            if not self.is_seen(tid):
                return score, tid
            self._text_pointer += 1
        return 0.0, None

    def unseen_text_candidates(self, limit: int) -> list[tuple[float, int]]:
        """Up to ``limit`` never-scanned ``(text_score, id)`` pairs, best first.

        Used by the degraded (budget-tripped) wrap-up: these are the best
        candidates the expansion never reached, whose textual term alone is
        a valid score lower bound.  Empty under an override constant (the
        spatial-first mode knows no exact text scores).
        """
        if self._unseen_text_override is not None or limit <= 0:
            return []
        out: list[tuple[float, int]] = []
        for score, tid in self._text_order[self._text_pointer:]:
            if not self.is_seen(tid):
                out.append((score, tid))
                if len(out) >= limit:
                    break
        return out

    def unseen_upper_bound(self, radii_weights: SourceRadiiWeights) -> float:
        """Upper bound for every trajectory no source has reached yet."""
        caps = self._unseen_caps
        if caps is None:
            frontier = radii_weights.total
        else:
            frontier = 0.0
            for w, c in zip(radii_weights.weights, caps):
                frontier += w if w < c else c
        return frontier + self._text_weight * self.best_unseen_text()

    def best_active_bound(
        self, radii_weights: SourceRadiiWeights, refine_rounds: int = 8
    ) -> tuple[float, int | None]:
        """The loosest partly scanned trajectory: ``(upper bound, id)``.

        The lazy heap's top key always dominates every partly scanned
        trajectory's current bound; a few refinement rounds (recompute the
        top, reinsert) tighten it.  Returns ``(0.0, None)`` when nothing is
        partly scanned.
        """
        heap = self._heap
        for __ in range(refine_rounds):
            while heap and heap[0][1] in self._finished:
                heapq.heappop(heap)
            if not heap:
                return 0.0, None
            key, tid = heap[0]
            state = self._states[tid]
            self._tighten(tid, state)  # ALT caps, only for heap-top states
            current = self._upper_bound(state, radii_weights)
            if -key - current <= _EPS:
                return current, tid
            heapq.heapreplace(heap, (-current, tid))
        # Rounds exhausted: the stored top key is a safe over-estimate, but
        # the top may have finished since the last cleaning pass.
        while heap and heap[0][1] in self._finished:
            heapq.heappop(heap)
        return (-heap[0][0], heap[0][1]) if heap else (0.0, None)

    def global_upper_bound(
        self, radii_weights: SourceRadiiWeights, refine_rounds: int = 8
    ) -> float:
        """Upper bound over *every* not-fully-scanned trajectory.

        The max of the loosest partly scanned trajectory's bound and the
        unseen-trajectory bound: the quantity the termination test compares
        against the k-th best exact score (or the join threshold).
        """
        partly, __ = self.best_active_bound(radii_weights, refine_rounds)
        return max(partly, self.unseen_upper_bound(radii_weights))

    def count_alt_pruned(
        self, radii_weights: SourceRadiiWeights, threshold: float
    ) -> int:
        """Active trajectories retired by ALT caps rather than radii.

        Counts states whose capped upper bound sits at or below
        ``threshold`` while the pure radius-based bound still exceeds it —
        exactly the candidates that would have kept the search expanding
        without the landmark caps.  Called once at termination (O(active *
        m)), purely observational.
        """
        weights = radii_weights.weights
        total = radii_weights.total
        text_weight = self._text_weight
        count = 0
        for state in self._states.values():
            caps = state.caps
            if caps is None:
                continue
            base = state.known_weight + text_weight * state.text
            uncapped = total
            capped = 0.0
            for i in state.known:
                uncapped -= weights[i]
            for i in range(self._m):
                if i not in state.known:
                    w = weights[i]
                    c = caps[i]
                    capped += w if w < c else c
            if base + capped <= threshold + _EPS < base + uncapped:
                count += 1
        return count

    # ------------------------------------------------------------ iteration
    def active_items(self) -> Iterator[tuple[int, set[int], float, float]]:
        """Partly scanned trajectories for the scheduler.

        Yields ``(trajectory_id, sources_that_hit_it, known_weight, text)``.
        The source set is live state — do not mutate it.
        """
        for trajectory_id, state in self._states.items():
            yield (trajectory_id, state.known, state.known_weight, state.text)

    def active_states(self) -> Iterator[tuple[int, float, float]]:
        """Partly scanned trajectories as ``(id, weight_sum, text)``.

        Used when the search drains at exhaustion: the known weight sum is
        then the exact expansion score component.
        """
        for trajectory_id, state in self._states.items():
            yield (trajectory_id, state.known_weight, state.text)

    def upper_bound_given(
        self,
        known_sources: set[int],
        known_weight: float,
        text: float,
        radii_weights: SourceRadiiWeights,
    ) -> float:
        """Bound from explicit components (scheduler helper)."""
        weights = radii_weights.weights
        unknown_frontier = radii_weights.total
        for i in known_sources:
            unknown_frontier -= weights[i]
        return known_weight + self._text_weight * text + unknown_frontier
