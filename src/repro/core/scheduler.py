"""Query-source scheduling strategies.

The search interleaves expansions from several query sources; *which* source
expands next matters.  The paper's heuristic gives each source a priority
label equal to the summed similarity upper bounds of the partly scanned
trajectories that source has *not yet* reached — expanding the top-labelled
source is the fastest way to turn partly scanned trajectories into fully
scanned ones (whose exact score can then tighten the termination test).
The round-robin strategy is kept as the ablation ("w/o-h" in the paper
family's plots).
"""

from __future__ import annotations

from typing import Protocol

from repro.core.bounds import BoundTracker, SourceRadiiWeights
from repro.core.sources import QuerySource
from repro.errors import QueryError

__all__ = ["Scheduler", "RoundRobinScheduler", "HeuristicScheduler", "make_scheduler"]


class Scheduler(Protocol):
    """Strategy interface: pick the next source to expand."""

    def select(
        self,
        sources: list[QuerySource],
        tracker: BoundTracker,
        radii_weights: SourceRadiiWeights,
    ) -> QuerySource | None:
        """The next source to expand, or ``None`` when all are exhausted."""


class RoundRobinScheduler:
    """Cycle through the non-exhausted sources in index order."""

    def __init__(self):
        self._next = 0

    def select(
        self,
        sources: list[QuerySource],
        tracker: BoundTracker,
        radii_weights: SourceRadiiWeights,
    ) -> QuerySource | None:
        for offset in range(len(sources)):
            source = sources[(self._next + offset) % len(sources)]
            if not source.exhausted:
                self._next = (source.index + 1) % len(sources)
                return source
        return None


class HeuristicScheduler:
    """The paper's margin heuristic.

    ``label(q) = sum of SimST-upper-bounds of partly scanned trajectories
    not yet scanned from q``: a high label means many promising trajectories
    are one hit away from completion via this source.  Falls back to the
    least-advanced (smallest-radius) source when nothing is partly scanned,
    which keeps the global radii bound shrinking evenly.

    Labels are recomputed every ``refresh_every`` selections (the chosen
    source is kept in between) and estimated from at most ``sample_cap``
    partly scanned trajectories; both knobs trade scheduling fidelity for
    bookkeeping cost and affect only efficiency, never correctness.
    """

    def __init__(self, refresh_every: int = 4, sample_cap: int = 512):
        if refresh_every < 1 or sample_cap < 1:
            raise QueryError("refresh_every and sample_cap must be >= 1")
        self._refresh_every = refresh_every
        self._sample_cap = sample_cap
        self._calls = 0
        self._cached: QuerySource | None = None

    def select(
        self,
        sources: list[QuerySource],
        tracker: BoundTracker,
        radii_weights: SourceRadiiWeights,
    ) -> QuerySource | None:
        cached = self._cached
        if (
            cached is not None
            and not cached.exhausted
            and self._calls % self._refresh_every != 0
        ):
            self._calls += 1
            return cached
        self._calls += 1

        alive = [s for s in sources if not s.exhausted]
        if not alive:
            self._cached = None
            return None
        labels = {s.index: 0.0 for s in alive}
        alive_indexes = set(labels)
        examined = 0
        for __, known_sources, known_weight, text in tracker.active_items():
            if examined >= self._sample_cap:
                break
            examined += 1
            missing = alive_indexes - known_sources
            if not missing:
                continue
            bound = tracker.upper_bound_given(
                known_sources, known_weight, text, radii_weights
            )
            for index in missing:
                labels[index] += bound
        best = max(alive, key=lambda s: (labels[s.index], -s.radius, -s.index))
        if labels[best.index] <= 0.0:
            best = min(alive, key=lambda s: (s.radius, s.index))
        self._cached = best
        return best


def make_scheduler(name: str) -> Scheduler:
    """Scheduler factory: ``"heuristic"`` or ``"round-robin"``."""
    if name == "heuristic":
        return HeuristicScheduler()
    if name == "round-robin":
        return RoundRobinScheduler()
    raise QueryError(f"unknown scheduler {name!r}; choose 'heuristic' or 'round-robin'")
