"""Query planning: the resolved decisions of a search, before execution.

The plan/execute split separates *what the search will do* from *doing it*.
A :class:`QueryPlan` captures every decision a searcher resolves from the
query and the database — algorithm, scheduler, whether ALT bound tightening
applies (and why not, when it doesn't), the textual candidate set size from
the inverted index, cache configuration, and a rough cost estimate — as an
immutable, inspectable record.  Anything sitting above the searchers (the
serving layer, the CLI's ``repro explain``, future batch schedulers) can
look at a plan, compare plans across queries, or render one for a human,
all without running the search.

:class:`Searcher` is the protocol every registry algorithm conforms to:

- ``plan(query) -> QueryPlan`` — resolve decisions, touch no mutable state;
- ``execute(plan, budget) -> SearchResult`` — run a previously built plan;
- ``search(query, budget) -> SearchResult`` — the ``plan`` + ``execute``
  convenience every caller historically used.

Searchers are *stateless*: all per-query mutable state lives in an
execution context created inside ``execute`` (see
:class:`repro.core.search.SearchContext`), so one searcher instance is
shareable and reusable across queries and threads.

This module stays import-light (no numpy/scipy) — it is pulled in by the
serving layer's cold path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.core.results import SearchResult
    from repro.resilience.budget import SearchBudget

__all__ = ["QueryPlan", "Searcher"]


@dataclass(frozen=True)
class QueryPlan:
    """The resolved decisions of one query, prior to execution.

    Attributes
    ----------
    algorithm:
        Registry name (or class-level name) of the searcher.
    query:
        The query object the plan was built for (a
        :class:`~repro.core.query.UOTSQuery` for the UOTS searchers, a
        :class:`~repro.matching.ptm.PTMQuery` for the directional engine).
    scheduler:
        Resolved scheduling strategy (``"heuristic"``, ``"round-robin"``,
        a custom scheduler's class name, or ``"none"`` for searchers that
        do not interleave source expansions).
    batch_size:
        Expansion steps granted between scheduler/termination checks
        (``0`` for searchers without incremental expansion).
    use_text_in_bounds / use_refinement:
        The collaborative-search levers (see
        :class:`~repro.core.search.CollaborativeSearcher`).
    alt_enabled / alt_reason:
        Whether landmark (ALT) bound tightening will run, and the reason
        for the decision either way — the query-time outcome of the
        configuration, the graph (no landmark table on disconnected
        graphs), and the query shape (text-only queries never expand).
    text_measure:
        Name of the textual similarity measure (``None`` when text plays
        no role).
    source_vertices:
        The spatial expansion sources (the query's intended places).
    candidate_count:
        Trajectories sharing at least one query keyword, from the
        inverted index — the textual candidate set the search starts from.
    database_size:
        ``|P|`` at planning time.
    cache_enabled:
        Whether the database's cross-query caches will serve this query.
    estimated_cost:
        Heuristic work ceiling in settle/evaluation units (worst-case
        expanded vertices plus textual evaluations).  Comparable across
        plans on the same database; not a latency prediction.
    notes:
        Free-form annotations (degraded modes, pinned settings, ...).
    """

    algorithm: str
    query: object
    scheduler: str
    batch_size: int
    use_text_in_bounds: bool
    use_refinement: bool
    alt_enabled: bool
    alt_reason: str
    text_measure: str | None
    source_vertices: tuple[int, ...]
    candidate_count: int
    database_size: int
    cache_enabled: bool
    estimated_cost: float
    notes: tuple[str, ...] = field(default=())

    def describe(self) -> str:
        """A human-readable rendering (the ``repro explain`` output)."""
        alt = "on" if self.alt_enabled else "off"
        lines = [
            f"QueryPlan[{self.algorithm}]",
            f"  query:        {self.query!r}",
            f"  scheduler:    {self.scheduler}"
            + (f" (batch={self.batch_size})" if self.batch_size else ""),
            f"  text bounds:  {'collaborative' if self.use_text_in_bounds else 'deferred to refinement'}",
            f"  refinement:   {'direct' if self.use_refinement else 'expansion-only'}",
            f"  alt:          {alt} — {self.alt_reason}",
            f"  text measure: {self.text_measure or '-'}",
            f"  sources:      {list(self.source_vertices)}",
            f"  candidates:   {self.candidate_count} keyword-sharing "
            f"of {self.database_size} trajectories",
            f"  caches:       {'enabled' if self.cache_enabled else 'disabled'}",
            f"  est. cost:    {self.estimated_cost:.0f} units "
            "(worst-case vertex settles + text evaluations)"
            + (
                f"; {self.candidate_count / self.estimated_cost:.3f} candidates/unit"
                if self.estimated_cost > 0
                else ""
            ),
        ]
        lines.extend(f"  note:         {note}" for note in self.notes)
        return "\n".join(lines)


@runtime_checkable
class Searcher(Protocol):
    """The contract every registered search algorithm satisfies.

    Implementations hold only immutable configuration plus shared indexes;
    per-query mutable state is created inside ``execute`` so instances are
    shareable, reusable, and safe to call concurrently.
    """

    def plan(self, query) -> QueryPlan:
        """Resolve the query's execution decisions without running it."""
        ...  # pragma: no cover - protocol

    def execute(
        self, plan: QueryPlan, budget: "SearchBudget | None" = None
    ) -> "SearchResult":
        """Run a previously built plan (optionally under a budget)."""
        ...  # pragma: no cover - protocol

    def search(self, query, budget: "SearchBudget | None" = None) -> "SearchResult":
        """``execute(plan(query), budget)`` — the one-call convenience."""
        ...  # pragma: no cover - protocol
