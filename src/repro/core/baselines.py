"""Baseline searchers: brute force and text-first.

- :class:`BruteForceSearcher` scores every trajectory exactly (one full
  Dijkstra per query location, shared across trajectories).  It is the
  correctness oracle for every other algorithm and the "no pruning"
  reference point in the benchmarks.
- :class:`TextFirstSearcher` drives the search from the textual domain: it
  scans keyword candidates in descending textual similarity, refining each
  spatially, and stops when even a spatially perfect trajectory could not
  beat the current k-th result.  Strong when text dominates (small ``lam``),
  weak when space does — the mirror image of the spatial-first ablation.
"""

from __future__ import annotations

import time

from repro.core.instrument import annotate_search_span, execute_span
from repro.core.plan import QueryPlan
from repro.core.query import UOTSQuery
from repro.core.results import ScoredTrajectory, SearchResult, SearchStats, TopK
from repro.core.similarity import ExactScorer, combine, spatial_similarity
from repro.errors import BudgetExceededError
from repro.index.database import TrajectoryDatabase
from repro.network.expansion import IncrementalExpansion
from repro.resilience.budget import SearchBudget
from repro.text.similarity import get_measure

__all__ = ["BruteForceSearcher", "TextFirstSearcher"]

_INF = float("inf")

#: Both similarities live in [0, 1], so no combined score exceeds this.
#: The baselines keep no bound tracker; a degraded baseline result reports
#: this trivial residual bound (the collaborative search reports a tight one).
_TRIVIAL_RESIDUAL = 1.0


def _start_meter(query: UOTSQuery, budget: SearchBudget | None):
    """Resolve the effective budget (argument wins over ``query.budget``)."""
    if budget is None:
        budget = query.budget
    if budget is None or budget.unlimited:
        return None, None
    return budget, budget.start()


def _degraded(topk: TopK, stats: SearchStats, reason: str, started: float,
              budget: SearchBudget) -> SearchResult:
    if budget.strict:
        raise BudgetExceededError(reason)
    stats.degraded_queries = 1
    stats.elapsed_seconds = time.perf_counter() - started
    return SearchResult(
        items=topk.ranked(),
        stats=stats,
        exact=False,
        degradation_reason=reason,
        residual_bound=_TRIVIAL_RESIDUAL,
    )


def _baseline_plan(
    searcher,
    query: UOTSQuery,
    *,
    use_text_in_bounds: bool,
    use_refinement: bool,
    estimated_cost: float,
    notes: tuple[str, ...],
) -> QueryPlan:
    """The shared (trivial) plan of the baselines: no scheduling, no ALT."""
    database = searcher._database
    query.validate_against(database.graph)
    candidate_count = (
        len(database.keyword_index.candidates(query.keywords)) if query.keywords else 0
    )
    return QueryPlan(
        algorithm=searcher.plan_name,
        query=query,
        scheduler="none",
        batch_size=0,
        use_text_in_bounds=use_text_in_bounds,
        use_refinement=use_refinement,
        alt_enabled=False,
        alt_reason="not applicable (no bound-driven expansion)",
        text_measure=query.text_measure,
        source_vertices=query.locations,
        candidate_count=candidate_count,
        database_size=len(database),
        cache_enabled=database.caches.distances.enabled,
        estimated_cost=estimated_cost,
        notes=notes,
    )


class BruteForceSearcher:
    """Exact exhaustive scoring — the oracle all fast algorithms must match."""

    plan_name = "brute-force"

    def __init__(self, database: TrajectoryDatabase):
        self._database = database

    def plan(self, query: UOTSQuery) -> QueryPlan:
        """Resolve the (trivial) execution decisions without running."""
        database = self._database
        return _baseline_plan(
            self,
            query,
            use_text_in_bounds=False,
            use_refinement=False,
            estimated_cost=float(
                query.num_locations * database.graph.num_vertices + len(database)
            ),
            notes=("exhaustive: every trajectory is scored exactly",),
        )

    def execute(
        self, plan: QueryPlan, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Run a previously built plan (trivial for brute force)."""
        result = self.search(plan.query, budget)
        result.stats.estimated_cost = plan.estimated_cost
        return result

    def search(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Score every trajectory; return the exact top-k.

        A budget deadline is honoured between scoring calls (already-scored
        items form the degraded answer); the work caps do not apply — brute
        force performs no expansions or refinements.
        """
        with execute_span(self.plan_name) as span:
            result = self._search_impl(query, budget)
            annotate_search_span(span, result)
            return result

    def _search_impl(
        self, query: UOTSQuery, budget: SearchBudget | None
    ) -> SearchResult:
        started = time.perf_counter()
        budget, meter = _start_meter(query, budget)
        scorer = ExactScorer(self._database, query)
        topk = TopK(query.k)
        stats = SearchStats()
        count = 0
        for trajectory in self._database.trajectories:
            if meter is not None and count % 32 == 0:
                reason = meter.exceeded()
                if reason is not None:
                    stats.visited_trajectories = count
                    stats.similarity_evaluations = count
                    return _degraded(topk, stats, reason, started, budget)
            topk.offer(scorer.score_with_shared_distances(trajectory))
            count += 1
        stats = SearchStats(
            visited_trajectories=count,
            # One full Dijkstra per query location settles every vertex.
            expanded_vertices=query.num_locations * self._database.graph.num_vertices,
            similarity_evaluations=count,
            pruned_trajectories=0,
            elapsed_seconds=time.perf_counter() - started,
        )
        return SearchResult(items=topk.ranked(), stats=stats)


class TextFirstSearcher:
    """Text-domain-driven search with spatial refinement.

    Candidates arrive in descending textual similarity.  Each is refined
    with *shared* incremental expansions (one per query location, resumed
    across candidates, so spatial work is never repeated).  Scanning stops
    once ``lam * 1 + (1 - lam) * SimT(next candidate)`` cannot beat the
    k-th best score; the spatial factor must be bounded by the maximal 1
    because nothing is known spatially about unrefined candidates.  If even
    ``SimT = 0`` trajectories could still win (``lam`` close to 1 and weak
    text matches), the remaining trajectories are scored exhaustively — the
    documented degeneration of a text-first strategy.
    """

    plan_name = "text-first"

    def __init__(self, database: TrajectoryDatabase):
        self._database = database

    def plan(self, query: UOTSQuery) -> QueryPlan:
        """Resolve the (trivial) execution decisions without running."""
        database = self._database
        query.validate_against(database.graph)
        candidate_count = (
            len(database.keyword_index.candidates(query.keywords))
            if query.keywords
            else 0
        )
        notes = ["candidates scanned in descending textual similarity"]
        if query.lam > 0.0 and candidate_count == 0:
            notes.append("no keyword candidates: degenerates to exhaustive scoring")
        return _baseline_plan(
            self,
            query,
            use_text_in_bounds=True,
            use_refinement=True,
            # Worst case: every candidate refined via the shared expansions
            # (bounded by settling the whole graph per location), plus the
            # exhaustive fallback.
            estimated_cost=float(
                candidate_count + query.num_locations * database.graph.num_vertices
            ),
            notes=tuple(notes),
        )

    def execute(
        self, plan: QueryPlan, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Run a previously built plan."""
        result = self.search(plan.query, budget)
        result.stats.estimated_cost = plan.estimated_cost
        return result

    def search(
        self, query: UOTSQuery, budget: SearchBudget | None = None
    ) -> SearchResult:
        """Run the text-first scan; returns the exact top-k.

        Budget deadlines and the expansion cap are honoured between
        candidate refinements (each refinement is the unit of work here).
        """
        with execute_span(self.plan_name) as span:
            result = self._search_impl(query, budget)
            annotate_search_span(span, result)
            return result

    def _search_impl(
        self, query: UOTSQuery, budget: SearchBudget | None
    ) -> SearchResult:
        database = self._database
        query.validate_against(database.graph)
        started = time.perf_counter()
        budget, meter = _start_meter(query, budget)
        stats = SearchStats()
        measure = get_measure(query.text_measure)
        keyword_index = database.keyword_index

        ranked_candidates = sorted(
            (
                (measure(query.keywords, keyword_index.keywords_of(tid)), tid)
                for tid in keyword_index.candidates(query.keywords)
            ),
            reverse=True,
        )
        stats.text_candidates = len(ranked_candidates)

        expansions = [
            IncrementalExpansion(database.graph, location)
            for location in query.locations
        ]
        sigma = database.sigma
        topk = TopK(query.k)
        refined: set[int] = set()

        def refine(trajectory_id: int, text: float) -> None:
            refined.add(trajectory_id)
            vertex_set = database.get(trajectory_id).vertex_set
            distances = [
                self._shared_nearest(expansion, vertex_set, stats)
                for expansion in expansions
            ]
            spatial = spatial_similarity(distances, query.num_locations, sigma)
            stats.similarity_evaluations += 1
            topk.offer(
                ScoredTrajectory(
                    trajectory_id=trajectory_id,
                    score=combine(query.lam, spatial, text),
                    spatial_similarity=spatial,
                    text_similarity=text,
                )
            )

        for text, trajectory_id in ranked_candidates:
            if topk.full and query.lam + (1.0 - query.lam) * text <= topk.threshold + 1e-12:
                break  # everything below is dominated
            if meter is not None:
                reason = meter.exceeded(stats.expanded_vertices, 0)
                if reason is not None:
                    stats.visited_trajectories = len(refined)
                    return _degraded(topk, stats, reason, started, budget)
            refine(trajectory_id, text)

        # Trajectories without keyword overlap have SimT = 0; they can still
        # win when lam is large.  Prune them wholesale if even a spatially
        # perfect one loses; otherwise fall back to exhaustive scoring.
        if not topk.full or query.lam > topk.threshold + 1e-12:
            scorer = ExactScorer(database, query)
            scanned = 0
            for trajectory in database.trajectories:
                if trajectory.id in refined:
                    continue
                if meter is not None and scanned % 32 == 0:
                    reason = meter.exceeded(stats.expanded_vertices, 0)
                    if reason is not None:
                        stats.visited_trajectories = len(refined) + scanned
                        return _degraded(topk, stats, reason, started, budget)
                scanned += 1
                stats.similarity_evaluations += 1
                topk.offer(scorer.score_with_shared_distances(trajectory))
            stats.visited_trajectories = len(database)
        else:
            stats.visited_trajectories = len(refined)
        stats.pruned_trajectories = len(database) - stats.similarity_evaluations
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(items=topk.ranked(), stats=stats)

    @staticmethod
    def _shared_nearest(
        expansion: IncrementalExpansion, vertex_set: frozenset[int], stats: SearchStats
    ) -> float:
        """Min distance from the expansion's source to the trajectory.

        If a trajectory vertex is already settled, the smallest settled
        distance is exact (Dijkstra order).  Otherwise the expansion resumes
        until it either settles a trajectory vertex or exhausts.
        """
        settled = expansion.settled_vertices()
        best = _INF
        for vertex in vertex_set:
            d = settled.get(vertex)
            if d is not None and d < best:
                best = d
        if best != _INF:
            return best
        while True:
            step = expansion.expand()
            if step is None:
                return _INF
            stats.expanded_vertices += 1
            vertex, distance = step
            if vertex in vertex_set:
                return distance
