"""Route reconstruction and route-level measures.

Trajectories store *sampled* points; the paper's model assumes the object
moves along shortest paths between consecutive samples.  This module makes
that assumption executable: it reconstructs the full vertex route of a
trajectory (for display, for length/overlap measures, and for evaluating
map-matching quality).
"""

from __future__ import annotations

from repro.errors import DisconnectedError, TrajectoryError
from repro.network.dijkstra import shortest_path
from repro.network.graph import SpatialNetwork
from repro.trajectory.model import Trajectory

__all__ = ["reconstruct_route", "route_length", "route_overlap"]


def reconstruct_route(graph: SpatialNetwork, trajectory: Trajectory) -> list[int]:
    """The full vertex sequence of a trajectory.

    Consecutive sample points are joined by network shortest paths (the
    paper's movement assumption).  Raises :class:`DisconnectedError` when
    two consecutive samples have no connecting path.
    """
    vertices = trajectory.vertices()
    route = [vertices[0]]
    for a, b in zip(vertices, vertices[1:]):
        if a == b:
            continue
        segment, __ = shortest_path(graph, a, b)
        route.extend(segment[1:])
    return route


def route_length(graph: SpatialNetwork, route: list[int]) -> float:
    """Total edge length along a vertex route.

    Every consecutive pair must be an edge of the graph (i.e. the input is
    a *full* route, e.g. from :func:`reconstruct_route`).
    """
    if not route:
        raise TrajectoryError("cannot measure an empty route")
    total = 0.0
    for a, b in zip(route, route[1:]):
        if a == b:
            continue
        total += graph.edge_weight(a, b)
    return total


def route_overlap(
    graph: SpatialNetwork, route_a: list[int], route_b: list[int]
) -> float:
    """Length-weighted edge overlap of two full routes, in ``[0, 1]``.

    The measure is ``shared edge length / length of the longer route`` —
    1 when one route covers the other completely, 0 when they share no
    edge.  Useful both for ridesharing quality ("how much of my commute is
    shared?") and for scoring map-matching output against ground truth.
    """

    def edge_set(route):
        return {
            (min(a, b), max(a, b))
            for a, b in zip(route, route[1:])
            if a != b
        }

    edges_a = edge_set(route_a)
    edges_b = edge_set(route_b)
    if not edges_a and not edges_b:
        return 1.0
    shared = edges_a & edges_b
    shared_length = sum(graph.edge_weight(a, b) for a, b in shared)
    longer = max(
        sum(graph.edge_weight(a, b) for a, b in edges_a),
        sum(graph.edge_weight(a, b) for a, b in edges_b),
    )
    return shared_length / longer if longer > 0 else 0.0
