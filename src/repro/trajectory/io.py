"""Persistence for trajectory sets (JSON-lines format).

One trajectory per line keeps files streamable and diff-friendly, and lets a
partially written file be detected (the loader validates every record).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import TrajectoryError
from repro.trajectory.model import Trajectory, TrajectoryPoint, TrajectorySet

__all__ = ["save_jsonl", "load_jsonl"]


def save_jsonl(trajectories: TrajectorySet, path: str | Path) -> int:
    """Write one JSON record per trajectory; returns the record count."""
    count = 0
    with Path(path).open("w") as fh:
        for trajectory in trajectories:
            record = {
                "id": trajectory.id,
                "points": [[p.vertex, p.timestamp] for p in trajectory.points],
                "keywords": sorted(trajectory.keywords),
            }
            fh.write(json.dumps(record))
            fh.write("\n")
            count += 1
    return count


def load_jsonl(path: str | Path) -> TrajectorySet:
    """Read a trajectory set previously written by :func:`save_jsonl`."""
    trajectories = TrajectorySet()
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                trajectory = Trajectory(
                    int(record["id"]),
                    (TrajectoryPoint(int(v), float(t)) for v, t in record["points"]),
                    record.get("keywords", ()),
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise TrajectoryError(f"{path}:{line_no}: malformed record: {exc}") from exc
            trajectories.add(trajectory)
    return trajectories
