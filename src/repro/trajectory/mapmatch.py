"""Map matching: raw GPS fixes -> network-constrained trajectory.

The paper assumes trajectories are already map matched (it cites
Brakatsoulas et al. and Wenk et al.); this module supplies that substrate.
Two matchers are provided:

- :func:`snap_match` — nearest-vertex snapping with consecutive-duplicate
  collapsing: fast, adequate for dense fixes,
- :class:`HmmMatcher` — a small Viterbi matcher that balances emission
  likelihood (fix-to-vertex distance) against transition likelihood (network
  distance vs. straight-line displacement), which resists the outliers that
  defeat per-point snapping.
"""

from __future__ import annotations

import math

from repro.errors import DatasetError
from repro.network.dijkstra import distances_to_targets
from repro.network.graph import SpatialNetwork
from repro.trajectory.model import Trajectory, TrajectoryPoint
from repro.trajectory.noise import RawFix

__all__ = ["snap_match", "HmmMatcher", "VertexGrid"]


class VertexGrid:
    """Uniform cell grid over the network's vertices for radius queries."""

    def __init__(self, graph: SpatialNetwork, cell_size: float | None = None):
        if graph.num_vertices == 0:
            raise DatasetError("cannot index an empty graph")
        self._graph = graph
        min_x, min_y, max_x, max_y = graph.bounding_box()
        extent = max(max_x - min_x, max_y - min_y, 1.0)
        self._cell = cell_size or extent / max(1.0, math.sqrt(graph.num_vertices))
        self._origin = (min_x, min_y)
        self._cells: dict[tuple[int, int], list[int]] = {}
        for v in graph.vertices():
            self._cells.setdefault(self._key(*graph.position(v)), []).append(v)

    def _key(self, x: float, y: float) -> tuple[int, int]:
        ox, oy = self._origin
        return (int((x - ox) // self._cell), int((y - oy) // self._cell))

    def nearest(self, x: float, y: float) -> tuple[int, float]:
        """Closest vertex to ``(x, y)`` and its Euclidean distance."""
        candidates = self.within(x, y, self._cell)
        ring = 2
        while not candidates:
            candidates = self.within(x, y, ring * self._cell)
            ring *= 2
        xs, ys = self._graph.xs, self._graph.ys
        best = min(candidates, key=lambda v: (xs[v] - x) ** 2 + (ys[v] - y) ** 2)
        return best, math.hypot(xs[best] - x, ys[best] - y)

    def within(self, x: float, y: float, radius: float) -> list[int]:
        """All vertices within Euclidean ``radius`` of ``(x, y)``."""
        cx, cy = self._key(x, y)
        reach = int(radius // self._cell) + 1
        xs, ys = self._graph.xs, self._graph.ys
        r2 = radius * radius
        found = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                for v in self._cells.get((gx, gy), ()):
                    if (xs[v] - x) ** 2 + (ys[v] - y) ** 2 <= r2:
                        found.append(v)
        return found


def snap_match(
    graph: SpatialNetwork,
    fixes: list[RawFix],
    trajectory_id: int = 0,
    grid: VertexGrid | None = None,
) -> Trajectory:
    """Match by snapping each fix to its nearest vertex.

    Consecutive fixes snapping to the same vertex are collapsed (keeping the
    first timestamp), mirroring how repeated idling samples are cleaned in
    real pipelines.
    """
    if not fixes:
        raise DatasetError("cannot map match an empty fix list")
    grid = grid or VertexGrid(graph)
    points: list[TrajectoryPoint] = []
    for fix in fixes:
        vertex, __ = grid.nearest(fix.x, fix.y)
        if points and points[-1].vertex == vertex:
            continue
        timestamp = fix.timestamp
        if points and timestamp < points[-1].timestamp:
            timestamp = points[-1].timestamp  # clamp clock jitter
        points.append(TrajectoryPoint(vertex, timestamp))
    return Trajectory(trajectory_id, points)


class HmmMatcher:
    """Viterbi map matcher over candidate vertices per fix.

    Emission: Gaussian in the fix-to-vertex distance.  Transition: exponential
    in the absolute difference between network distance and straight-line
    displacement (a fix sequence should advance along the road about as fast
    as it advances on the map).
    """

    def __init__(
        self,
        graph: SpatialNetwork,
        candidate_radius: float = 80.0,
        max_candidates: int = 6,
        emission_std: float = 25.0,
        transition_beta: float = 60.0,
    ):
        if candidate_radius <= 0 or emission_std <= 0 or transition_beta <= 0:
            raise DatasetError("matcher parameters must be positive")
        self._graph = graph
        self._grid = VertexGrid(graph)
        self._radius = candidate_radius
        self._max_candidates = max_candidates
        self._emission_std = emission_std
        self._beta = transition_beta

    def _candidates(self, fix: RawFix) -> list[tuple[int, float]]:
        xs, ys = self._graph.xs, self._graph.ys
        found = self._grid.within(fix.x, fix.y, self._radius)
        if not found:
            found = [self._grid.nearest(fix.x, fix.y)[0]]
        scored = sorted(
            (math.hypot(xs[v] - fix.x, ys[v] - fix.y), v) for v in set(found)
        )
        return [(v, d) for d, v in scored[: self._max_candidates]]

    def match(self, fixes: list[RawFix], trajectory_id: int = 0) -> Trajectory:
        """Run Viterbi decoding over the fix sequence."""
        if not fixes:
            raise DatasetError("cannot map match an empty fix list")
        emission_var = 2.0 * self._emission_std**2

        layers: list[list[tuple[int, float]]] = [self._candidates(f) for f in fixes]
        # score[i][j] = best log-likelihood ending at candidate j of fix i
        scores: list[list[float]] = [[-(d * d) / emission_var for __, d in layers[0]]]
        parents: list[list[int]] = [[-1] * len(layers[0])]

        for i in range(1, len(fixes)):
            prev_layer, layer = layers[i - 1], layers[i]
            straight = math.hypot(
                fixes[i].x - fixes[i - 1].x, fixes[i].y - fixes[i - 1].y
            )
            row_scores: list[float] = []
            row_parents: list[int] = []
            # Network distances from each previous candidate to all current.
            target_set = [v for v, __ in layer]
            network_d: list[dict[int, float]] = [
                distances_to_targets(
                    self._graph, pv, target_set, cutoff=straight + 8.0 * self._radius
                )
                for pv, __ in prev_layer
            ]
            for j, (v, d_emit) in enumerate(layer):
                best_score, best_parent = -math.inf, -1
                for p, (pv, __) in enumerate(prev_layer):
                    nd = network_d[p].get(v)
                    if nd is None:
                        continue
                    transition = -abs(nd - straight) / self._beta
                    candidate = scores[i - 1][p] + transition
                    if candidate > best_score:
                        best_score, best_parent = candidate, p
                if best_parent < 0:  # all transitions pruned; restart chain
                    best_score = max(scores[i - 1])
                    best_parent = scores[i - 1].index(best_score)
                row_scores.append(best_score - (d_emit * d_emit) / emission_var)
                row_parents.append(best_parent)
            scores.append(row_scores)
            parents.append(row_parents)

        # Backtrack the best chain.
        j = scores[-1].index(max(scores[-1]))
        chain: list[int] = []
        for i in range(len(fixes) - 1, -1, -1):
            chain.append(layers[i][j][0])
            j = parents[i][j]
        chain.reverse()

        points: list[TrajectoryPoint] = []
        for fix, vertex in zip(fixes, chain):
            if points and points[-1].vertex == vertex:
                continue
            timestamp = max(fix.timestamp, points[-1].timestamp) if points else fix.timestamp
            points.append(TrajectoryPoint(vertex, timestamp))
        return Trajectory(trajectory_id, points)
