"""GPS noise simulation.

Turns a clean (map-matched) trajectory back into the raw fixes a GPS device
would report: planar coordinates with Gaussian positioning error, occasional
outliers, and random point drops.  Together with
:mod:`repro.trajectory.mapmatch` this closes the loop the paper assumes has
already happened ("sample points have been map matched onto the vertices").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import DatasetError
from repro.network.graph import SpatialNetwork
from repro.trajectory.model import Trajectory

__all__ = ["RawFix", "NoiseConfig", "add_gps_noise"]


@dataclass(frozen=True, slots=True)
class RawFix:
    """One raw GPS report: position and time of day (seconds)."""

    x: float
    y: float
    timestamp: float


@dataclass(frozen=True)
class NoiseConfig:
    """Parameters of the simulated GPS error model."""

    position_std: float = 15.0  # metres, typical urban GPS error
    outlier_probability: float = 0.02
    outlier_std: float = 120.0  # metres, multipath reflections
    drop_probability: float = 0.05  # missed fixes

    def __post_init__(self):
        if self.position_std < 0 or self.outlier_std < 0:
            raise DatasetError("noise standard deviations must be non-negative")
        for p in (self.outlier_probability, self.drop_probability):
            if not (0.0 <= p < 1.0):
                raise DatasetError(f"probability {p} outside [0, 1)")


def add_gps_noise(
    graph: SpatialNetwork,
    trajectory: Trajectory,
    config: NoiseConfig | None = None,
    seed: int | None = None,
) -> list[RawFix]:
    """Simulate the raw GPS fixes behind a map-matched trajectory.

    The first and last fixes are never dropped, so the trip's extent is
    preserved.  Returns at least two fixes.
    """
    config = config or NoiseConfig()
    rng = random.Random(seed)
    fixes: list[RawFix] = []
    last = len(trajectory) - 1
    for i, point in enumerate(trajectory):
        if 0 < i < last and rng.random() < config.drop_probability:
            continue
        x, y = graph.position(point.vertex)
        std = config.position_std
        if rng.random() < config.outlier_probability:
            std = config.outlier_std
        fixes.append(
            RawFix(
                x + rng.gauss(0.0, std),
                y + rng.gauss(0.0, std),
                point.timestamp,
            )
        )
    return fixes
