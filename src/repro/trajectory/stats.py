"""Descriptive statistics of trajectory datasets.

The benchmark harness prints these next to every experiment so a reader can
compare the synthetic data's shape against the paper's reported statistics
(average trajectory length ~72 samples for BRN, ~80 for NRN).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import DatasetError
from repro.trajectory.model import TrajectorySet

__all__ = ["TrajectoryStats", "trajectory_stats"]


@dataclass(frozen=True)
class TrajectoryStats:
    """Summary of a trajectory dataset."""

    count: int
    avg_points: float
    min_points: int
    max_points: int
    avg_duration: float
    distinct_vertices: int
    avg_keywords: float
    distinct_keywords: int

    def describe(self) -> str:
        """Single-line human-readable summary."""
        return (
            f"|P|={self.count} avg_len={self.avg_points:.1f} "
            f"len_range=[{self.min_points}, {self.max_points}] "
            f"avg_dur={self.avg_duration / 60.0:.1f}min "
            f"coverage={self.distinct_vertices} vertices "
            f"avg_kw={self.avg_keywords:.1f}/{self.distinct_keywords} distinct"
        )


def trajectory_stats(trajectories: TrajectorySet) -> TrajectoryStats:
    """Compute :class:`TrajectoryStats`; rejects an empty set."""
    if len(trajectories) == 0:
        raise DatasetError("statistics of an empty trajectory set are undefined")
    lengths = []
    durations = []
    vertices: set[int] = set()
    keyword_counts = []
    keyword_universe: Counter[str] = Counter()
    for trajectory in trajectories:
        lengths.append(len(trajectory))
        durations.append(trajectory.duration)
        vertices.update(trajectory.vertex_set)
        keyword_counts.append(len(trajectory.keywords))
        keyword_universe.update(trajectory.keywords)
    count = len(lengths)
    return TrajectoryStats(
        count=count,
        avg_points=sum(lengths) / count,
        min_points=min(lengths),
        max_points=max(lengths),
        avg_duration=sum(durations) / count,
        distinct_vertices=len(vertices),
        avg_keywords=sum(keyword_counts) / count,
        distinct_keywords=len(keyword_universe),
    )
