"""Synthetic trip generation.

The paper's trajectory data (T-Drive taxi logs for Beijing, NYC taxi trips)
cannot be redistributed, so this module generates trips with the same
statistics that drive the algorithms under test:

- trips follow shortest paths between origin/destination pairs, optionally
  with a detour through an intermediate waypoint (taxis rarely drive
  optimally),
- origins and waypoints are drawn from a pool of *hubs* (railway stations,
  business districts), giving the spatial clustering real taxi data
  exhibits; destinations are arbitrary,
- departure times follow a bimodal rush-hour distribution on the 24-hour
  axis, and travel speed varies per trip,
- point counts land in the paper's range (~72-80 samples on average) by
  subsampling the path to a target count.

Routing cost is amortised with a shortest-path-tree cache: one Dijkstra per
pool vertex serves every trip leaving it, so generating tens of thousands of
trips on a 30k-vertex network takes seconds, not hours.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from repro.errors import DatasetError
from repro.network.graph import SpatialNetwork
from repro.trajectory.model import DAY_SECONDS, Trajectory, TrajectoryPoint, TrajectorySet

__all__ = ["TripConfig", "TripGenerator", "generate_trips"]

_INF = float("inf")


@dataclass(frozen=True)
class TripConfig:
    """Parameters of the synthetic trip distribution."""

    num_origins: int = 48  # size of the origin/waypoint pool (trip "hubs")
    detour_probability: float = 0.35
    min_points: int = 8
    max_points: int = 120
    target_points: int = 40  # typical samples per trip before clamping
    speed_low: float = 5.0  # metres/second (~18 km/h congested)
    speed_high: float = 17.0  # metres/second (~61 km/h free flow)
    rush_hours: tuple[float, float] = (8.0, 18.0)  # peak departure hours
    rush_std_hours: float = 1.6
    rush_weight: float = 0.8  # share of trips departing in a rush peak

    def __post_init__(self):
        if self.num_origins < 1:
            raise DatasetError("num_origins must be >= 1")
        if not (0.0 <= self.detour_probability <= 1.0):
            raise DatasetError("detour_probability must be in [0, 1]")
        if self.min_points < 2 or self.max_points < self.min_points:
            raise DatasetError("need max_points >= min_points >= 2")
        if self.speed_low <= 0 or self.speed_high < self.speed_low:
            raise DatasetError("need speed_high >= speed_low > 0")


class _PathOracle:
    """Cached full shortest-path trees for a pool of origin vertices."""

    def __init__(self, graph: SpatialNetwork):
        self._graph = graph
        self._trees: dict[int, tuple[list[float], list[int]]] = {}

    def tree(self, origin: int) -> tuple[list[float], list[int]]:
        """``(distances, parents)`` arrays of the origin's shortest-path tree."""
        cached = self._trees.get(origin)
        if cached is not None:
            return cached
        n = self._graph.num_vertices
        dist = [_INF] * n
        parent = [-1] * n
        dist[origin] = 0.0
        heap = [(0.0, origin)]
        settled = [False] * n
        adjacency = self._graph.adjacency
        while heap:
            d, u = heapq.heappop(heap)
            if settled[u]:
                continue
            settled[u] = True
            for v, w in adjacency[u]:
                nd = d + w
                if not settled[v] and nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        self._trees[origin] = (dist, parent)
        return dist, parent

    def path(self, origin: int, destination: int) -> list[int] | None:
        """Shortest path as a vertex list, or ``None`` when unreachable."""
        dist, parent = self.tree(origin)
        if dist[destination] == _INF:
            return None
        path = [destination]
        while path[-1] != origin:
            path.append(parent[path[-1]])
        path.reverse()
        return path


class TripGenerator:
    """Seeded generator of taxi-trip-like trajectories on a network."""

    def __init__(
        self,
        graph: SpatialNetwork,
        config: TripConfig | None = None,
        seed: int | None = None,
    ):
        if graph.num_vertices < 2:
            raise DatasetError("trip generation needs a graph with >= 2 vertices")
        self._graph = graph
        self._config = config or TripConfig()
        self._rng = random.Random(seed)
        self._oracle = _PathOracle(graph)
        pool_size = min(self._config.num_origins, graph.num_vertices)
        self._origin_pool = self._rng.sample(range(graph.num_vertices), pool_size)

    # ----------------------------------------------------------- sampling
    def _sample_departure(self) -> float:
        config = self._config
        rng = self._rng
        if rng.random() < config.rush_weight:
            peak = rng.choice(config.rush_hours)
            hour = rng.gauss(peak, config.rush_std_hours)
        else:
            hour = rng.uniform(0.0, 24.0)
        return (hour % 24.0) * 3600.0

    def _route(self) -> list[int] | None:
        """One origin-pool routed path, optionally via a waypoint; reversed
        half the time so trips flow both toward and away from hubs."""
        rng = self._rng
        origin = rng.choice(self._origin_pool)
        destination = self._rng.randrange(self._graph.num_vertices)
        if origin == destination:
            return None
        if rng.random() < self._config.detour_probability and len(self._origin_pool) > 1:
            waypoint = rng.choice(self._origin_pool)
            if waypoint not in (origin, destination):
                first = self._oracle.path(origin, waypoint)
                second = self._oracle.path(waypoint, destination)
                if first is None or second is None:
                    return None
                path = first + second[1:]
            else:
                path = self._oracle.path(origin, destination)
        else:
            path = self._oracle.path(origin, destination)
        if path is None or len(path) < 2:
            return None
        if rng.random() < 0.5:
            path = path[::-1]
        return path

    # ----------------------------------------------------------- generation
    def generate(self, trajectory_id: int) -> Trajectory:
        """Generate one trajectory (retrying unreachable endpoint pairs)."""
        graph = self._graph
        config = self._config
        rng = self._rng
        for __ in range(64):
            path = self._route()
            if path is None:
                continue
            path = self._subsample(path)
            if len(path) < 2:
                continue
            departure = self._sample_departure()
            speed = rng.uniform(config.speed_low, config.speed_high)
            points = []
            t = departure
            previous = path[0]
            for vertex in path:
                if vertex != previous:
                    t += graph.euclidean(previous, vertex) / speed
                points.append(TrajectoryPoint(vertex, t % DAY_SECONDS))
                previous = vertex
            # Shift trips that cross midnight back to 0:00 so timestamps
            # stay non-decreasing, as the trajectory model requires.
            stamps = [p.timestamp for p in points]
            if any(b < a for a, b in zip(stamps, stamps[1:])):
                shift = DAY_SECONDS - departure
                points = [
                    TrajectoryPoint(p.vertex, (p.timestamp + shift) % DAY_SECONDS)
                    for p in points
                ]
            return Trajectory(trajectory_id, points)
        raise DatasetError("could not generate a trip (graph too fragmented?)")

    def _subsample(self, path: list[int]) -> list[int]:
        """Reduce a dense vertex path to a realistic GPS sample count."""
        config = self._config
        target = max(
            config.min_points,
            min(config.max_points, int(self._rng.gauss(config.target_points, 10))),
        )
        if len(path) > target:
            step = (len(path) - 1) / (target - 1)
            indices = sorted({round(i * step) for i in range(target)})
            if indices[-1] != len(path) - 1:
                indices.append(len(path) - 1)
            path = [path[i] for i in indices]
        # A detour path can revisit a vertex; subsampling may then make the
        # two visits adjacent.  Collapse such runs.
        collapsed = [path[0]]
        for vertex in path[1:]:
            if vertex != collapsed[-1]:
                collapsed.append(vertex)
        return collapsed

    def generate_set(self, count: int, start_id: int = 0) -> TrajectorySet:
        """Generate ``count`` trajectories with ids ``start_id..``."""
        return TrajectorySet(self.generate(start_id + i) for i in range(count))


def generate_trips(
    graph: SpatialNetwork,
    count: int,
    seed: int | None = None,
    config: TripConfig | None = None,
    start_id: int = 0,
) -> TrajectorySet:
    """Convenience wrapper: seeded :class:`TripGenerator` + ``generate_set``."""
    return TripGenerator(graph, config, seed).generate_set(count, start_id)
