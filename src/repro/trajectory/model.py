"""Trajectory data model.

A trajectory is a finite, time-ordered sequence of map-matched sample points
``(vertex, timestamp)``; timestamps live on a 24-hour axis (seconds in
``[0, 86400)``) because, as in the paper family, most urban movements repeat
daily and the date is not modelled.  Each trajectory additionally carries a
set of *textual attributes* — keywords describing the activities and places
along the trip — which is what makes the UOTS query user-oriented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import TrajectoryError

__all__ = ["DAY_SECONDS", "TrajectoryPoint", "Trajectory", "TrajectorySet"]

DAY_SECONDS = 86_400.0


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One map-matched sample: a network vertex at a time of day (seconds)."""

    vertex: int
    timestamp: float

    def __post_init__(self):
        if self.vertex < 0:
            raise TrajectoryError(f"negative vertex id {self.vertex}")
        if not (0.0 <= self.timestamp < DAY_SECONDS):
            raise TrajectoryError(
                f"timestamp {self.timestamp} outside the 24-hour axis [0, {DAY_SECONDS})"
            )


class Trajectory:
    """An immutable trajectory with an id, sample points and keywords.

    Parameters
    ----------
    trajectory_id:
        Unique non-negative identifier within a :class:`TrajectorySet`.
    points:
        Time-ordered samples.  Must be non-empty; timestamps must be
        non-decreasing (several samples may share a timestamp after map
        matching snaps them to the same minute).
    keywords:
        Textual attributes of the trip (may be empty).
    """

    __slots__ = ("_id", "_points", "_keywords", "_vertex_set")

    def __init__(
        self,
        trajectory_id: int,
        points: Iterable[TrajectoryPoint],
        keywords: Iterable[str] = (),
    ):
        points = tuple(points)
        if trajectory_id < 0:
            raise TrajectoryError(f"negative trajectory id {trajectory_id}")
        if not points:
            raise TrajectoryError(f"trajectory {trajectory_id} has no sample points")
        for a, b in zip(points, points[1:]):
            if b.timestamp < a.timestamp:
                raise TrajectoryError(
                    f"trajectory {trajectory_id} timestamps decrease: "
                    f"{a.timestamp} -> {b.timestamp}"
                )
        self._id = trajectory_id
        self._points = points
        self._keywords = frozenset(k.lower() for k in keywords)
        self._vertex_set = frozenset(p.vertex for p in points)

    # ------------------------------------------------------------ accessors
    @property
    def id(self) -> int:
        """The trajectory's identifier."""
        return self._id

    @property
    def points(self) -> tuple[TrajectoryPoint, ...]:
        """The time-ordered sample points."""
        return self._points

    @property
    def keywords(self) -> frozenset[str]:
        """The textual attributes (lower-cased)."""
        return self._keywords

    @property
    def vertex_set(self) -> frozenset[int]:
        """The distinct vertices the trajectory covers."""
        return self._vertex_set

    def vertices(self) -> list[int]:
        """Sample-point vertices in visit order (with repeats)."""
        return [p.vertex for p in self._points]

    def timestamps(self) -> list[float]:
        """Sample-point timestamps in order."""
        return [p.timestamp for p in self._points]

    @property
    def time_range(self) -> tuple[float, float]:
        """``(departure, arrival)`` timestamps."""
        return (self._points[0].timestamp, self._points[-1].timestamp)

    @property
    def duration(self) -> float:
        """Travel time in seconds (arrival minus departure)."""
        start, end = self.time_range
        return end - start

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self._points)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return (
            self._id == other._id
            and self._points == other._points
            and self._keywords == other._keywords
        )

    def __hash__(self) -> int:
        return hash((self._id, self._points, self._keywords))

    def __repr__(self) -> str:
        start, end = self.time_range
        return (
            f"Trajectory(id={self._id}, points={len(self._points)}, "
            f"range=[{start:.0f}s, {end:.0f}s], keywords={sorted(self._keywords)!r})"
        )

    # ------------------------------------------------------------- variants
    def with_keywords(self, keywords: Iterable[str]) -> "Trajectory":
        """A copy of this trajectory carrying ``keywords`` instead."""
        return Trajectory(self._id, self._points, keywords)

    def with_id(self, trajectory_id: int) -> "Trajectory":
        """A copy of this trajectory under a different id."""
        return Trajectory(trajectory_id, self._points, self._keywords)


class TrajectorySet:
    """A collection of trajectories with unique ids and fast id lookup."""

    def __init__(self, trajectories: Iterable[Trajectory] = ()):
        self._by_id: dict[int, Trajectory] = {}
        for trajectory in trajectories:
            self.add(trajectory)

    def add(self, trajectory: Trajectory) -> None:
        """Add a trajectory; rejects duplicate ids."""
        if trajectory.id in self._by_id:
            raise TrajectoryError(f"duplicate trajectory id {trajectory.id}")
        self._by_id[trajectory.id] = trajectory

    def remove(self, trajectory_id: int) -> Trajectory:
        """Remove and return the trajectory with ``trajectory_id``."""
        try:
            return self._by_id.pop(trajectory_id)
        except KeyError:
            raise TrajectoryError(f"unknown trajectory id {trajectory_id}") from None

    def get(self, trajectory_id: int) -> Trajectory:
        """The trajectory with ``trajectory_id``; raises if absent."""
        try:
            return self._by_id[trajectory_id]
        except KeyError:
            raise TrajectoryError(f"unknown trajectory id {trajectory_id}") from None

    def __contains__(self, trajectory_id: int) -> bool:
        return trajectory_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._by_id.values())

    def ids(self) -> list[int]:
        """All trajectory ids (insertion order)."""
        return list(self._by_id)

    def as_mapping(self) -> Mapping[int, Trajectory]:
        """Read-only view of the id -> trajectory mapping."""
        return self._by_id

    def __repr__(self) -> str:
        return f"TrajectorySet(size={len(self._by_id)})"
