"""Trajectory substrate: model, generation, GPS noise, map matching, I/O."""

from repro.trajectory.generator import TripConfig, TripGenerator, generate_trips
from repro.trajectory.io import load_jsonl, save_jsonl
from repro.trajectory.mapmatch import HmmMatcher, VertexGrid, snap_match
from repro.trajectory.model import (
    DAY_SECONDS,
    Trajectory,
    TrajectoryPoint,
    TrajectorySet,
)
from repro.trajectory.noise import NoiseConfig, RawFix, add_gps_noise
from repro.trajectory.routes import reconstruct_route, route_length, route_overlap
from repro.trajectory.stats import TrajectoryStats, trajectory_stats

__all__ = [
    "DAY_SECONDS",
    "HmmMatcher",
    "NoiseConfig",
    "RawFix",
    "Trajectory",
    "TrajectoryPoint",
    "TrajectorySet",
    "TrajectoryStats",
    "TripConfig",
    "TripGenerator",
    "VertexGrid",
    "add_gps_noise",
    "generate_trips",
    "load_jsonl",
    "reconstruct_route",
    "route_length",
    "route_overlap",
    "save_jsonl",
    "snap_match",
    "trajectory_stats",
]
