"""Reusable exponential backoff with jitter.

The storage layer wires a :class:`RetryPolicy` in front of physical page
reads (:class:`~repro.storage.buffer.LRUBufferPool`) so transient I/O
faults are retried transparently; the policy is deliberately generic so
other layers (network backends, remote shards) can reuse it.

Retries apply only to exception types listed in ``retry_on`` — permanent
failures (e.g. :class:`~repro.errors.CorruptPageError`, which derives from
``ReproError``, not ``OSError``) pass straight through.  When the attempt
budget is exhausted the *last* exception is re-raised unchanged; callers
wrap it in their own typed error (the buffer pool raises
:class:`~repro.errors.StorageError`).
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.errors import QueryError

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Exponential-backoff-with-jitter retry of a callable.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (``1`` disables retrying).
    base_delay:
        Sleep before the second attempt, in seconds.
    multiplier:
        Backoff growth factor per attempt.
    max_delay:
        Backoff ceiling, in seconds.
    jitter:
        Fraction of each delay randomized (``0.5`` means the actual sleep
        is uniform in ``[0.5 d, 1.5 d]``), decorrelating retry storms.
    retry_on:
        Exception types that are considered transient.
    seed:
        Seeds the jitter RNG per :meth:`call` so runs are reproducible.
    sleep:
        Injectable sleep function (tests pass a recorder).
    """

    def __init__(
        self,
        max_attempts: int = 5,
        base_delay: float = 0.0005,
        multiplier: float = 2.0,
        max_delay: float = 0.05,
        jitter: float = 0.5,
        retry_on: tuple[type[BaseException], ...] = (OSError,),
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if max_attempts < 1:
            raise QueryError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise QueryError("retry delays must be >= 0")
        if multiplier < 1.0:
            raise QueryError(f"multiplier must be >= 1, got {multiplier}")
        if not (0.0 <= jitter <= 1.0):
            raise QueryError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.retry_on = retry_on
        self.seed = seed
        self._sleep = sleep

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Jittered backoff before attempt ``attempt + 1`` (0-based)."""
        delay = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)

    def call(
        self,
        fn: Callable,
        *args,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ):
        """Invoke ``fn(*args)``, retrying transient failures.

        ``on_retry(attempt, exc)`` is called before each backoff sleep
        (attempts are 1-based), letting callers count retries in their
        stats.  Re-raises the last transient exception once
        ``max_attempts`` is exhausted.
        """
        rng = random.Random(self.seed)
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn(*args)
            except self.retry_on as exc:
                if attempt >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self._sleep(self.delay_for(attempt - 1, rng))

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier}, "
            f"max_delay={self.max_delay}, jitter={self.jitter})"
        )
