"""Resilience primitives: search budgets, retries, and fault injection.

A production search service must answer *something* within its latency
contract, survive flaky disks, and contain the blast radius of a bad query
or a crashed worker.  This package provides the three building blocks the
rest of the system threads through its layers:

- :class:`SearchBudget` / :class:`BudgetMeter` — anytime top-k search:
  wall-clock deadlines and work caps that degrade a search gracefully into
  its best-so-far answer with a principled error bar (the bound tracker's
  residual upper bound), instead of raising or running forever;
- :class:`RetryPolicy` — reusable exponential backoff with jitter, wired
  into the storage read path so transient I/O faults are invisible;
- :class:`FaultPolicy` / :class:`FaultInjector` — deterministic, seeded
  fault injection against :class:`~repro.storage.pages.PageFile` (transient
  ``IOError``, permanent on-disk corruption, added latency) for chaos
  testing the stack end to end.
"""

from repro.resilience.budget import BudgetMeter, SearchBudget
from repro.resilience.faults import FaultInjector, FaultPolicy
from repro.resilience.retry import RetryPolicy

__all__ = [
    "BudgetMeter",
    "FaultInjector",
    "FaultPolicy",
    "RetryPolicy",
    "SearchBudget",
]
