"""Search budgets: deadlines and work caps for anytime top-k search.

A :class:`SearchBudget` declares how much a caller is willing to spend on
one search; a :class:`BudgetMeter` is the running instance the searcher
consults at batch boundaries.  When a budget trips, the search stops and
returns its current top-k flagged ``exact=False`` together with the bound
tracker's residual upper bound — the largest score any unevaluated
trajectory could still achieve, i.e. an error bar on the missed score
(see DESIGN.md, "Resilience").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import QueryError

__all__ = ["SearchBudget", "BudgetMeter"]


@dataclass(frozen=True)
class SearchBudget:
    """Resource limits for one search; ``None`` fields are unlimited.

    Attributes
    ----------
    deadline_seconds:
        Wall-clock limit, measured from :meth:`start`.
    max_expanded_vertices:
        Cap on Dijkstra settle operations across all query sources.
    max_refinements:
        Cap on direct candidate refinements (each one is a multi-source
        Dijkstra, the most expensive single step the search takes).
    strict:
        When true, a tripped budget raises
        :class:`~repro.errors.BudgetExceededError` instead of degrading
        into a best-so-far answer.
    """

    deadline_seconds: float | None = None
    max_expanded_vertices: int | None = None
    max_refinements: int | None = None
    strict: bool = False

    def __post_init__(self):
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise QueryError(
                f"deadline_seconds must be >= 0, got {self.deadline_seconds}"
            )
        if self.max_expanded_vertices is not None and self.max_expanded_vertices < 0:
            raise QueryError(
                f"max_expanded_vertices must be >= 0, got {self.max_expanded_vertices}"
            )
        if self.max_refinements is not None and self.max_refinements < 0:
            raise QueryError(
                f"max_refinements must be >= 0, got {self.max_refinements}"
            )

    @classmethod
    def from_millis(
        cls,
        deadline_ms: float | None = None,
        max_expanded_vertices: int | None = None,
        max_refinements: int | None = None,
        strict: bool = False,
    ) -> "SearchBudget":
        """Convenience constructor for CLI-style millisecond deadlines."""
        return cls(
            deadline_seconds=None if deadline_ms is None else deadline_ms / 1000.0,
            max_expanded_vertices=max_expanded_vertices,
            max_refinements=max_refinements,
            strict=strict,
        )

    @property
    def unlimited(self) -> bool:
        """Whether this budget can never trip."""
        return (
            self.deadline_seconds is None
            and self.max_expanded_vertices is None
            and self.max_refinements is None
        )

    def start(self) -> "BudgetMeter":
        """Begin metering: the deadline clock starts now."""
        return BudgetMeter(self)


class BudgetMeter:
    """A running budget: cheap per-batch checks against a fixed deadline."""

    #: The deadline clock is consulted on the first check and every Nth
    #: after; the strides in between cost only integer compares.  At one
    #: check per expansion batch this bounds the deadline overshoot to a
    #: few dozen expansions — far below any usable deadline.
    _CLOCK_STRIDE = 8

    __slots__ = ("budget", "_deadline", "_checks")

    def __init__(self, budget: SearchBudget):
        self.budget = budget
        self._checks = 0
        self._deadline = (
            time.perf_counter() + budget.deadline_seconds
            if budget.deadline_seconds is not None
            else None
        )

    def exceeded(self, expanded_vertices: int = 0, refinements: int = 0) -> str | None:
        """The degradation reason if any limit is hit, else ``None``.

        Work counters are compared first (no syscall); the deadline check
        costs one ``perf_counter`` call every ``_CLOCK_STRIDE`` batches.
        """
        budget = self.budget
        if (
            budget.max_expanded_vertices is not None
            and expanded_vertices >= budget.max_expanded_vertices
        ):
            return (
                f"expansion budget exhausted "
                f"({expanded_vertices} >= {budget.max_expanded_vertices} vertices)"
            )
        if (
            budget.max_refinements is not None
            and refinements >= budget.max_refinements
        ):
            return (
                f"refinement budget exhausted "
                f"({refinements} >= {budget.max_refinements} refinements)"
            )
        if self._deadline is not None:
            checks = self._checks
            self._checks = checks + 1
            if checks % self._CLOCK_STRIDE == 0 and (
                time.perf_counter() >= self._deadline
            ):
                return (
                    f"deadline of {self.budget.deadline_seconds * 1000:.1f} "
                    f"ms reached"
                )
        return None
