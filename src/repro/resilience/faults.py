"""Deterministic, seeded fault injection for the storage layer.

A :class:`FaultPolicy` describes *what* goes wrong; a :class:`FaultInjector`
applies it to a live :class:`~repro.storage.pages.PageFile`:

- **transient faults** — each physical page read raises ``IOError`` with
  probability ``transient_fault_rate`` (seeded RNG, so a chaos run is
  reproducible).  The retry layer above must absorb these: results stay
  byte-identical to a fault-free run.
- **permanent corruption** — ``corrupt_pages`` victim pages are chosen with
  the seeded RNG and physically damaged *on disk* (one payload byte is
  flipped without updating the CRC header), so every read of those pages
  raises :class:`~repro.errors.CorruptPageError` forever: corruption is
  disk state, not read behaviour, and no amount of retrying hides it.
- **latency** — each physical read sleeps ``latency_seconds`` first,
  modelling a slow device for deadline tests.

The injector attaches through ``PageFile.read_fault_hook`` (a documented
seam that is ``None`` in production) and through
``PageFile.corrupt_payload_byte``; it never monkey-patches.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.errors import QueryError
from repro.obs.trace import current_tracer
from repro.storage.pages import PageFile

__all__ = ["FaultPolicy", "FaultInjector"]


@dataclass(frozen=True)
class FaultPolicy:
    """What to break, how often, reproducibly."""

    seed: int = 0
    #: Probability that one physical page read raises a transient ``IOError``.
    transient_fault_rate: float = 0.0
    #: Number of distinct pages to corrupt permanently on disk at attach time.
    corrupt_pages: int = 0
    #: Extra seconds added to every physical page read.
    latency_seconds: float = 0.0

    def __post_init__(self):
        if not (0.0 <= self.transient_fault_rate < 1.0):
            raise QueryError(
                f"transient_fault_rate must be in [0, 1), got "
                f"{self.transient_fault_rate}"
            )
        if self.corrupt_pages < 0:
            raise QueryError(f"corrupt_pages must be >= 0, got {self.corrupt_pages}")
        if self.latency_seconds < 0:
            raise QueryError(
                f"latency_seconds must be >= 0, got {self.latency_seconds}"
            )


class FaultInjector:
    """Applies a :class:`FaultPolicy` to page files; counts what it did."""

    def __init__(self, policy: FaultPolicy):
        self.policy = policy
        self._rng = random.Random(policy.seed)
        #: Transient faults raised so far.
        self.injected_transients = 0
        #: Physical reads that went through the hook.
        self.observed_reads = 0
        #: Page ids permanently corrupted at attach time.
        self.corrupted_pages: list[int] = []

    def attach(self, pagefile: PageFile) -> PageFile:
        """Arm the injector on ``pagefile`` (returned for chaining).

        Permanent corruption happens immediately; transient faults and
        latency apply to every subsequent physical read.  Attach *before*
        the buffer pool warms up, or invalidate the pool after — cached
        pages never touch the hook.
        """
        if self.policy.corrupt_pages:
            if pagefile.num_pages == 0:
                raise QueryError("cannot corrupt pages of an empty page file")
            count = min(self.policy.corrupt_pages, pagefile.num_pages)
            victims = sorted(self._rng.sample(range(pagefile.num_pages), count))
            for page_id in victims:
                offset = self._rng.randrange(pagefile.page_size)
                pagefile.corrupt_payload_byte(page_id, offset)
            self.corrupted_pages.extend(victims)
        pagefile.read_fault_hook = self._before_read
        return pagefile

    def detach(self, pagefile: PageFile) -> None:
        """Disarm transient/latency injection (corruption stays on disk)."""
        pagefile.read_fault_hook = None

    def _before_read(self, page_id: int) -> None:
        self.observed_reads += 1
        if self.policy.latency_seconds:
            time.sleep(self.policy.latency_seconds)
        if (
            self.policy.transient_fault_rate
            and self._rng.random() < self.policy.transient_fault_rate
        ):
            self.injected_transients += 1
            current_tracer().event(
                "fault_injected", kind="transient", page=page_id
            )
            raise OSError(
                f"injected transient I/O fault reading page {page_id} "
                f"(fault {self.injected_transients})"
            )

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.policy.seed}, "
            f"transients={self.injected_transients}, "
            f"corrupted={self.corrupted_pages})"
        )
