"""The gateway's ASGI application — framework-free, pydantic-validated.

A plain ASGI 3 callable (``async def app(scope, receive, send)``) rather
than a FastAPI router: the serving container ships no web framework, and
the route table below is six endpoints — a dispatch dict is smaller than
the dependency.  The app runs unchanged under any ASGI server (uvicorn
when installed, the stdlib server in :mod:`repro.gateway.server`
otherwise) and under the in-process test client in
:mod:`repro.gateway.testing`.

Routes and status mapping (DESIGN.md §14):

========================  =====================================================
``POST /query``           200 answered; 429 admission-rejected (body still a
                          full :class:`QueryResponse` — the reason travels in
                          ``error``/``degradation_reason``); 400 domain-invalid
                          (``QueryError``); 422 shape-invalid JSON; 503 bridge
                          saturated
``POST /query/batch``     one bridged ``execute_many`` (fork fan-out intact);
                          200 with per-query results — individual rejections
                          ride inside the body, the *batch* itself only 503s
                          on a saturated bridge
``POST /explain``         200 with the rendered plan; never executes
``GET /healthz``          200 while the process serves at all
``GET /readyz``           200 ready / 503 with a reason slug: breaker open,
                          bridge saturated, or closing
``GET /metrics``          Prometheus text exposition from the bound registry
==========================  ===================================================

Everything non-2xx (except 429, above) is an :class:`ErrorResponse`.
"""

from __future__ import annotations

import json

from pydantic import ValidationError

from repro.errors import GatewaySaturatedError, QueryError, ReproError
from repro.gateway.aservice import AsyncQueryService
from repro.gateway.schemas import (
    BatchQueryRequest,
    BatchQueryResponse,
    ErrorResponse,
    ExplainRequest,
    ExplainResponse,
    QueryRequest,
    QueryResponse,
)
from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["create_app"]

_JSON = [(b"content-type", b"application/json")]
_TEXT = [(b"content-type", b"text/plain; version=0.0.4; charset=utf-8")]


async def _read_body(receive) -> bytes:
    chunks = []
    while True:
        message = await receive()
        if message["type"] != "http.request":  # pragma: no cover - disconnect
            break
        chunks.append(message.get("body", b""))
        if not message.get("more_body", False):
            break
    return b"".join(chunks)


async def _send_response(
    send, status: int, body: bytes, headers: list[tuple[bytes, bytes]]
) -> None:
    headers = headers + [(b"content-length", str(len(body)).encode())]
    await send(
        {"type": "http.response.start", "status": status, "headers": headers}
    )
    await send({"type": "http.response.body", "body": body})


async def _send_json(send, status: int, model) -> None:
    await _send_response(
        send, status, model.model_dump_json().encode(), list(_JSON)
    )


async def _send_error(send, status: int, error: str, detail: str = "") -> None:
    await _send_json(send, status, ErrorResponse(error=error, detail=detail))


def create_app(gateway: AsyncQueryService, registry: MetricsRegistry | None = None):
    """Build the ASGI app serving ``gateway``.

    ``registry`` is the metrics registry ``/metrics`` renders; ``None``
    falls back to the gateway service's own bound registry when it has
    one, else the process-wide default — so a service built with
    ``metrics=True`` exposes exactly what the CLI's ``repro metrics``
    command would show.
    """
    if registry is None:
        registry = gateway.service.metrics or get_registry()

    async def handle_query(receive, send) -> None:
        body = await _read_body(receive)
        try:
            request = QueryRequest.model_validate_json(body)
        except ValidationError as exc:
            await _send_error(send, 422, "validation_error", str(exc))
            return
        try:
            query = request.to_query()
            budget = request.to_budget()
        except QueryError as exc:
            await _send_error(send, 400, "query_error", str(exc))
            return
        try:
            result = await gateway.submit(
                query,
                budget=budget,
                tenant=request.tenant,
                priority=request.priority,
            )
        except GatewaySaturatedError as exc:
            await _send_error(send, 503, "gateway_saturated", str(exc))
            return
        except QueryError as exc:  # unknown priority class, bad workers
            await _send_error(send, 400, "query_error", str(exc))
            return
        response = QueryResponse.from_result(result)
        await _send_json(send, 429 if response.rejected else 200, response)

    async def handle_batch(receive, send) -> None:
        body = await _read_body(receive)
        try:
            request = BatchQueryRequest.model_validate_json(body)
        except ValidationError as exc:
            await _send_error(send, 422, "validation_error", str(exc))
            return
        try:
            queries = [q.to_query() for q in request.queries]
            budgets = {q.to_budget() for q in request.queries}
        except QueryError as exc:
            await _send_error(send, 400, "query_error", str(exc))
            return
        if budgets != {None}:
            # execute_many applies one budget to the whole batch; mapping
            # heterogeneous per-query budgets onto it would silently
            # tighten or loosen someone's contract.
            await _send_error(
                send, 422, "validation_error",
                "per-query budgets are not supported in a batch",
            )
            return
        try:
            results = await gateway.submit_many(
                queries,
                workers=request.workers,
                tenant=request.tenant,
                priority=request.priority,
            )
        except GatewaySaturatedError as exc:
            await _send_error(send, 503, "gateway_saturated", str(exc))
            return
        except QueryError as exc:
            await _send_error(send, 400, "query_error", str(exc))
            return
        await _send_json(send, 200, BatchQueryResponse.from_results(results))

    async def handle_explain(receive, send) -> None:
        body = await _read_body(receive)
        try:
            request = ExplainRequest.model_validate_json(body)
        except ValidationError as exc:
            await _send_error(send, 422, "validation_error", str(exc))
            return
        try:
            query = request.to_query()
        except QueryError as exc:
            await _send_error(send, 400, "query_error", str(exc))
            return
        try:
            rendered = await gateway.explain(query)
        except GatewaySaturatedError as exc:
            await _send_error(send, 503, "gateway_saturated", str(exc))
            return
        except QueryError as exc:
            await _send_error(send, 400, "query_error", str(exc))
            return
        await _send_json(send, 200, ExplainResponse(explain=rendered))

    async def handle_healthz(receive, send) -> None:
        if gateway.healthy():
            await _send_response(
                send, 200, b'{"status":"ok"}', list(_JSON)
            )
        else:  # pragma: no cover - only after close()
            await _send_error(send, 503, "unhealthy", "gateway closed")

    async def handle_readyz(receive, send) -> None:
        ready, reason = gateway.ready()
        body = json.dumps(
            {
                "ready": ready,
                "reason": reason,
                "pending": gateway.pending,
                "max_pending": gateway.max_pending,
            }
        ).encode()
        await _send_response(send, 200 if ready else 503, body, list(_JSON))

    async def handle_metrics(receive, send) -> None:
        rendered = registry.render_prometheus().encode()
        await _send_response(send, 200, rendered, list(_TEXT))

    routes = {
        ("POST", "/query"): handle_query,
        ("POST", "/query/batch"): handle_batch,
        ("POST", "/explain"): handle_explain,
        ("GET", "/healthz"): handle_healthz,
        ("GET", "/readyz"): handle_readyz,
        ("GET", "/metrics"): handle_metrics,
    }
    paths = {path for _, path in routes}

    async def app(scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            # Minimal lifespan protocol so uvicorn-style servers start
            # cleanly; shutdown drains the bridge.
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await gateway.close()
                    await send({"type": "lifespan.shutdown.complete"})
                    return
        if scope["type"] != "http":  # pragma: no cover - no websockets here
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")
        method = scope["method"].upper()
        path = scope["path"]
        handler = routes.get((method, path))
        if handler is None:
            if path in paths:
                await _send_error(
                    send, 405, "method_not_allowed", f"{method} {path}"
                )
            else:
                await _send_error(send, 404, "not_found", path)
            return
        try:
            await handler(receive, send)
        except ReproError as exc:  # pragma: no cover - defensive catch-all
            await _send_error(send, 500, "internal_error", str(exc))

    return app
