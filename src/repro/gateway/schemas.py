"""Request/response schemas for the HTTP gateway (pydantic v2).

The wire contract mirrors the CLI flag-for-flag: everything
``repro query`` accepts (`locations`, free-text ``preference``, ``lam``,
``k``, ``text_measure``, deadline/work budgets, ``tenant``/``priority``)
round-trips through :class:`QueryRequest` into the same
:class:`~repro.core.query.UOTSQuery` / :class:`~repro.resilience.budget.
SearchBudget` the CLI builds, and a :class:`~repro.core.results.
SearchResult` comes back as the same fields ``repro query`` prints.

This is the only gateway module (besides :mod:`repro.gateway.app`, which
uses it) that imports pydantic.  Importing it without pydantic installed
raises the usual ``ModuleNotFoundError`` — callers that need a friendly
gate go through :func:`repro.gateway.require_http_deps`.

Validation strictness is split between the layers on purpose: pydantic
checks *shape* (types, required fields, bounds that need no domain
knowledge) and produces 422s; the domain model's own invariants
(duplicate locations, unknown text measure, lam range) keep living in
:class:`UOTSQuery` and surface as :class:`~repro.errors.QueryError` →
400.  Re-encoding domain rules here would drift.
"""

from __future__ import annotations

from pydantic import BaseModel, ConfigDict, Field, model_validator

from repro.core.query import UOTSQuery
from repro.core.results import SearchResult
from repro.resilience.budget import SearchBudget
from repro.service.policy import PRIORITY_CLASSES

__all__ = [
    "QueryRequest",
    "BatchQueryRequest",
    "ScoredItem",
    "ResultStats",
    "QueryResponse",
    "BatchQueryResponse",
    "ExplainRequest",
    "ExplainResponse",
    "ErrorResponse",
]


class _Strict(BaseModel):
    """Reject unknown fields: a typo'd tuning knob must 422, not no-op."""

    model_config = ConfigDict(extra="forbid")


def _check_priority(priority: str | None) -> None:
    """Reject unknown priority classes at the edge, like the CLI's
    ``choices=PRIORITY_CLASSES`` does — the overload policy would also
    reject them, but only when one is configured, and a typo'd priority
    silently treated as unlabelled traffic is a quota bypass."""
    if priority is not None and priority not in PRIORITY_CLASSES:
        raise ValueError(
            f"unknown priority class {priority!r}; expected one of "
            f"{list(PRIORITY_CLASSES)}"
        )


class QueryRequest(_Strict):
    """One UOTS query as the CLI would build it.

    ``preference`` is the free-text form (tokenised and stop-word
    filtered, like ``repro query --preference``); ``keywords`` is the
    pre-tokenised form.  Supplying both is a 422 — there is one keyword
    set per query and silently merging or preferring one would be a
    guessing game.
    """

    locations: list[int] = Field(min_length=1)
    preference: str = ""
    keywords: list[str] | None = None
    lam: float = 0.5
    k: int = Field(default=5, ge=1)
    text_measure: str = "jaccard"
    deadline_ms: float | None = Field(default=None, ge=0)
    max_expanded_vertices: int | None = Field(default=None, ge=0)
    max_refinements: int | None = Field(default=None, ge=0)
    tenant: str | None = None
    priority: str | None = None

    @model_validator(mode="after")
    def _one_keyword_form(self) -> "QueryRequest":
        if self.keywords is not None and self.preference:
            raise ValueError("pass either preference or keywords, not both")
        _check_priority(self.priority)
        return self

    def to_query(self) -> UOTSQuery:
        """The domain query (may raise ``QueryError`` → HTTP 400)."""
        preference = (
            self.keywords if self.keywords is not None else self.preference
        )
        return UOTSQuery.create(
            locations=self.locations,
            preference=preference,
            lam=self.lam,
            k=self.k,
            text_measure=self.text_measure,
        )

    def to_budget(self) -> SearchBudget | None:
        """The per-query budget, or ``None`` when unconstrained."""
        if (
            self.deadline_ms is None
            and self.max_expanded_vertices is None
            and self.max_refinements is None
        ):
            return None
        return SearchBudget.from_millis(
            deadline_ms=self.deadline_ms,
            max_expanded_vertices=self.max_expanded_vertices,
            max_refinements=self.max_refinements,
        )


class BatchQueryRequest(_Strict):
    """A batch for ``/query/batch`` → :meth:`QueryService.execute_many`."""

    queries: list[QueryRequest] = Field(min_length=1)
    workers: int | None = Field(default=None, ge=1)
    tenant: str | None = None
    priority: str | None = None

    @model_validator(mode="after")
    def _known_priority(self) -> "BatchQueryRequest":
        _check_priority(self.priority)
        return self


class ScoredItem(_Strict):
    """One ranked trajectory, mirroring :class:`ScoredTrajectory`."""

    trajectory_id: int
    score: float
    spatial_similarity: float
    text_similarity: float
    exact: bool

    @classmethod
    def from_item(cls, item) -> "ScoredItem":
        return cls(
            trajectory_id=item.trajectory_id,
            score=item.score,
            spatial_similarity=item.spatial_similarity,
            text_similarity=item.text_similarity,
            exact=item.exact,
        )


class ResultStats(_Strict):
    """The work counters a serving client can act on.

    A deliberate subset of :class:`~repro.core.results.SearchStats`: the
    latency, the work done, which execution path served it, and the cache
    verdict — the internals (scheduler rounds, ALT prunes, shard timings)
    stay behind ``/metrics`` where they are aggregated, not per-response.
    """

    elapsed_seconds: float
    expanded_vertices: int
    visited_trajectories: int
    similarity_evaluations: int
    refinements: int
    estimated_cost: float
    executor: str
    cache: str

    @classmethod
    def from_stats(cls, stats) -> "ResultStats":
        return cls(
            elapsed_seconds=stats.elapsed_seconds,
            expanded_vertices=stats.expanded_vertices,
            visited_trajectories=stats.visited_trajectories,
            similarity_evaluations=stats.similarity_evaluations,
            refinements=stats.refinements,
            estimated_cost=stats.estimated_cost,
            executor=stats.executor,
            cache=stats.cache,
        )


class QueryResponse(_Strict):
    """One answered query, mirroring :class:`SearchResult`."""

    items: list[ScoredItem]
    exact: bool
    degradation_reason: str | None
    residual_bound: float
    error: str | None
    stats: ResultStats

    @classmethod
    def from_result(cls, result: SearchResult) -> "QueryResponse":
        return cls(
            items=[ScoredItem.from_item(item) for item in result.items],
            exact=result.exact,
            degradation_reason=result.degradation_reason,
            residual_bound=result.residual_bound,
            error=result.error,
            stats=ResultStats.from_stats(result.stats),
        )

    @property
    def rejected(self) -> bool:
        """Whether this is an admission rejection (HTTP 429)."""
        return self.error is not None and self.error.startswith("AdmissionError")


class BatchQueryResponse(_Strict):
    """The per-query answers of one batch, in request order."""

    results: list[QueryResponse]

    @classmethod
    def from_results(cls, results) -> "BatchQueryResponse":
        return cls(results=[QueryResponse.from_result(r) for r in results])


class ExplainRequest(_Strict):
    """A query to plan without executing (``/explain``)."""

    locations: list[int] = Field(min_length=1)
    preference: str = ""
    keywords: list[str] | None = None
    lam: float = 0.5
    k: int = Field(default=5, ge=1)
    text_measure: str = "jaccard"

    def to_query(self) -> UOTSQuery:
        return QueryRequest(
            locations=self.locations,
            preference=self.preference,
            keywords=self.keywords,
            lam=self.lam,
            k=self.k,
            text_measure=self.text_measure,
        ).to_query()


class ExplainResponse(_Strict):
    """The rendered plan, exactly the text ``repro explain`` prints."""

    explain: str


class ErrorResponse(_Strict):
    """The uniform error body for every non-2xx the gateway produces."""

    error: str
    detail: str = ""
