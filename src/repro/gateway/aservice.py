"""The asyncio bridge: event-loop front half, thread-pool back half.

:class:`AsyncQueryService` puts an ``await``-able face on a synchronous
:class:`~repro.service.service.QueryService` without forking it.  The
split follows the cost structure of one served query:

- the **cheap, shared-state half** — result-cache probe, admission
  decision (including the cost-policy plan) — runs directly on the event
  loop via the service's ``_cache_key`` / ``_serve_hit`` /
  ``_admit_decision`` / ``_reject`` seams.  These touch the service's
  shared structures (result cache, admission counters, stats), all of
  which are internally locked, and complete in microseconds, so they
  never block the loop noticeably and rejected/cached queries never wait
  behind a busy worker thread;
- the **expensive, CPU-bound half** — the actual search — is bridged
  onto a bounded :class:`~concurrent.futures.ThreadPoolExecutor` through
  ``_execute_admitted``, which owns the admission slot it was handed and
  releases it on every path.

State-ownership rules (DESIGN.md §14): the event loop owns the gateway's
own mutable state (the pending counter); the service's shared state is
owned by its internal locks and may be touched from any thread; per-query
state (the decision, the result) is owned by exactly one thread at a time
and handed over through the executor future.

Cancellation safety: the bridged call is wrapped in
:func:`asyncio.shield`.  A disconnecting client cancels the *await*, not
the search — an admitted query always runs to completion on its worker
thread, so the admission slot is always released by ``_execute_admitted``
's ``finally`` and the in-flight gauge cannot leak.  (Abandoning the
result is deliberate: it still warms the result cache.)

The gateway adds one load bound of its own, ``max_pending``: the number
of bridged calls allowed to be queued or running on the pool.  Admission
control bounds what the *service* accepts; ``max_pending`` bounds how
much work may even *wait* for a worker thread, so a stalled pool turns
into fast 503s instead of an unbounded queue of growing latencies.

This module imports only the stdlib and ``repro.service`` — no pydantic,
no HTTP — so ``repro.gateway`` stays import-light (the HTTP layer in
:mod:`repro.gateway.app` is what needs pydantic).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

from repro.core.query import UOTSQuery
from repro.core.results import SearchResult
from repro.errors import GatewayError, GatewaySaturatedError
from repro.resilience.budget import SearchBudget
from repro.service.service import QueryService

__all__ = ["AsyncQueryService"]

#: Executor label stamped on results served through the async bridge
#: (visible in ``SearchStats.executor`` and the per-path metrics).
GATEWAY_EXECUTOR_LABEL = "gateway-thread"


class AsyncQueryService:
    """An ``await``-able front-end over one :class:`QueryService`.

    Parameters
    ----------
    service:
        The synchronous service to serve.  Shared: the same instance may
        keep answering CLI/batch callers concurrently.
    max_workers:
        Worker threads for bridged searches (the HTTP serving
        parallelism).  Defaults to 8 — enough to saturate a typical
        multi-core box with CPU-bound searches while the GIL interleaves
        the pure-Python sections.
    max_pending:
        Bound on bridged calls queued-or-running; ``None`` derives
        ``4 * max_workers`` (a small queue smooths bursts without letting
        latency grow unboundedly).  ``0`` is rejected — a gateway that can
        never serve is a configuration error.
    """

    def __init__(
        self,
        service: QueryService,
        max_workers: int = 8,
        max_pending: int | None = None,
    ):
        if max_workers < 1:
            raise GatewayError(f"max_workers must be >= 1, got {max_workers}")
        if max_pending is None:
            max_pending = 4 * max_workers
        if max_pending < 1:
            raise GatewayError(f"max_pending must be >= 1, got {max_pending}")
        self._service = service
        self._max_pending = max_pending
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="uots-gateway"
        )
        # Mutated only from event-loop callbacks (submit and the future's
        # done-callback both run on the loop), so no lock is needed —
        # single-threaded ownership is the loop's whole point.
        self._pending = 0
        self._closed = False

    # ------------------------------------------------------------ properties
    @property
    def service(self) -> QueryService:
        """The underlying synchronous service."""
        return self._service

    @property
    def pending(self) -> int:
        """Bridged calls currently queued or running on the pool."""
        return self._pending

    @property
    def max_pending(self) -> int:
        """The gateway's bridged-call bound."""
        return self._max_pending

    @property
    def saturated(self) -> bool:
        """Whether a new bridged call would be turned away right now."""
        return self._pending >= self._max_pending

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (no further submissions)."""
        return self._closed

    def healthy(self) -> bool:
        """Liveness: the bridge can still accept work at all."""
        return not self._closed

    def ready(self) -> tuple[bool, str]:
        """Readiness and a reason slug for the ``/readyz`` body.

        Not ready when closed, when the service's circuit breaker is
        open (the backend is failing; sending traffic here only feeds
        the failure), or when the bridge is saturated.  A *half-open*
        breaker keeps readiness: it is actively probing for recovery and
        admission control already meters the probe volume.
        """
        if self._closed:
            return False, "closed"
        breaker = self._service.admission.breaker
        if breaker is not None and breaker.state == "open":
            return False, "breaker_open"
        if self.saturated:
            return False, "saturated"
        return True, "ok"

    # ------------------------------------------------------------- serving
    async def submit(
        self,
        query: UOTSQuery,
        budget: SearchBudget | None = None,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> SearchResult:
        """Answer one query; the async sibling of :meth:`QueryService.submit`.

        Semantics are identical (cache hits before admission, rejections
        as error-marked results, library errors contained) — the only
        differences are *where* the halves run (see the module docstring)
        and that a saturated bridge raises
        :class:`~repro.errors.GatewaySaturatedError` before any service
        state is touched.
        """
        if self._closed:
            raise GatewayError("gateway is closed")
        service = self._service
        started = time.perf_counter()
        key = service._cache_key(query, budget)
        if key is not None:
            hit = service._result_cache.get(key)
            if hit is not None:
                return service._serve_hit(query, hit, started, tenant, priority)
        if self.saturated:
            raise GatewaySaturatedError(self._pending, self._max_pending)
        decision = service._admit_decision(query, tenant, priority)
        if not decision.admitted:
            return service._reject(decision, started, query, tenant, priority)
        return await self._bridge(
            service._execute_admitted,
            query,
            budget,
            decision,
            key,
            GATEWAY_EXECUTOR_LABEL,
            tenant,
            priority,
        )

    async def submit_many(
        self,
        queries: Sequence[UOTSQuery],
        budget: SearchBudget | None = None,
        workers: int | None = None,
        tenant: str | None = None,
        priority: str | None = None,
    ) -> list[SearchResult]:
        """Bridge a whole batch through :meth:`QueryService.execute_many`.

        The batch rides as *one* bridged call so the fork-based fan-out
        (``workers > 1`` on a fork platform) stays available to HTTP
        batch endpoints — the worker thread drives the forked children
        exactly as a CLI batch caller would.
        """
        if self._closed:
            raise GatewayError("gateway is closed")
        if self.saturated:
            raise GatewaySaturatedError(self._pending, self._max_pending)
        return await self._bridge(
            self._service.execute_many,
            list(queries),
            budget,
            1 if workers is None else workers,
            2,  # max_task_retries: the service default
            tenant,
            priority,
        )

    async def explain(self, query: UOTSQuery) -> str:
        """Bridge :meth:`QueryService.explain` (plans, never executes)."""
        if self._closed:
            raise GatewayError("gateway is closed")
        if self.saturated:
            raise GatewaySaturatedError(self._pending, self._max_pending)
        return await self._bridge(self._service.explain, query)

    async def _bridge(self, fn, *args):
        """Run ``fn(*args)`` on the pool, shielded from caller cancellation.

        The pending counter is incremented here and decremented by the
        future's done-callback — both on the event loop — so the counter
        tracks queued *and* running calls, including ones whose awaiter
        has already been cancelled (the search still occupies a worker
        thread, so it must still count against ``max_pending``).
        """
        loop = asyncio.get_running_loop()
        self._pending += 1
        future = loop.run_in_executor(self._executor, fn, *args)
        future.add_done_callback(lambda _f: self._on_done())
        try:
            return await asyncio.shield(future)
        except asyncio.CancelledError:
            # Swallow nothing: the caller is cancelled, but the bridged
            # call runs to completion on its thread (admission slots are
            # released by _execute_admitted's finally, results still warm
            # the cache).  Suppress "exception never retrieved" noise.
            future.add_done_callback(lambda f: f.exception())
            raise

    def _on_done(self) -> None:
        self._pending -= 1

    # ------------------------------------------------------------ lifecycle
    async def close(self) -> None:
        """Drain the pool and refuse further submissions.

        Waits for in-flight bridged calls (they hold admission slots and
        must release them), then shuts the executor down.
        """
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        # shutdown(wait=True) blocks until every queued call finishes —
        # run it off-loop so the loop can keep completing their futures.
        await loop.run_in_executor(None, self._executor.shutdown)

    async def __aenter__(self) -> "AsyncQueryService":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
