"""An in-process ASGI test client: drive the app with no socket.

The e2e gateway tests need to call the exact app object the server would
run, through the exact ASGI messages a server would send — but opening
real sockets in unit tests buys flakiness (ports, firewalls, timeouts)
for no coverage.  :class:`ASGITestClient` plays the server side of the
ASGI conversation in-process: it builds the ``http`` scope, feeds the
body as one ``http.request`` message, and collects the response messages.

Stdlib-only.  The sync :meth:`request` wrapper runs each call on a fresh
event loop, which mirrors production more closely than it may look: the
gateway's bridged work lives on the :class:`AsyncQueryService`'s own
thread pool (not the loop), so state carried *between* requests —
caches, admission counters, breaker — is exactly the state a long-lived
server carries between requests.
"""

from __future__ import annotations

import asyncio
import json as _json

__all__ = ["ASGITestClient", "TestResponse"]


class TestResponse:
    """One collected HTTP response."""

    def __init__(self, status: int, headers: list[tuple[bytes, bytes]], body: bytes):
        self.status = status
        self.headers = {
            name.decode("latin-1").lower(): value.decode("latin-1")
            for name, value in headers
        }
        self.body = body

    @property
    def text(self) -> str:
        return self.body.decode()

    def json(self):
        return _json.loads(self.body)

    def __repr__(self) -> str:
        return f"TestResponse(status={self.status}, body={self.body[:80]!r})"


class ASGITestClient:
    """Call an ASGI app directly, one request per (fresh) event loop."""

    def __init__(self, app):
        self._app = app

    async def arequest(
        self,
        method: str,
        path: str,
        json=None,
        body: bytes | None = None,
        headers: list[tuple[bytes, bytes]] | None = None,
    ) -> TestResponse:
        if json is not None:
            body = _json.dumps(json).encode()
        body = body or b""
        request_headers = list(headers or [])
        if json is not None:
            request_headers.append((b"content-type", b"application/json"))
        request_headers.append(
            (b"content-length", str(len(body)).encode())
        )
        query_path, _, query_string = path.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": query_path,
            "raw_path": path.encode(),
            "query_string": query_string.encode(),
            "root_path": "",
            "headers": request_headers,
            "client": ("testclient", 0),
            "server": ("testserver", 80),
        }

        sent = False

        async def receive():
            nonlocal sent
            if sent:
                return {"type": "http.request", "body": b"", "more_body": False}
            sent = True
            return {"type": "http.request", "body": body, "more_body": False}

        status: list[int] = []
        response_headers: list[tuple[bytes, bytes]] = []
        chunks: list[bytes] = []

        async def send(message):
            if message["type"] == "http.response.start":
                status.append(message["status"])
                response_headers.extend(message.get("headers", []))
            elif message["type"] == "http.response.body":
                chunks.append(message.get("body", b""))

        await self._app(scope, receive, send)
        if not status:
            raise AssertionError("app sent no http.response.start")
        return TestResponse(status[0], response_headers, b"".join(chunks))

    def request(self, method: str, path: str, **kwargs) -> TestResponse:
        return asyncio.run(self.arequest(method, path, **kwargs))

    def get(self, path: str, **kwargs) -> TestResponse:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, **kwargs) -> TestResponse:
        return self.request("POST", path, **kwargs)
