"""The async HTTP serving gateway (DESIGN.md §14).

Layered so the import cost matches what a caller actually uses:

- ``repro.gateway`` (this module) and :mod:`repro.gateway.aservice` —
  stdlib + ``repro.service`` only.  Importing the package never pulls
  pydantic or a web framework, keeping the core import-light contract
  intact (see ``tests/test_import_light.py``);
- :mod:`repro.gateway.schemas` / :mod:`repro.gateway.app` — need
  pydantic (the wire contract); gate on :func:`require_http_deps`;
- :mod:`repro.gateway.server` — stdlib HTTP/1.1 server, uses uvicorn
  opportunistically when installed.

Typical embedding (what ``repro serve`` does)::

    service = QueryService(database, "collaborative", metrics=True, ...)
    gateway = AsyncQueryService(service, max_workers=8)
    app = create_app(gateway)          # needs pydantic
    await serve(app, host, port)       # stdlib server (or uvicorn)
"""

from __future__ import annotations

from repro.gateway.aservice import AsyncQueryService

__all__ = ["AsyncQueryService", "require_http_deps", "http_available"]


def http_available() -> bool:
    """Whether the HTTP layer's one dependency (pydantic) is importable."""
    try:
        import pydantic  # noqa: F401
    except ModuleNotFoundError:
        return False
    return True


def require_http_deps() -> None:
    """Raise a friendly error when the HTTP layer cannot be imported.

    The async bridge itself (:class:`AsyncQueryService`) has no optional
    dependencies — only the wire schemas do.
    """
    if not http_available():
        raise ModuleNotFoundError(
            "the gateway's HTTP layer needs pydantic "
            "(pip install pydantic); the AsyncQueryService bridge "
            "works without it"
        )
