"""A minimal asyncio HTTP/1.1 server for the gateway's ASGI app.

The deployment story has two rungs:

- **uvicorn installed** → :func:`serve` hands the app to uvicorn (the
  production-grade server: chunked bodies, websockets, h11 edge cases);
- **bare container** (this repo's baseline: no web framework, no server
  package) → :class:`HTTPServer` below, built on
  :func:`asyncio.start_server`, speaks enough HTTP/1.1 for the gateway's
  own contract — JSON request/response bodies with ``Content-Length``,
  keep-alive, graceful shutdown.  It is deliberately *not* a general web
  server: no chunked transfer-encoding (411 when asked), no TLS, no
  websockets, bounded header/body sizes.

Everything here is stdlib + the app callable, so ``repro serve`` works in
the hermetic test container; uvicorn is picked up opportunistically when
present (``--no-uvicorn`` forces the stdlib path for parity testing).
"""

from __future__ import annotations

import asyncio
import contextlib

__all__ = ["HTTPServer", "serve"]

#: Request-line + headers cap: past this the request is hostile, not big.
MAX_HEADER_BYTES = 64 * 1024
#: Body cap — the largest legitimate gateway request is a batch of a few
#: thousand queries, far below this.
MAX_BODY_BYTES = 16 * 1024 * 1024

_STATUS_PHRASES = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 411: "Length Required",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _phrase(status: int) -> str:
    return _STATUS_PHRASES.get(status, "Unknown")


class HTTPServer:
    """Serve one ASGI app over HTTP/1.1 on an asyncio stream server."""

    def __init__(self, app, host: str = "127.0.0.1", port: int = 8000):
        self._app = app
        self._host = host
        self._port = port
        self._server: asyncio.Server | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._port

    @property
    def host(self) -> str:
        return self._host

    async def start(self) -> None:
        """Bind and start accepting connections (returns immediately)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    async def stop(self) -> None:
        """Stop accepting and wait for the listener to close.

        In-flight request handlers finish on their own connection tasks;
        the gateway's ``close()`` (run by the caller after this) drains
        the worker pool behind them.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Block until cancelled (the signal-driven ``repro serve`` loop)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ---------------------------------------------------------- connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                writer.close()
                await writer.wait_closed()

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        request_line = await reader.readline()
        if not request_line:
            return False  # clean EOF between requests
        if len(request_line) > MAX_HEADER_BYTES:
            await self._plain_error(writer, 431)
            return False
        try:
            method, target, version = (
                request_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
            )
        except ValueError:
            await self._plain_error(writer, 400)
            return False

        headers: list[tuple[bytes, bytes]] = []
        total_header_bytes = len(request_line)
        while True:
            line = await reader.readline()
            total_header_bytes += len(line)
            if total_header_bytes > MAX_HEADER_BYTES:
                await self._plain_error(writer, 431)
                return False
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.rstrip(b"\r\n").partition(b":")
            headers.append((name.strip().lower(), value.strip()))

        header_map = dict(headers)
        if b"chunked" in header_map.get(b"transfer-encoding", b"").lower():
            await self._plain_error(writer, 411)
            return False
        try:
            content_length = int(header_map.get(b"content-length", b"0") or 0)
        except ValueError:
            await self._plain_error(writer, 400)
            return False
        if content_length > MAX_BODY_BYTES:
            await self._plain_error(writer, 413)
            return False
        body = (
            await reader.readexactly(content_length) if content_length else b""
        )

        path, _, query_string = target.partition("?")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": version.removeprefix("HTTP/"),
            "method": method.upper(),
            "scheme": "http",
            "path": path,
            "raw_path": target.encode("latin-1"),
            "query_string": query_string.encode("latin-1"),
            "root_path": "",
            "headers": headers,
            "client": writer.get_extra_info("peername"),
            "server": (self._host, self.port),
        }

        keep_alive = (
            header_map.get(b"connection", b"").lower() != b"close"
            and version != "HTTP/1.0"
        )
        received = False

        async def receive():
            nonlocal received
            if received:
                # One-shot body: a second read means the app awaits a
                # disconnect we never deliver mid-request — signal EOF.
                return {"type": "http.request", "body": b"", "more_body": False}
            received = True
            return {"type": "http.request", "body": body, "more_body": False}

        started = False

        async def send(message):
            nonlocal started
            if message["type"] == "http.response.start":
                started = True
                status = message["status"]
                lines = [f"HTTP/1.1 {status} {_phrase(status)}\r\n".encode()]
                for name, value in message.get("headers", []):
                    lines.append(name + b": " + value + b"\r\n")
                lines.append(
                    b"connection: keep-alive\r\n"
                    if keep_alive
                    else b"connection: close\r\n"
                )
                lines.append(b"\r\n")
                writer.write(b"".join(lines))
            elif message["type"] == "http.response.body":
                writer.write(message.get("body", b""))
                if not message.get("more_body", False):
                    await writer.drain()

        try:
            await self._app(scope, receive, send)
        except Exception:
            if not started:
                await self._plain_error(writer, 500)
            return False
        return keep_alive

    @staticmethod
    async def _plain_error(writer: asyncio.StreamWriter, status: int) -> None:
        body = f'{{"error":"{_phrase(status)}"}}'.encode()
        writer.write(
            f"HTTP/1.1 {status} {_phrase(status)}\r\n"
            f"content-type: application/json\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: close\r\n\r\n".encode() + body
        )
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await writer.drain()


def _uvicorn_available() -> bool:
    try:
        import uvicorn  # noqa: F401
    except ModuleNotFoundError:
        return False
    return True


async def serve(
    app,
    host: str = "127.0.0.1",
    port: int = 8000,
    use_uvicorn: bool | None = None,
    ready_callback=None,
    shutdown_event: asyncio.Event | None = None,
) -> None:
    """Serve ``app`` until ``shutdown_event`` is set (or forever).

    ``use_uvicorn=None`` auto-detects; the stdlib server is always the
    fallback.  ``ready_callback(host, port)`` fires once the socket is
    bound — the CLI prints the listening line from it, tests learn the
    ephemeral port.
    """
    if use_uvicorn is None:
        use_uvicorn = _uvicorn_available()
    if use_uvicorn:  # pragma: no cover - uvicorn absent in the test image
        import uvicorn

        config = uvicorn.Config(app, host=host, port=port, log_level="warning")
        server = uvicorn.Server(config)
        if ready_callback is not None:
            ready_callback(host, port)
        await server.serve()
        return

    server = HTTPServer(app, host=host, port=port)
    await server.start()
    if ready_callback is not None:
        ready_callback(server.host, server.port)
    if shutdown_event is None:
        await server.serve_forever()
        return
    try:
        await shutdown_event.wait()
    finally:
        await server.stop()
