"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.

Storage failures form their own subtree under :class:`StorageError`:
transient I/O faults are retried inside the storage layer (see
:mod:`repro.resilience.retry`) and only surface as ``StorageError`` once
retries are exhausted; detected page corruption always surfaces as
:class:`CorruptPageError` — never as silently wrong data.
"""

from __future__ import annotations

import warnings


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GraphError(ReproError):
    """Raised for malformed spatial networks (bad vertices, edges, weights)."""


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex id outside the graph."""

    def __init__(self, vertex: int, num_vertices: int):
        self.vertex = vertex
        self.num_vertices = num_vertices
        super().__init__(
            f"vertex {vertex} does not exist (graph has {num_vertices} vertices)"
        )


class DisconnectedError(GraphError):
    """Raised when a path is requested between disconnected vertices."""

    def __init__(self, source: int, target: int):
        self.source = source
        self.target = target
        super().__init__(f"no path between vertex {source} and vertex {target}")


class TrajectoryError(ReproError):
    """Raised for malformed trajectories (empty, unordered timestamps, ...)."""


class QueryError(ReproError):
    """Raised for invalid query specifications (bad lambda, empty locations...)."""


class TrajectoryIndexError(ReproError):
    """Raised for index inconsistencies (duplicate ids, unknown trajectory).

    Previously named ``IndexError_``; the old name is kept as a deprecated
    alias (it shadowed the ``IndexError`` builtin awkwardly).
    """


class DatasetError(ReproError):
    """Raised when dataset generation or loading fails."""


class StorageError(ReproError):
    """Raised when the disk storage layer fails permanently.

    Transient I/O faults are retried behind the scenes; this error means
    the failure persisted past the configured retry budget.
    """


class CorruptPageError(StorageError):
    """Raised when a page's CRC32 checksum does not match its contents.

    Corruption is permanent: retrying the read returns the same bytes, so
    this error is never retried and never degrades into wrong data.
    """

    def __init__(self, page_id: int, path: object, detail: str = ""):
        self.page_id = page_id
        self.path = path
        message = f"page {page_id} of {path} is corrupt (checksum mismatch)"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class MutationDispatchError(ReproError):
    """Raised when one or more mutation listeners failed during dispatch.

    The database dispatches every :class:`~repro.index.events.MutationEvent`
    to *all* registered listeners even when one raises — aborting
    mid-dispatch would leave later caches stale relative to the already
    mutated indexes.  The individual exceptions are collected and re-raised
    together through this error (``.causes``); the database and every
    listener that did not raise are fully consistent by the time it
    propagates.
    """

    def __init__(self, event: object, causes: list[BaseException]):
        self.event = event
        self.causes = causes
        details = "; ".join(f"{type(c).__name__}: {c}" for c in causes)
        super().__init__(
            f"{len(causes)} mutation listener(s) failed for {event!r}: {details}"
        )


class GatewayError(ReproError):
    """Raised for HTTP-gateway-level failures (:mod:`repro.gateway`)."""


class GatewaySaturatedError(GatewayError):
    """Raised when the gateway's bounded bridge queue is full.

    Distinct from an admission-policy rejection: admission control is the
    *service's* load decision (it sees the query), while the gateway cap
    bounds how many bridged calls may even wait for a worker thread.  The
    HTTP layer maps this to 503 (try elsewhere/later), admission sheds to
    429 (the service looked and said no).
    """

    def __init__(self, pending: int, limit: int):
        self.pending = pending
        self.limit = limit
        super().__init__(
            f"gateway bridge saturated: {pending} calls pending "
            f"(limit {limit})"
        )


class BudgetExceededError(ReproError):
    """Raised when a strict :class:`~repro.resilience.SearchBudget` trips.

    By default a tripped budget degrades gracefully (the search returns its
    best-so-far answer); this error is raised only for ``strict=True``
    budgets, where the caller prefers a failure to a partial answer.
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(f"search budget exceeded: {reason}")


def __getattr__(name: str):
    if name == "IndexError_":
        warnings.warn(
            "repro.errors.IndexError_ is deprecated; "
            "use repro.errors.TrajectoryIndexError instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return TrajectoryIndexError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
