"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class GraphError(ReproError):
    """Raised for malformed spatial networks (bad vertices, edges, weights)."""


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex id outside the graph."""

    def __init__(self, vertex: int, num_vertices: int):
        self.vertex = vertex
        self.num_vertices = num_vertices
        super().__init__(
            f"vertex {vertex} does not exist (graph has {num_vertices} vertices)"
        )


class DisconnectedError(GraphError):
    """Raised when a path is requested between disconnected vertices."""

    def __init__(self, source: int, target: int):
        self.source = source
        self.target = target
        super().__init__(f"no path between vertex {source} and vertex {target}")


class TrajectoryError(ReproError):
    """Raised for malformed trajectories (empty, unordered timestamps, ...)."""


class QueryError(ReproError):
    """Raised for invalid query specifications (bad lambda, empty locations...)."""


class IndexError_(ReproError):
    """Raised for index inconsistencies (duplicate ids, unknown trajectory)."""


class DatasetError(ReproError):
    """Raised when dataset generation or loading fails."""
