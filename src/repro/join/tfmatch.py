"""Temporal-first matching (TF-Matching) — the join baseline.

The straightforward way to compute the threshold join: index trajectories in
a hierarchical temporal grid, then examine trajectory pairs node pair by
node pair, pruning with temporal bounds before paying for an exact
similarity:

- *node-level*: every pair split across nodes ``(n1, n2)`` has a time gap of
  at least the gap between the node ranges, so
  ``SimST <= 2 * (lam + (1 - lam) * exp(-gap(n1, n2) / sigma_t))`` — if that
  is below ``theta``, the whole node pair is skipped;
- *pair-level*: the same bound with the trajectories' own time ranges;
- *half-exact*: one exact direction ``V(t2, t1)`` (which only needs ``t1``'s
  cached distance transform) bounds the pair by ``V(t2, t1) + 1``.

Survivors get the exact symmetric score from the shared
:class:`PairwiseScorer` ("TF-A": the distance-transform cache plays the role
of the paper family's pre-computed all-pair distances).  The tree's
bottom-up merge order only affects parallel execution, not the output, so
node pairs are enumerated flat here; each node pair is an independent work
unit for the parallel executor.

Its weakness is by design and is what the benchmarks show: temporal-first
pruning says nothing about space, so spatially distant but contemporaneous
trajectory pairs all reach the expensive exact evaluation.
"""

from __future__ import annotations

import math
import time

from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.index.temporal_index import TemporalGridIndex, TemporalNode
from repro.join.pairs import PairwiseScorer
from repro.join.tsjoin import JoinResult, _validate_theta
from repro.trajectory.model import Trajectory

__all__ = ["TemporalFirstJoin"]

_EPS = 1e-9


class TemporalFirstJoin:
    """The temporal-first baseline join (self and non-self)."""

    def __init__(
        self,
        database: TrajectoryDatabase,
        other: TrajectoryDatabase | None = None,
        lam: float = 0.5,
        sigma_t: float = 1800.0,
        num_leaves: int = 24,
    ):
        if other is not None and other.graph is not database.graph:
            raise QueryError("both join sides must share the same spatial network")
        if not (0.0 <= lam <= 1.0):
            raise QueryError(f"lam must be in [0, 1], got {lam}")
        self._database = database
        self._other = other
        self._lam = lam
        self._sigma_t = sigma_t
        self._num_leaves = num_leaves

    # ------------------------------------------------------------- helpers
    def _build_index(self, database: TrajectoryDatabase) -> TemporalGridIndex:
        index = TemporalGridIndex(self._num_leaves)
        for trajectory in database.trajectories:
            index.insert(trajectory)
        return index

    def _pair_upper(self, gap: float) -> float:
        """``SimST`` upper bound from a temporal gap alone (spatial <= 1)."""
        return 2.0 * (self._lam + (1.0 - self._lam) * math.exp(-gap / self._sigma_t))

    @staticmethod
    def _range_gap(t1: Trajectory, t2: Trajectory) -> float:
        """Minimal time distance between the two trajectories' time ranges."""
        lo1, hi1 = t1.time_range
        lo2, hi2 = t2.time_range
        if hi1 < lo2:
            return lo2 - hi1
        if hi2 < lo1:
            return lo1 - hi2
        return 0.0

    def _occupied_nodes(self, index: TemporalGridIndex) -> list[TemporalNode]:
        nodes = []
        for level in range(index.height):
            for node in index.level(level):
                if node.trajectory_ids:
                    nodes.append(node)
        return nodes

    # --------------------------------------------------------------- joins
    def self_join(self, theta: float) -> JoinResult:
        """All pairs within ``P`` with ``SimST >= theta``."""
        _validate_theta(theta)
        started = time.perf_counter()
        result = JoinResult()
        scorer = PairwiseScorer(
            self._database, lam=self._lam, sigma_t=self._sigma_t
        )
        index = self._build_index(self._database)
        nodes = self._occupied_nodes(index)
        for a, node1 in enumerate(nodes):
            for node2 in nodes[a:]:
                self._process_node_pair(
                    node1, node2, theta, scorer, result, same_side=True
                )
        result.stats.expanded_vertices = (
            scorer.transforms_built * self._database.graph.num_vertices
        )
        result.pairs.sort()
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result

    def join(self, theta: float) -> JoinResult:
        """All pairs across ``P x Q`` with ``SimST >= theta``."""
        _validate_theta(theta)
        if self._other is None:
            raise QueryError("non-self join requires an 'other' database")
        started = time.perf_counter()
        result = JoinResult()
        scorer = PairwiseScorer(
            self._database, lam=self._lam, sigma_t=self._sigma_t, other=self._other
        )
        index_p = self._build_index(self._database)
        index_q = self._build_index(self._other)
        for node1 in self._occupied_nodes(index_p):
            for node2 in self._occupied_nodes(index_q):
                self._process_node_pair(
                    node1, node2, theta, scorer, result, same_side=False
                )
        result.stats.expanded_vertices = (
            scorer.transforms_built * self._database.graph.num_vertices
        )
        result.pairs.sort()
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result

    # ---------------------------------------------------------- inner loop
    def _process_node_pair(
        self,
        node1: TemporalNode,
        node2: TemporalNode,
        theta: float,
        scorer: PairwiseScorer,
        result: JoinResult,
        same_side: bool,
    ) -> None:
        node_gap = TemporalGridIndex.min_distance(node1, node2)
        size = len(node1.trajectory_ids) * len(node2.trajectory_ids)
        if self._pair_upper(node_gap) < theta - _EPS:
            result.stats.pruned_trajectories += size
            return
        ids1 = sorted(node1.trajectory_ids)
        ids2 = sorted(node2.trajectory_ids)
        database = self._database
        other = self._other if not same_side else self._database
        for id1 in ids1:
            t1 = database.get(id1)
            for id2 in ids2:
                if same_side and (
                    id2 <= id1 if node1 is node2 else id2 == id1
                ):
                    continue
                result.stats.visited_trajectories += 1
                t2 = other.get(id2)
                if self._pair_upper(self._range_gap(t1, t2)) < theta - _EPS:
                    result.stats.pruned_trajectories += 1
                    continue
                # Half-exact bound: one direction plus the maximal other.
                v21 = scorer.directional(t2, id1, t2_from_other=False)
                if v21 + 1.0 < theta - _EPS:
                    result.stats.pruned_trajectories += 1
                    continue
                result.candidate_pairs += 1
                result.stats.similarity_evaluations += 1
                v12 = scorer.directional(t1, id2, t2_from_other=not same_side)
                score = v12 + v21
                if score >= theta - _EPS:
                    pair = (min(id1, id2), max(id1, id2)) if same_side else (id1, id2)
                    result.pairs.append((pair[0], pair[1], score))
