"""Exact pairwise trajectory similarity.

The join's symmetric score is

``SimST(t1, t2) = V(t1, t2) + V(t2, t1)``          (range [0, 2])

with the directional ``V`` of :mod:`repro.matching.engine`.  This module
computes it exactly, amortising the expensive spatial part with cached
*distance transforms*: one multi-source Dijkstra per trajectory gives the
network distance from every vertex to that trajectory, after which any
pair's spatial terms are array lookups.  (This is the role the pre-computed
all-pair distances play for the accelerated temporal-first baseline.)
"""

from __future__ import annotations

import heapq
import math

from repro.index.database import TrajectoryDatabase
from repro.matching.temporal import min_time_gap
from repro.trajectory.model import Trajectory

__all__ = ["PairwiseScorer", "distance_transform"]

_INF = float("inf")


def distance_transform(database: TrajectoryDatabase, trajectory: Trajectory) -> dict[int, float]:
    """Network distance from every (reachable) vertex to the trajectory.

    A multi-source Dijkstra seeded with all of the trajectory's vertices at
    distance zero; the settled distance of any vertex ``v`` is then
    ``min over trajectory vertices p of sd(v, p) = d(v, trajectory)``.
    """
    graph = database.graph
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = []
    for vertex in trajectory.vertex_set:
        dist[vertex] = 0.0
        heap.append((0.0, vertex))
    heapq.heapify(heap)
    settled: dict[int, float] = {}
    adjacency = graph.adjacency
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled[u] = d
        for v, w in adjacency[u]:
            nd = d + w
            if v not in settled and nd < dist.get(v, _INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return settled


class PairwiseScorer:
    """Exact ``SimST`` with per-trajectory caches.

    Caches a distance transform and a sorted timestamp list per trajectory;
    both are built lazily on first use, so only trajectories that survive
    cheaper pruning pay the Dijkstra.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        lam: float = 0.5,
        sigma_t: float = 1800.0,
        other: TrajectoryDatabase | None = None,
    ):
        """``other`` supplies the second side of a non-self join; it must
        share the same spatial network."""
        self._database = database
        self._other = other or database
        self._lam = lam
        self._sigma = database.sigma
        self._sigma_t = sigma_t
        self._transforms: dict[tuple[bool, int], dict[int, float]] = {}
        self._stamps: dict[tuple[bool, int], list[float]] = {}
        self.transforms_built = 0  # exposed for benchmark accounting

    def _lookup(self, from_other: bool, trajectory_id: int) -> Trajectory:
        side = self._other if from_other else self._database
        return side.get(trajectory_id)

    def _transform(self, from_other: bool, trajectory_id: int) -> dict[int, float]:
        key = (from_other, trajectory_id)
        cached = self._transforms.get(key)
        if cached is None:
            cached = distance_transform(
                self._database, self._lookup(from_other, trajectory_id)
            )
            self._transforms[key] = cached
            self.transforms_built += 1
        return cached

    def _timestamps(self, from_other: bool, trajectory_id: int) -> list[float]:
        key = (from_other, trajectory_id)
        cached = self._stamps.get(key)
        if cached is None:
            cached = sorted(self._lookup(from_other, trajectory_id).timestamps())
            self._stamps[key] = cached
        return cached

    # -------------------------------------------------------------- scoring
    def directional(
        self, t1: Trajectory, t2_id: int, t2_from_other: bool = False
    ) -> float:
        """Exact ``V(t1, t2)``: averages over ``t1``'s sample points."""
        transform = self._transform(t2_from_other, t2_id)
        stamps = self._timestamps(t2_from_other, t2_id)
        spatial = 0.0
        temporal = 0.0
        for point in t1.points:
            d = transform.get(point.vertex)
            if d is not None:
                spatial += math.exp(-d / self._sigma)
            gap = min_time_gap(point.timestamp, stamps)
            if gap != _INF:
                temporal += math.exp(-gap / self._sigma_t)
        m = len(t1)
        return (self._lam * spatial + (1.0 - self._lam) * temporal) / m

    def similarity(self, id1: int, id2: int, id2_from_other: bool = False) -> float:
        """Exact symmetric ``SimST(t1, t2) = V(t1, t2) + V(t2, t1)``."""
        t1 = self._database.get(id1)
        t2 = self._lookup(id2_from_other, id2)
        return self.directional(t1, id2, id2_from_other) + self.directional(
            t2, id1, False
        )
