"""Trajectory similarity join extension: two-phase join + temporal-first baseline."""

from repro.join.pairs import PairwiseScorer, distance_transform
from repro.join.tfmatch import TemporalFirstJoin
from repro.join.tsjoin import BruteForceJoin, JoinResult, TopKJoin, TwoPhaseJoin

__all__ = [
    "BruteForceJoin",
    "JoinResult",
    "PairwiseScorer",
    "TemporalFirstJoin",
    "TopKJoin",
    "TwoPhaseJoin",
    "distance_transform",
]
