"""Two-phase trajectory similarity join (threshold join, self and non-self).

The extension realising the group's follow-up direction: given trajectory
sets ``P`` and ``Q`` (``P`` alone for a self join) and a threshold
``theta``, return every pair with ``SimST = V(t1, t2) + V(t2, t1) >= theta``.

Phase 1 (trajectory search): for each trajectory, a directional
spatio-temporal expansion search (:class:`DirectionalSearchEngine`) collects
its candidate set ``C(t) = {t' : V(t, t') >= theta - 1}`` — sufficient
because each directional ``V`` is at most 1, so a qualifying pair must reach
``theta - 1`` in *both* directions.  The per-trajectory searches are
independent, which is what the parallel executor exploits.

Phase 2 (merging): a pair qualifies iff each trajectory appears in the
other's candidate set and the two exact directional values sum to at least
``theta``.  Merging is a dictionary intersection — constant work per
candidate, independent of how many workers ran phase 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.results import SearchStats
from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.join.pairs import PairwiseScorer
from repro.matching.engine import DirectionalSearchEngine

__all__ = ["JoinResult", "TwoPhaseJoin", "TopKJoin", "BruteForceJoin"]

_EPS = 1e-9


@dataclass
class JoinResult:
    """Qualifying pairs with the work counters of both phases.

    For a self join, pairs are reported once with ``id1 < id2``; for a
    non-self join ``id1`` is from ``P`` and ``id2`` from ``Q``.
    """

    pairs: list[tuple[int, int, float]] = field(default_factory=list)
    stats: SearchStats = field(default_factory=SearchStats)
    candidate_pairs: int = 0  # pairs surviving phase 1 (the paper's |C|)

    def pair_set(self) -> set[tuple[int, int]]:
        """The qualifying id pairs without scores."""
        return {(a, b) for a, b, __ in self.pairs}

    def __len__(self) -> int:
        return len(self.pairs)


def _validate_theta(theta: float) -> None:
    if not (0.0 < theta <= 2.0):
        raise QueryError(f"theta must be in (0, 2], got {theta}")


class TwoPhaseJoin:
    """The two-phase divide-and-conquer threshold join."""

    def __init__(
        self,
        database: TrajectoryDatabase,
        other: TrajectoryDatabase | None = None,
        lam: float = 0.5,
        sigma_t: float = 1800.0,
        batch_size: int = 16,
    ):
        """``other`` enables the non-self join ``P x Q``; both databases must
        share the same spatial network."""
        if other is not None and other.graph is not database.graph:
            raise QueryError("both join sides must share the same spatial network")
        if not (0.0 <= lam <= 1.0):
            raise QueryError(f"lam must be in [0, 1], got {lam}")
        self._database = database
        self._other = other
        self._lam = lam
        self._sigma_t = sigma_t
        self._batch_size = batch_size

    # ------------------------------------------------------------- phase 1
    def candidate_sets(
        self,
        source: TrajectoryDatabase,
        target_engine: DirectionalSearchEngine,
        theta: float,
        stats: SearchStats,
        exclude_self: bool,
    ) -> dict[int, dict[int, float]]:
        """One directional threshold search per trajectory of ``source``."""
        limit = theta - 1.0
        sets: dict[int, dict[int, float]] = {}
        for trajectory in source.trajectories:
            candidates = target_engine.threshold_search(
                [(p.vertex, p.timestamp) for p in trajectory.points],
                self._lam,
                limit,
                exclude_id=trajectory.id if exclude_self else None,
            )
            sets[trajectory.id] = candidates.values
            stats.merge(candidates.stats)
        return sets

    # -------------------------------------------------------------- joins
    def self_join(self, theta: float) -> JoinResult:
        """All pairs within ``P`` with ``SimST >= theta``."""
        _validate_theta(theta)
        started = time.perf_counter()
        result = JoinResult()
        engine = DirectionalSearchEngine(
            self._database, sigma_t=self._sigma_t, batch_size=self._batch_size
        )
        sets = self.candidate_sets(
            self._database, engine, theta, result.stats, exclude_self=True
        )
        for id1, candidates in sets.items():
            for id2, v12 in candidates.items():
                if id2 <= id1:
                    continue  # each unordered pair once
                v21 = sets.get(id2, {}).get(id1)
                if v21 is None:
                    continue
                result.candidate_pairs += 1  # mutual candidates get scored
                score = v12 + v21
                if score >= theta - _EPS:
                    result.pairs.append((id1, id2, score))
        result.pairs.sort()
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result

    def join(self, theta: float) -> JoinResult:
        """All pairs across ``P x Q`` with ``SimST >= theta``."""
        _validate_theta(theta)
        if self._other is None:
            raise QueryError("non-self join requires an 'other' database")
        started = time.perf_counter()
        result = JoinResult()
        engine_q = DirectionalSearchEngine(
            self._other, sigma_t=self._sigma_t, batch_size=self._batch_size
        )
        engine_p = DirectionalSearchEngine(
            self._database, sigma_t=self._sigma_t, batch_size=self._batch_size
        )
        from_p = self.candidate_sets(
            self._database, engine_q, theta, result.stats, exclude_self=False
        )
        from_q = self.candidate_sets(
            self._other, engine_p, theta, result.stats, exclude_self=False
        )
        for id1, candidates in from_p.items():
            for id2, v12 in candidates.items():
                v21 = from_q.get(id2, {}).get(id1)
                if v21 is None:
                    continue
                result.candidate_pairs += 1  # mutual candidates get scored
                score = v12 + v21
                if score >= theta - _EPS:
                    result.pairs.append((id1, id2, score))
        result.pairs.sort()
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result


class TopKJoin:
    """Top-k similarity join: the ``k`` most similar pairs, no threshold.

    The paper family's stated future-work direction.  Strategy: process
    trajectories in id order, querying each one's candidate partners with an
    *adaptive* limit derived from the current k-th best pair score.  The
    limit is valid because every candidate pair ``(a, b)`` with final score
    ``s*`` in the true top-k satisfies, at the moment its later endpoint
    ``b`` is processed, ``current_kth - 1 <= s* - 1 <= V(b, a)`` (each
    directional ``V`` is at most 1), so ``a`` must appear in ``b``'s
    candidate set.  While the pair heap is still filling, a permissive
    top-k' partner search seeds it so the limit rises quickly.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        lam: float = 0.5,
        sigma_t: float = 1800.0,
        batch_size: int = 32,
    ):
        if not (0.0 <= lam <= 1.0):
            raise QueryError(f"lam must be in [0, 1], got {lam}")
        self._database = database
        self._lam = lam
        self._sigma_t = sigma_t
        self._batch_size = batch_size

    def top_k(self, k: int) -> JoinResult:
        """The ``k`` highest-scoring unordered pairs (self join)."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        import heapq

        started = time.perf_counter()
        database = self._database
        engine = DirectionalSearchEngine(
            database, sigma_t=self._sigma_t, batch_size=self._batch_size
        )
        result = JoinResult()
        # Min-heap of (score, -id1, -id2): the worst kept pair on top.
        heap: list[tuple[float, int, int]] = []
        scored: set[tuple[int, int]] = set()

        def offer(id1: int, id2: int, score: float) -> None:
            key = (min(id1, id2), max(id1, id2))
            if key in scored:
                return
            scored.add(key)
            result.candidate_pairs += 1
            entry = (score, -key[0], -key[1])
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)

        def process(trajectory, permissive: bool) -> None:
            points = [(p.vertex, p.timestamp) for p in trajectory.points]
            if permissive:
                seeded = engine.topk_search(
                    points, self._lam, k + 1, exclude_id=trajectory.id
                )
                result.stats.merge(seeded.stats)
                partner_values = {
                    item.trajectory_id: item.score for item in seeded.items
                }
            else:
                limit = heap[0][0] - 1.0 if len(heap) >= k else -_EPS
                candidates = engine.threshold_search(
                    points, self._lam, limit, exclude_id=trajectory.id
                )
                result.stats.merge(candidates.stats)
                partner_values = candidates.values
            for partner_id, forward in partner_values.items():
                if (min(trajectory.id, partner_id), max(trajectory.id, partner_id)) in scored:
                    continue
                partner = database.get(partner_id)
                backward = engine.exact_value(
                    [(p.vertex, p.timestamp) for p in partner.points],
                    self._lam,
                    trajectory.id,
                )
                offer(trajectory.id, partner_id, forward + backward)

        ordered = sorted(database.trajectories, key=lambda t: t.id)
        underfull: list = []
        for trajectory in ordered:
            if len(heap) < k:
                # Seed the heap fast; completeness for pairs whose later
                # endpoint lands here is restored by the repair pass below.
                process(trajectory, permissive=True)
                underfull.append(trajectory)
            else:
                process(trajectory, permissive=False)
        # Repair pass: trajectories handled with the permissive seeding may
        # have missed partners outside their top-k' by V; re-run them with
        # the (now tight, or fully exhaustive) adaptive limit.
        for trajectory in underfull:
            process(trajectory, permissive=False)

        result.pairs = sorted(
            ((-a, -b, score) for score, a, b in heap),
            key=lambda row: (-row[2], row[0], row[1]),
        )
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result


class BruteForceJoin:
    """Exact exhaustive pair scoring — the oracle for the join algorithms."""

    def __init__(
        self,
        database: TrajectoryDatabase,
        other: TrajectoryDatabase | None = None,
        lam: float = 0.5,
        sigma_t: float = 1800.0,
    ):
        self._database = database
        self._other = other
        self._scorer = PairwiseScorer(database, lam=lam, sigma_t=sigma_t, other=other)

    def self_join(self, theta: float) -> JoinResult:
        """Score all unordered pairs within ``P``."""
        _validate_theta(theta)
        started = time.perf_counter()
        result = JoinResult()
        ids = sorted(self._database.trajectories.ids())
        for i, id1 in enumerate(ids):
            for id2 in ids[i + 1 :]:
                result.stats.similarity_evaluations += 1
                score = self._scorer.similarity(id1, id2)
                if score >= theta - _EPS:
                    result.pairs.append((id1, id2, score))
        result.candidate_pairs = result.stats.similarity_evaluations
        result.stats.visited_trajectories = len(ids)
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result

    def join(self, theta: float) -> JoinResult:
        """Score all pairs across ``P x Q``."""
        _validate_theta(theta)
        if self._other is None:
            raise QueryError("non-self join requires an 'other' database")
        started = time.perf_counter()
        result = JoinResult()
        for id1 in sorted(self._database.trajectories.ids()):
            for id2 in sorted(self._other.trajectories.ids()):
                result.stats.similarity_evaluations += 1
                score = self._scorer.similarity(id1, id2, id2_from_other=True)
                if score >= theta - _EPS:
                    result.pairs.append((id1, id2, score))
        result.candidate_pairs = result.stats.similarity_evaluations
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result
