"""Personalized trajectory matching (PTM) — spatio-temporal extension.

The paper's future-work direction (realised by the same group in the PTM
paper, VLDB J. 2014): the query is itself a *trajectory* — e.g. the
commuter's intended trip with timestamps — and the answer is the data
trajectory (or top-k) most similar to it in the spatial and temporal
domains:

``V(q, tau) = lam * SimS(q, tau) + (1 - lam) * SimT_time(q, tau)``

with both components averaged over the query's sample points, exactly the
directional similarity of :mod:`repro.matching.engine`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.core.results import ScoredTrajectory, SearchResult, SearchStats, TopK
from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.matching.engine import DirectionalSearchEngine
from repro.matching.temporal import TimestampIndex, min_time_gap
from repro.network.dijkstra import single_source_distances
from repro.trajectory.model import Trajectory

__all__ = ["PTMQuery", "PTMMatcher", "BruteForcePTMMatcher"]

_INF = float("inf")


@dataclass(frozen=True)
class PTMQuery:
    """A personalized trajectory matching query.

    ``trajectory`` is the traveler's intended trip (vertices + timestamps);
    ``lam`` weighs the spatial against the temporal domain; ``k`` is the
    number of matches to return.
    """

    trajectory: Trajectory
    lam: float = 0.5
    k: int = 1

    def __post_init__(self):
        if not (0.0 <= self.lam <= 1.0):
            raise QueryError(f"lam must be in [0, 1], got {self.lam}")
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")

    @property
    def points(self) -> list[tuple[int, float]]:
        """The query's ``(vertex, timestamp)`` pairs."""
        return [(p.vertex, p.timestamp) for p in self.trajectory.points]


class PTMMatcher:
    """Expansion-based top-k trajectory matching."""

    def __init__(
        self,
        database: TrajectoryDatabase,
        sigma_t: float = 1800.0,
        engine: DirectionalSearchEngine | None = None,
    ):
        self._database = database
        self._engine = engine or DirectionalSearchEngine(database, sigma_t=sigma_t)

    @property
    def engine(self) -> DirectionalSearchEngine:
        """The underlying directional search engine (shared, reusable)."""
        return self._engine

    def match(self, query: PTMQuery, exclude_self: bool = True) -> SearchResult:
        """Top-k trajectories by spatio-temporal similarity to the query.

        ``exclude_self`` skips a stored trajectory with the query's id (the
        natural semantics when matching a trajectory already in the
        database against the rest).
        """
        exclude = query.trajectory.id if exclude_self else None
        return self._engine.topk_search(
            query.points, query.lam, query.k, exclude_id=exclude
        )


class BruteForcePTMMatcher:
    """Exact exhaustive matching — the oracle for :class:`PTMMatcher`."""

    def __init__(self, database: TrajectoryDatabase, sigma_t: float = 1800.0):
        self._database = database
        self._sigma_t = sigma_t
        self._timestamp_index = TimestampIndex.build(database.trajectories)

    def match(self, query: PTMQuery, exclude_self: bool = True) -> SearchResult:
        """Score every trajectory exactly; return the top-k."""
        started = time.perf_counter()
        database = self._database
        points = query.points
        m = len(points)
        sigma = database.sigma
        sigma_t = self._sigma_t

        distance_tables = [
            single_source_distances(database.graph, vertex) for vertex, __ in points
        ]
        topk = TopK(query.k)
        count = 0
        for trajectory in database.trajectories:
            if exclude_self and trajectory.id == query.trajectory.id:
                continue
            count += 1
            spatial = 0.0
            for table in distance_tables:
                best = _INF
                for vertex in trajectory.vertex_set:
                    d = table.get(vertex)
                    if d is not None and d < best:
                        best = d
                if best != _INF:
                    spatial += math.exp(-best / sigma)
            temporal = 0.0
            stamps = self._timestamp_index.trajectory_timestamps(trajectory.id)
            for __, timestamp in points:
                gap = min_time_gap(timestamp, stamps)
                if gap != _INF:
                    temporal += math.exp(-gap / sigma_t)
            value = (query.lam * spatial + (1.0 - query.lam) * temporal) / m
            topk.offer(
                ScoredTrajectory(trajectory.id, value, spatial / m, temporal / m)
            )
        stats = SearchStats(
            visited_trajectories=count,
            expanded_vertices=m * database.graph.num_vertices,
            similarity_evaluations=count,
            elapsed_seconds=time.perf_counter() - started,
        )
        return SearchResult(items=topk.ranked(), stats=stats)
