"""Directional spatio-temporal trajectory search.

Given a *query point sequence* (vertex, timestamp) pairs — a trajectory, in
the matching and join extensions — this engine computes, for data
trajectories ``tau``,

``V(q, tau) = lam   * (1/|q|) * sum_i exp(-d(q_i.p, tau) / sigma)
            + (1-lam) * (1/|q|) * sum_i exp(-d(q_i.t, tau) / sigma_t)``

the one-directional similarity the paper family builds both personalized
trajectory matching (top-k over ``V``) and the trajectory similarity join
(symmetric score ``V(t1, t2) + V(t2, t1)``, thresholded) upon.

The search is *filter-and-refine*:

- **filter** — each query point contributes a spatial incremental network
  expansion and a temporal expanding window; the generalized
  :class:`~repro.core.bounds.BoundTracker` maintains score upper bounds for
  partly scanned trajectories and a radii-based bound for unseen ones.
  Expansion only has to run until the *unseen* bound dies — no trajectory
  needs to be fully scanned by every source.
- **refine** — a surviving candidate's exact ``V`` is computed directly:
  one multi-source Dijkstra from the candidate's own vertices (its
  *distance transform*, cached across searches, so the join pays it at most
  once per trajectory) yields all spatial terms; binary search over its
  sorted timestamps yields the temporal terms.

Threshold mode (the join's phase 1) refines every candidate whose bound
reaches the limit; top-k mode (matching) interleaves expansion with
refinement of the loosest candidate, the threshold-algorithm pattern.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.core.bounds import BoundTracker, SourceRadiiWeights
from repro.core.instrument import annotate_search_span, execute_span
from repro.core.plan import QueryPlan
from repro.core.results import ScoredTrajectory, SearchResult, SearchStats, TopK
from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.matching.temporal import TemporalExpansion, TimestampIndex, min_time_gap
from repro.network.expansion import IncrementalExpansion

__all__ = ["DirectionalSearchEngine", "CandidateSet"]

_INF = float("inf")
_EPS = 1e-9


class _SpatialSource:
    """One query point's network expansion, emitting weight contributions."""

    __slots__ = ("index", "alpha", "sigma", "_expansion", "_vertex_index")

    def __init__(self, index, vertex, database, alpha, sigma):
        self.index = index
        self.alpha = alpha
        self.sigma = sigma
        self._expansion = IncrementalExpansion(database.graph, vertex)
        self._vertex_index = database.vertex_index

    @property
    def exhausted(self) -> bool:
        return self._expansion.exhausted

    @property
    def radius_weight(self) -> float:
        # The network expansion's radius stays finite at exhaustion; the
        # exhausted flag is what zeroes the frontier contribution.
        if self._expansion.exhausted:
            return 0.0
        return self.alpha * math.exp(-self._expansion.radius / self.sigma)

    def step(self) -> list[tuple[int, float]] | None:
        """Scan one vertex; returns ``(trajectory_id, contribution)`` hits."""
        item = self._expansion.expand()
        if item is None:
            return None
        vertex, distance = item
        weight = self.alpha * math.exp(-distance / self.sigma)
        return [(tid, weight) for tid in self._vertex_index.trajectories_at(vertex)]


class _TemporalSource:
    """One query timestamp's expanding window, emitting weight contributions."""

    __slots__ = ("index", "alpha", "sigma", "_expansion")

    def __init__(self, index, timestamp, timestamp_index, alpha, sigma):
        self.index = index
        self.alpha = alpha
        self.sigma = sigma
        self._expansion = TemporalExpansion(timestamp_index, timestamp)

    @property
    def exhausted(self) -> bool:
        return self._expansion.exhausted

    @property
    def radius_weight(self) -> float:
        r = self._expansion.radius
        return 0.0 if r == _INF else self.alpha * math.exp(-r / self.sigma)

    def step(self) -> list[tuple[int, float]] | None:
        """Scan one sample point; returns a single-hit list."""
        item = self._expansion.expand()
        if item is None:
            return None
        trajectory_id, gap = item
        return [(trajectory_id, self.alpha * math.exp(-gap / self.sigma))]


@dataclass
class CandidateSet:
    """Result of a threshold-mode directional search.

    ``values`` maps trajectory id -> exact ``V(q, tau)`` for every candidate
    whose value reaches the admission limit.
    """

    values: dict[int, float] = field(default_factory=dict)
    stats: SearchStats = field(default_factory=SearchStats)

    def __contains__(self, trajectory_id: int) -> bool:
        return trajectory_id in self.values

    def __len__(self) -> int:
        return len(self.values)


class DirectionalSearchEngine:
    """Spatio-temporal filter-and-refine search over a trajectory database.

    Conforms to the :class:`~repro.core.plan.Searcher` protocol over
    :class:`~repro.matching.ptm.PTMQuery` queries (``plan`` / ``execute`` /
    ``search``); the lower-level ``threshold_search`` / ``topk_search``
    entry points remain for the join and the matcher.
    """

    #: Registry-facing algorithm name reported in query plans.
    plan_name = "directional"

    def __init__(
        self,
        database: TrajectoryDatabase,
        timestamp_index: TimestampIndex | None = None,
        sigma_t: float = 1800.0,
        batch_size: int = 32,
        max_cached_transforms: int = 4096,
    ):
        """``sigma_t`` is the temporal decay scale in seconds (30 minutes by
        default: trips half an hour apart still count as somewhat similar,
        trips half a day apart do not).  ``max_cached_transforms`` caps the
        distance-transform cache (FIFO eviction)."""
        if sigma_t <= 0:
            raise QueryError(f"sigma_t must be positive, got {sigma_t}")
        if batch_size < 1:
            raise QueryError(f"batch_size must be >= 1, got {batch_size}")
        if max_cached_transforms < 1:
            raise QueryError("max_cached_transforms must be >= 1")
        self._database = database
        self._timestamp_index = timestamp_index or TimestampIndex.build(
            database.trajectories
        )
        self._sigma_t = sigma_t
        self._batch_size = batch_size
        self._transforms: dict[int, dict[int, float]] = {}
        self._max_transforms = max_cached_transforms
        self.transforms_built = 0  # exposed for benchmark accounting

    @property
    def timestamp_index(self) -> TimestampIndex:
        """The shared sorted-timestamp index (built once per database)."""
        return self._timestamp_index

    # ---------------------------------------------------------- refinement
    def _transform(self, trajectory_id: int) -> dict[int, float]:
        """The candidate's distance transform (cached, FIFO-evicted)."""
        cached = self._transforms.get(trajectory_id)
        if cached is not None:
            return cached
        from repro.join.pairs import distance_transform

        cached = distance_transform(
            self._database, self._database.get(trajectory_id)
        )
        if len(self._transforms) >= self._max_transforms:
            self._transforms.pop(next(iter(self._transforms)))
        self._transforms[trajectory_id] = cached
        self.transforms_built += 1
        return cached

    def exact_value(
        self, points: list[tuple[int, float]], lam: float, trajectory_id: int
    ) -> float:
        """Exact ``V(q, tau)`` for one candidate (the refinement step)."""
        transform = self._transform(trajectory_id)
        stamps = self._timestamp_index.trajectory_timestamps(trajectory_id)
        sigma = self._database.sigma
        sigma_t = self._sigma_t
        spatial = 0.0
        temporal = 0.0
        for vertex, timestamp in points:
            d = transform.get(vertex)
            if d is not None:
                spatial += math.exp(-d / sigma)
            gap = min_time_gap(timestamp, stamps)
            if gap != _INF:
                temporal += math.exp(-gap / sigma_t)
        return (lam * spatial + (1.0 - lam) * temporal) / len(points)

    # ----------------------------------------------------- Searcher protocol
    def plan(self, query) -> QueryPlan:
        """Resolve a :class:`~repro.matching.ptm.PTMQuery`'s decisions.

        Each query point contributes one spatial expansion *and* one
        temporal expanding-window source; domains with a zero weight
        (``lam`` at either extreme) are pruned before any expansion.
        """
        points = query.points
        if not points:
            raise QueryError("a directional search needs at least one query point")
        if not (0.0 <= query.lam <= 1.0):
            raise QueryError(f"lam must be in [0, 1], got {query.lam}")
        database = self._database
        notes = ["one temporal expanding-window source per query point"]
        if query.lam == 0.0:
            notes.append("lam=0: spatial domain pruned before expansion")
        elif query.lam == 1.0:
            notes.append("lam=1: temporal domain pruned before expansion")
        num_samples = len(self._timestamp_index)
        return QueryPlan(
            algorithm=self.plan_name,
            query=query,
            scheduler="round-robin",
            batch_size=self._batch_size,
            use_text_in_bounds=False,
            use_refinement=True,
            alt_enabled=False,
            alt_reason="not applicable (spatio-temporal bounds, no landmark table)",
            text_measure=None,
            source_vertices=tuple(vertex for vertex, __ in points),
            candidate_count=0,
            database_size=len(database),
            cache_enabled=self._max_transforms > 0,
            # Worst case: every spatial source settles the graph and every
            # temporal window scans all stored sample points.
            estimated_cost=float(
                len(points) * (database.graph.num_vertices + num_samples)
            ),
            notes=tuple(notes),
        )

    def execute(self, plan: QueryPlan, budget=None) -> SearchResult:
        """Run a previously built PTM plan (top-k mode).

        The directional engine has no anytime degradation path — its bounds
        span two domains with no residual accounting — so passing a real
        budget is an error rather than a silent ignore.
        """
        query = plan.query
        if budget is None:
            budget = getattr(query, "budget", None)
        if budget is not None and not budget.unlimited:
            raise QueryError(
                "the directional engine does not support search budgets; "
                "submit PTM queries without one"
            )
        exclude = query.trajectory.id if query.trajectory.id is not None else None
        with execute_span(self.plan_name) as span:
            result = self.topk_search(
                query.points, query.lam, query.k, exclude_id=exclude
            )
            annotate_search_span(span, result)
            return result

    def search(self, query, budget=None) -> SearchResult:
        """``execute(plan(query), budget)`` — the one-call convenience."""
        return self.execute(self.plan(query), budget)

    # -------------------------------------------------------------- search
    def threshold_search(
        self,
        points: list[tuple[int, float]],
        lam: float,
        limit: float,
        exclude_id: int | None = None,
    ) -> CandidateSet:
        """All trajectories with exact ``V >= limit`` (threshold mode).

        Used by the similarity join: per trajectory ``t1`` the candidate set
        is every ``t2`` with ``V(t1, t2) >= theta - 1`` (a pair needs both
        directions to reach that, since each directional ``V`` is at most
        1).  ``exclude_id`` skips the query trajectory itself in a self
        join.  A non-positive ``limit`` degrades to scoring everything.
        """
        started = time.perf_counter()
        candidates = CandidateSet()
        stats = candidates.stats
        sources, tracker, alive = self._setup(points, lam)

        def admit_exact(trajectory_id: int, value: float) -> None:
            """A trajectory fully scanned by expansion: value is exact."""
            if trajectory_id == exclude_id:
                return
            stats.similarity_evaluations += 1
            if value >= limit - _EPS:
                candidates.values[trajectory_id] = value

        # Filter: expand until no unseen trajectory can reach the limit.
        cursor = 0
        while alive:
            radii_weights = SourceRadiiWeights([s.radius_weight for s in sources])
            if tracker.unseen_upper_bound(radii_weights) < limit - _EPS:
                break
            source = alive[cursor % len(alive)]
            if not self._expand_batch(
                source, alive, tracker, radii_weights, stats, admit_exact
            ):
                continue  # source exhausted and removed; retry same cursor
            cursor += 1

        # Refine: exact V for every partly scanned trajectory still in reach.
        radii_weights = SourceRadiiWeights([s.radius_weight for s in sources])
        for trajectory_id, __, __t in list(tracker.active_states()):
            if trajectory_id == exclude_id:
                continue
            if tracker.upper_bound_of(trajectory_id, radii_weights) < limit - _EPS:
                continue
            value = self.exact_value(points, lam, trajectory_id)
            stats.similarity_evaluations += 1
            if value >= limit - _EPS:
                candidates.values[trajectory_id] = value

        # A non-positive limit admits even never-scanned trajectories; at
        # this point every live domain is exhausted, so their V is exactly 0
        # (unreachable in space, and a scanned-out temporal domain would
        # have seen them).
        if limit <= _EPS and not alive:
            for trajectory_id in self._database.trajectories.ids():
                if trajectory_id != exclude_id and not tracker.is_seen(trajectory_id):
                    stats.similarity_evaluations += 1
                    candidates.values[trajectory_id] = 0.0

        stats.visited_trajectories = tracker.num_seen
        stats.pruned_trajectories = len(self._database) - stats.similarity_evaluations
        stats.elapsed_seconds = time.perf_counter() - started
        return candidates

    def topk_search(
        self,
        points: list[tuple[int, float]],
        lam: float,
        k: int,
        exclude_id: int | None = None,
    ) -> SearchResult:
        """The ``k`` trajectories with the highest ``V`` (matching mode).

        Threshold-algorithm style: expand while the unseen bound dominates,
        refine the loosest partly scanned candidate while a candidate bound
        dominates, stop when the k-th exact score dominates both.
        """
        started = time.perf_counter()
        topk = TopK(k)
        stats = SearchStats()
        sources, tracker, alive = self._setup(points, lam)

        def offer_exact(trajectory_id: int, value: float) -> None:
            if trajectory_id == exclude_id:
                return
            stats.similarity_evaluations += 1
            topk.offer(ScoredTrajectory(trajectory_id, value, 0.0, 0.0))

        def refine(trajectory_id: int) -> None:
            tracker.finish(trajectory_id)
            if trajectory_id == exclude_id:
                return
            offer_exact(trajectory_id, self.exact_value(points, lam, trajectory_id))

        cursor = 0
        while True:
            radii_weights = SourceRadiiWeights([s.radius_weight for s in sources])
            unseen = tracker.unseen_upper_bound(radii_weights) if alive else 0.0
            best_bound, best_id = tracker.best_active_bound(radii_weights)
            if topk.full and max(unseen, best_bound) <= topk.threshold + _EPS:
                break
            if best_id is not None and (best_bound >= unseen or not alive):
                refine(best_id)
                continue
            if not alive:
                break  # domains exhausted and nothing left to refine
            source = alive[cursor % len(alive)]
            if not self._expand_batch(
                source, alive, tracker, radii_weights, stats, offer_exact
            ):
                continue
            cursor += 1

        if not topk.full and not alive:
            # Every live domain is exhausted: never-scanned trajectories are
            # unreachable everywhere, so their V is exactly 0.  Fill in
            # deterministic (ascending-id) order.
            for trajectory_id in sorted(self._database.trajectories.ids()):
                if topk.full:
                    break
                if trajectory_id != exclude_id and not tracker.is_seen(trajectory_id):
                    offer_exact(trajectory_id, 0.0)

        stats.visited_trajectories = tracker.num_seen
        stats.pruned_trajectories = len(self._database) - stats.similarity_evaluations
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(items=topk.ranked(), stats=stats)

    # ---------------------------------------------------------------- core
    def _setup(self, points, lam):
        sources = self._make_sources(points, lam)
        tracker = BoundTracker(
            num_sources=len(sources), text_weight=0.0, text_scores={}
        )
        # Degenerate lam values zero out a whole domain: those sources can
        # never contribute, so treat them as exhausted immediately instead
        # of scanning their domain for nothing.
        alive = []
        for source in sources:
            if source.alpha == 0.0:
                tracker.mark_source_exhausted(source.index)
            else:
                alive.append(source)
        return sources, tracker, alive

    def _make_sources(self, points: list[tuple[int, float]], lam: float) -> list:
        if not points:
            raise QueryError("a directional search needs at least one query point")
        if not (0.0 <= lam <= 1.0):
            raise QueryError(f"lam must be in [0, 1], got {lam}")
        m = len(points)
        spatial_alpha = lam / m
        temporal_alpha = (1.0 - lam) / m
        sources: list = []
        database = self._database
        for vertex, __ in points:
            database.graph._check_vertex(vertex)
            sources.append(
                _SpatialSource(
                    len(sources), vertex, database, spatial_alpha, database.sigma
                )
            )
        for __, timestamp in points:
            sources.append(
                _TemporalSource(
                    len(sources),
                    timestamp,
                    self._timestamp_index,
                    temporal_alpha,
                    self._sigma_t,
                )
            )
        return sources

    def _expand_batch(
        self, source, alive, tracker, radii_weights, stats, on_complete
    ) -> bool:
        """Expand one source for a batch; returns False if it exhausted.

        ``on_complete(trajectory_id, exact_value)`` fires for trajectories
        the expansion itself fully scans — their exact ``V`` is the
        accumulated weight sum, no refinement needed.
        """
        record_hit = tracker.record_hit
        source_index = source.index
        for __ in range(self._batch_size):
            hits = source.step()
            if hits is None:
                alive.remove(source)
                for tid, value, __t in tracker.mark_source_exhausted(source_index):
                    on_complete(tid, value)
                return False
            stats.expanded_vertices += 1
            for trajectory_id, weight in hits:
                completed = record_hit(
                    trajectory_id, source_index, weight, radii_weights
                )
                if completed is not None:
                    on_complete(trajectory_id, completed[0])
        return True
