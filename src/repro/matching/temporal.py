"""Temporal-domain search primitives.

The matching and join extensions explore the 24-hour time axis the same way
the spatial domain is explored: from each query timestamp an expanding
window scans sample points in non-decreasing time distance, so the first
time a trajectory is scanned fixes its exact minimal time gap to the source
(the temporal analogue of Dijkstra's settling order).
"""

from __future__ import annotations

from bisect import bisect_left, insort

from repro.errors import TrajectoryIndexError
from repro.trajectory.model import Trajectory, TrajectorySet

__all__ = ["TimestampIndex", "TemporalExpansion", "min_time_gap"]

_INF = float("inf")


def min_time_gap(timestamp: float, sorted_timestamps: list[float]) -> float:
    """Minimal ``|timestamp - t|`` over a sorted timestamp list.

    Returns ``inf`` for an empty list.
    """
    if not sorted_timestamps:
        return _INF
    i = bisect_left(sorted_timestamps, timestamp)
    best = _INF
    if i < len(sorted_timestamps):
        best = sorted_timestamps[i] - timestamp
    if i > 0:
        best = min(best, timestamp - sorted_timestamps[i - 1])
    return best


class TimestampIndex:
    """All sample points of a trajectory set, sorted by timestamp.

    Supports the expanding-window scan (:class:`TemporalExpansion`) and the
    exact per-trajectory minimal time gap (:meth:`trajectory_timestamps` +
    :func:`min_time_gap`).
    """

    def __init__(self):
        self._entries: list[tuple[float, int]] = []
        self._per_trajectory: dict[int, list[float]] = {}

    @classmethod
    def build(cls, trajectories: TrajectorySet) -> "TimestampIndex":
        """Index every sample point of every trajectory."""
        index = cls()
        for trajectory in trajectories:
            index.add(trajectory)
        return index

    def add(self, trajectory: Trajectory) -> None:
        """Index one trajectory's sample points."""
        if trajectory.id in self._per_trajectory:
            raise TrajectoryIndexError(f"trajectory {trajectory.id} already indexed")
        stamps = trajectory.timestamps()
        self._per_trajectory[trajectory.id] = sorted(stamps)
        for t in stamps:
            insort(self._entries, (t, trajectory.id))

    def remove(self, trajectory_id: int) -> None:
        """Remove a trajectory's sample points."""
        if trajectory_id not in self._per_trajectory:
            raise TrajectoryIndexError(f"trajectory {trajectory_id} is not indexed")
        del self._per_trajectory[trajectory_id]
        self._entries = [(t, tid) for t, tid in self._entries if tid != trajectory_id]

    @property
    def entries(self) -> list[tuple[float, int]]:
        """The sorted ``(timestamp, trajectory_id)`` entries (do not mutate)."""
        return self._entries

    def trajectory_timestamps(self, trajectory_id: int) -> list[float]:
        """A trajectory's timestamps in sorted order."""
        try:
            return self._per_trajectory[trajectory_id]
        except KeyError:
            raise TrajectoryIndexError(f"trajectory {trajectory_id} is not indexed") from None

    @property
    def num_trajectories(self) -> int:
        """How many trajectories are indexed."""
        return len(self._per_trajectory)

    def __len__(self) -> int:
        return len(self._entries)


class TemporalExpansion:
    """A resumable expanding time window around one query timestamp.

    ``expand()`` scans the next-nearest sample point (by absolute time
    difference) and returns ``(trajectory_id, gap)``; :attr:`radius` is the
    gap of the most recently scanned point, a lower bound on the gap of
    every unscanned point.
    """

    __slots__ = ("_entries", "_t0", "_left", "_right", "_radius")

    def __init__(self, index: TimestampIndex, timestamp: float):
        self._entries = index.entries
        self._t0 = timestamp
        self._right = bisect_left(self._entries, (timestamp, -1))
        self._left = self._right - 1
        self._radius = 0.0

    @property
    def radius(self) -> float:
        """Time distance of the last scanned point (``inf`` when exhausted)."""
        if self.exhausted:
            return _INF
        return self._radius

    @property
    def exhausted(self) -> bool:
        """Whether every sample point has been scanned."""
        return self._left < 0 and self._right >= len(self._entries)

    def expand(self) -> tuple[int, float] | None:
        """Scan the next-nearest sample point, or ``None`` at exhaustion."""
        entries = self._entries
        left_gap = self._t0 - entries[self._left][0] if self._left >= 0 else _INF
        right_gap = (
            entries[self._right][0] - self._t0
            if self._right < len(entries)
            else _INF
        )
        if left_gap == _INF and right_gap == _INF:
            return None
        if left_gap <= right_gap:
            trajectory_id = entries[self._left][1]
            self._left -= 1
            self._radius = left_gap
            return trajectory_id, left_gap
        trajectory_id = entries[self._right][1]
        self._right += 1
        self._radius = right_gap
        return trajectory_id, right_gap
