"""Spatio-temporal matching extension (PTM) and the directional engine."""

from repro.matching.engine import CandidateSet, DirectionalSearchEngine
from repro.matching.ptm import BruteForcePTMMatcher, PTMMatcher, PTMQuery
from repro.matching.temporal import TemporalExpansion, TimestampIndex, min_time_gap

__all__ = [
    "BruteForcePTMMatcher",
    "CandidateSet",
    "DirectionalSearchEngine",
    "PTMMatcher",
    "PTMQuery",
    "TemporalExpansion",
    "TimestampIndex",
    "min_time_gap",
]
