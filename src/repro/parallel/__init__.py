"""Process-parallel fan-out for batch queries and join phase 1."""

from repro.parallel.executor import (
    fork_available,
    parallel_join,
    parallel_search,
    parallel_self_join,
)

__all__ = ["fork_available", "parallel_join", "parallel_search", "parallel_self_join"]
