"""Parallel execution of independent searches.

The paper's central systems claim is that per-trajectory (and per-query)
searches are embarrassingly parallel while the merge step stays constant
cost.  This module provides that fan-out for batch UOTS queries and for
phase 1 of the two-phase join.

Processes, not threads, carry the parallelism: the searches are pure Python
and GIL-bound.  Workers are forked (POSIX), so the database is shared
copy-on-write and never pickled; the per-task payload is just the query or
trajectory id.  On platforms without ``fork`` the executor transparently
falls back to sequential execution (documented, and reported in the stats).

Failure containment (``parallel_search``): a query that raises inside a
worker comes back as an *error-marked* :class:`SearchResult` (``error``
set, empty items) instead of poisoning the batch; tasks stranded by a
crashed worker process are re-submitted to a fresh pool up to
``max_task_retries`` rounds; if the pool keeps dying, the remaining
queries run sequentially in the parent.  Each result's
``stats.executor`` records which path actually produced it (``"fork"``,
``"sequential"``, or ``"sequential-fallback"``) and ``stats.retries``
how many re-submissions the query needed.

The parent-to-worker handoff rides module globals through ``fork`` (never
pickled).  :func:`_worker_handoff` makes that exception-safe: the parent's
global is populated only inside the context manager (cleared on any exit
path), re-entrant use fails fast instead of silently mixing payloads, and
each worker moves the inherited payload into its own ``_WORKER_STATE`` and
clears the global so a nested ``parallel_search`` inside a worker starts
from a clean slate.

Telemetry harvest (:mod:`repro.obs.harvest`): when the parent traces (or a
metric sink is installed), the handoff payload carries a harvest config
and every worker task runs under its own tracer/registry, returning a
picklable :class:`~repro.obs.harvest.WorkerTelemetry` alongside its
result.  The parent grafts worker span trees under the owning span and
merges counter deltas into the sink; tasks stranded by a crashed worker
additionally emit a ``telemetry_lost`` event next to ``worker_crash`` —
the diagnostics vanish with the worker, the trace says so explicitly.
With harvest off (the default), workers return a ``None`` telemetry and
the fork paths are byte-identical to the pre-harvest behaviour.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Sequence

from repro.core.query import UOTSQuery
from repro.core.results import SearchResult, SearchStats
from repro.errors import QueryError, ReproError
from repro.index.database import TrajectoryDatabase
from repro.join.tsjoin import JoinResult, TwoPhaseJoin, _validate_theta
from repro.matching.engine import DirectionalSearchEngine
from repro.obs import harvest
from repro.obs.trace import current_tracer
from repro.resilience.budget import SearchBudget

__all__ = ["parallel_search", "parallel_self_join", "parallel_join", "fork_available"]

# Parent-side handoff payload, inherited through fork (never pickled).
# Populated ONLY inside _worker_handoff(); empty at rest.
_WORKER: dict[str, object] = {}

# Worker-side copy of the payload, filled by _worker_init after fork.
_WORKER_STATE: dict[str, object] = {}


def fork_available() -> bool:
    """Whether fork-based process pools are usable on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


@contextmanager
def _worker_handoff(payload: dict[str, object]):
    """Stage ``payload`` in the fork-inherited global, exception-safely.

    Raises on re-entrant use from the same process: two concurrent fork
    fan-outs would race on the single global and workers could inherit the
    wrong payload.  (Workers themselves are safe to nest — ``_worker_init``
    clears their inherited copy.)
    """
    if _WORKER:
        raise RuntimeError(
            "re-entrant parallel fan-out: a _WORKER handoff is already staged "
            "in this process; finish the outer parallel call first"
        )
    _WORKER.update(payload)
    try:
        yield
    finally:
        _WORKER.clear()


def _worker_init() -> None:
    """Runs in each freshly forked worker: claim the inherited payload.

    Moving it into ``_WORKER_STATE`` and clearing ``_WORKER`` keeps the
    handoff single-use — a nested parallel call inside this worker stages
    its own payload instead of silently reusing the parent's.
    """
    _WORKER_STATE.clear()
    _WORKER_STATE.update(_WORKER)
    _WORKER.clear()


# ----------------------------------------------------------- batch queries
def _error_result(exc: BaseException) -> SearchResult:
    """An error-marked result: the query failed, the batch lives on."""
    result = SearchResult(
        items=[],
        exact=False,
        degradation_reason="query failed",
        error=f"{type(exc).__name__}: {exc}",
    )
    result.stats.failed_queries = 1
    return result


def _safe_search(searcher, query: UOTSQuery, budget: SearchBudget | None) -> SearchResult:
    """One isolated search: library errors become error-marked results.

    Failed queries get the wall time they burned stamped into
    ``stats.elapsed_seconds`` — the service records latency from that field
    on every path, so an error must not report as a 0-latency query.
    """
    started = time.perf_counter()
    try:
        return searcher.search(query, budget=budget)
    except ReproError as exc:
        result = _error_result(exc)
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result


def _search_worker(
    query: UOTSQuery,
) -> tuple[SearchResult, "harvest.WorkerTelemetry | None"]:
    searcher = _WORKER_STATE["searcher"]
    budget = _WORKER_STATE.get("budget")
    config = _WORKER_STATE.get("harvest")
    if not config:
        return _safe_search(searcher, query, budget), None
    with harvest.collecting(config) as collector:
        result = _safe_search(searcher, query, budget)
        collector.record_result(result, kind="search")
    return result, collector.telemetry()


def parallel_search(
    database: TrajectoryDatabase,
    queries: Sequence[UOTSQuery],
    algorithm: str = "collaborative",
    workers: int = 1,
    budget: SearchBudget | None = None,
    max_task_retries: int = 2,
) -> list[SearchResult]:
    """Run a batch of UOTS queries across ``workers`` processes.

    Results come back in query order.  ``workers=1`` (or an unavailable
    ``fork``) runs sequentially in-process.  ``budget`` applies to every
    query (a per-query ``query.budget`` wins where set).  A failing query
    yields an error-marked result; a crashed worker's tasks are retried up
    to ``max_task_retries`` pool rounds, then finished sequentially —
    see the module docstring for the containment contract.

    This is a convenience over a one-shot
    :class:`~repro.service.service.QueryService` (imported lazily — the
    serving layer sits above this module); long-lived callers should hold
    a service of their own to keep its aggregated stats.
    """
    from repro.service.service import QueryService

    service = QueryService(database, algorithm)
    return service.execute_many(
        queries, budget=budget, workers=workers, max_task_retries=max_task_retries
    )


def _fork_search_batch(
    searcher,
    queries: list[UOTSQuery],
    budget: SearchBudget | None,
    workers: int,
    max_task_retries: int,
) -> list[SearchResult]:
    context = multiprocessing.get_context("fork")
    results: list[SearchResult | None] = [None] * len(queries)
    retry_counts = [0] * len(queries)
    pending = list(range(len(queries)))
    rounds_failed = 0
    tracer = current_tracer()
    config = harvest.harvest_config()
    payload: dict[str, object] = {"searcher": searcher, "budget": budget}
    if config is not None:
        payload["harvest"] = config
    with _worker_handoff(payload):
        while pending and rounds_failed <= max_task_retries:
            failed: list[int] = []
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                mp_context=context,
                initializer=_worker_init,
            ) as pool:
                futures = {
                    pool.submit(_search_worker, queries[i]): i for i in pending
                }
                for future in as_completed(futures):
                    i = futures[future]
                    try:
                        results[i], telemetry = future.result()
                        results[i].stats.executor = "fork"
                        results[i].stats.retries = retry_counts[i]
                        if telemetry is not None:
                            harvest.merge_telemetry(telemetry)
                            if tracer.enabled:
                                # The owning per-query span the worker's
                                # plan/execute roots graft under; it opened
                                # after the fork returned, so its honest
                                # duration is the worker-measured wall time.
                                with tracer.span(
                                    "query",
                                    forked=True,
                                    worker_pid=telemetry.pid,
                                    elapsed_seconds=(
                                        results[i].stats.elapsed_seconds
                                    ),
                                ) as qspan:
                                    harvest.graft_telemetry(
                                        tracer, qspan, telemetry
                                    )
                                if qspan is not None:
                                    qspan.duration_s = (
                                        results[i].stats.elapsed_seconds
                                    )
                    except (BrokenProcessPool, OSError):
                        # A worker died; the task may be re-runnable.
                        failed.append(i)
                    except Exception as exc:  # non-library worker bug:
                        results[i] = _error_result(exc)  # isolate, don't retry
                        results[i].stats.executor = "fork"
            if failed:
                rounds_failed += 1
                for i in failed:
                    retry_counts[i] += 1
                tracer.event(
                    "worker_crash", stranded=len(failed), round=rounds_failed
                )
                if config is not None:
                    # The crashed workers' tracer/registry died with them:
                    # whatever these tasks had recorded is gone for good
                    # (a retry re-runs the task, it cannot replay drops).
                    tracer.event(
                        "telemetry_lost", tasks=len(failed), round=rounds_failed
                    )
            pending = sorted(failed)
    # Pool kept dying: finish the stranded queries in-process so the batch
    # still completes (the documented last-resort degradation).
    if pending:
        tracer.event("sequential_fallback", queries=len(pending))
    for i in pending:
        results[i] = _safe_search(searcher, queries[i], budget)
        results[i].stats.executor = "sequential-fallback"
        results[i].stats.retries = retry_counts[i]
    return results  # type: ignore[return-value]  # every slot is filled


# -------------------------------------------------------- sharded scatter
def _shard_worker(
    index: int,
) -> tuple[SearchResult, "harvest.WorkerTelemetry | None"]:
    searchers = _WORKER_STATE["shard_searchers"]
    plans = _WORKER_STATE["shard_plans"]
    caps = _WORKER_STATE["shard_caps"]
    floor = _WORKER_STATE["shard_floor"]
    maps = _WORKER_STATE["shard_maps"]
    config = _WORKER_STATE.get("harvest")
    if not config:
        result = searchers[index].execute(
            plans[index], score_floor=floor, unseen_caps=caps[index],
            distance_maps=maps,
        )
        return result, None
    with harvest.collecting(config) as collector:
        result = searchers[index].execute(
            plans[index], score_floor=floor, unseen_caps=caps[index],
            distance_maps=maps,
        )
        collector.record_result(result, kind="shard")
    return result, collector.telemetry()


def _fork_shard_batch(
    searchers: list,
    plans: list,
    caps: list,
    floor: float | None,
    workers: int,
    max_task_retries: int,
    distance_maps=None,
) -> tuple[list[SearchResult], list["harvest.WorkerTelemetry | None"]]:
    """Execute one scatter wave of shard searches across forked workers.

    Same containment contract as :func:`_fork_search_batch`, at shard
    granularity: a shard stranded by a crashed worker is re-submitted up to
    ``max_task_retries`` pool rounds, then falls back to *sequential
    execution of that shard only* in the parent — the merged top-k never
    loses a shard's results.  Library errors raised by a shard search
    propagate to the caller (exactly as the flat sequential path would
    raise them); they are not retried.

    Returns ``(results, telemetries)`` in shard order.  Counter deltas are
    merged into the harvest sink here; span grafting is the caller's —
    only the sharded searcher knows which ``shard[i]`` span owns each
    telemetry.  A shard answered by the sequential fallback carries
    ``None`` telemetry (its spans recorded live into the parent trace).
    """
    context = multiprocessing.get_context("fork")
    results: list[SearchResult | None] = [None] * len(searchers)
    telemetries: list["harvest.WorkerTelemetry | None"] = [None] * len(searchers)
    retry_counts = [0] * len(searchers)
    pending = list(range(len(searchers)))
    rounds_failed = 0
    tracer = current_tracer()
    config = harvest.harvest_config()
    payload = {
        "shard_searchers": searchers,
        "shard_plans": plans,
        "shard_caps": caps,
        "shard_floor": floor,
        # Shared per-source distance maps, inherited through fork's memory
        # copy like everything else in the payload (never pickled).
        "shard_maps": distance_maps,
    }
    if config is not None:
        payload["harvest"] = config

    def _claim(i: int, outcome) -> None:
        results[i], telemetries[i] = outcome
        results[i].stats.executor = "fork"
        results[i].stats.retries = retry_counts[i]
        harvest.merge_telemetry(telemetries[i])

    with _worker_handoff(payload):
        while pending and rounds_failed <= max_task_retries:
            failed: list[int] = []
            if rounds_failed == 0:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(pending)),
                    mp_context=context,
                    initializer=_worker_init,
                ) as pool:
                    futures = {pool.submit(_shard_worker, i): i for i in pending}
                    for future in as_completed(futures):
                        i = futures[future]
                        try:
                            _claim(i, future.result())
                        except (BrokenProcessPool, OSError):
                            # A worker died mid-shard; the shard is
                            # re-runnable.
                            failed.append(i)
            else:
                # Quarantine retries: one single-worker pool per stranded
                # shard, so a shard that crashes its worker *every* time
                # cannot poison the pool and re-strand healthy shards —
                # only the true crasher reaches the sequential fallback.
                for i in pending:
                    with ProcessPoolExecutor(
                        max_workers=1,
                        mp_context=context,
                        initializer=_worker_init,
                    ) as pool:
                        try:
                            _claim(i, pool.submit(_shard_worker, i).result())
                        except (BrokenProcessPool, OSError):
                            failed.append(i)
            if failed:
                rounds_failed += 1
                for i in failed:
                    retry_counts[i] += 1
                tracer.event(
                    "worker_crash", stranded=len(failed), round=rounds_failed
                )
                if config is not None:
                    # Crashed workers take their tracer/registry with
                    # them; the stitched trace records the loss instead
                    # of being silently thin on these shards.
                    tracer.event(
                        "telemetry_lost", shards=len(failed), round=rounds_failed
                    )
            pending = sorted(failed)
    if pending:
        tracer.event("sequential_fallback", shards=len(pending))
    for i in pending:
        results[i] = searchers[i].execute(
            plans[i], score_floor=floor, unseen_caps=caps[i],
            distance_maps=distance_maps,
        )
        results[i].stats.executor = "sequential-fallback"
        results[i].stats.retries = retry_counts[i]
    return results, telemetries  # type: ignore[return-value]  # slots filled


# -------------------------------------------------------------- join phase 1
def _join_worker(
    trajectory_id: int,
) -> tuple[int, dict[int, float], SearchStats, "harvest.WorkerTelemetry | None"]:
    engine: DirectionalSearchEngine = _WORKER_STATE["engine"]
    database: TrajectoryDatabase = _WORKER_STATE["database"]
    lam: float = _WORKER_STATE["lam"]
    limit: float = _WORKER_STATE["limit"]
    trajectory = database.get(trajectory_id)
    points = [(p.vertex, p.timestamp) for p in trajectory.points]
    config = _WORKER_STATE.get("harvest")
    if not config:
        candidates = engine.threshold_search(
            points, lam, limit, exclude_id=trajectory_id
        )
        return trajectory_id, candidates.values, candidates.stats, None
    with harvest.collecting(config) as collector:
        # threshold_search is not span-instrumented; the task root gives
        # the stitched join trace its per-trajectory timing.
        with collector.tracer.span("join_task", trajectory_id=trajectory_id):
            candidates = engine.threshold_search(
                points, lam, limit, exclude_id=trajectory_id
            )
        collector.record_stats(candidates.stats, kind="join")
    return trajectory_id, candidates.values, candidates.stats, collector.telemetry()


def parallel_self_join(
    database: TrajectoryDatabase,
    theta: float,
    lam: float = 0.5,
    sigma_t: float = 1800.0,
    workers: int = 1,
) -> JoinResult:
    """The two-phase self join with phase 1 fanned out over processes.

    Phase 2 (merging the candidate sets) runs in the parent and is the same
    dictionary intersection regardless of the worker count — the constant
    merge cost the two-phase design claims.
    """
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    _validate_theta(theta)
    if workers == 1 or not fork_available():
        return TwoPhaseJoin(database, lam=lam, sigma_t=sigma_t).self_join(theta)

    started = time.perf_counter()
    engine = DirectionalSearchEngine(database, sigma_t=sigma_t)
    ids = database.trajectories.ids()
    context = multiprocessing.get_context("fork")
    payload = {
        "engine": engine, "database": database, "lam": lam, "limit": theta - 1.0,
    }
    config = harvest.harvest_config()
    if config is not None:
        payload["harvest"] = config
    with _worker_handoff(payload):
        with context.Pool(processes=workers, initializer=_worker_init) as pool:
            chunk = max(1, len(ids) // (workers * 8))
            rows = pool.map(_join_worker, ids, chunksize=chunk)

    result = JoinResult()
    sets: dict[int, dict[int, float]] = {}
    tracer = current_tracer()
    with tracer.span("parallel_join", workers=workers, tasks=len(rows)) as jspan:
        for trajectory_id, values, stats, telemetry in rows:
            sets[trajectory_id] = values
            result.stats.merge(stats)
            harvest.merge_telemetry(telemetry)
            if telemetry is not None:
                harvest.graft_telemetry(tracer, jspan, telemetry)
    eps = 1e-9
    for id1, candidates in sets.items():
        for id2, v12 in candidates.items():
            if id2 <= id1:
                continue
            v21 = sets.get(id2, {}).get(id1)
            if v21 is None:
                continue
            result.candidate_pairs += 1
            score = v12 + v21
            if score >= theta - eps:
                result.pairs.append((id1, id2, score))
    result.pairs.sort()
    result.stats.elapsed_seconds = time.perf_counter() - started
    return result


# ------------------------------------------------------- non-self join
def _cross_join_worker(
    task: tuple[str, int],
) -> tuple[str, int, dict[int, float], SearchStats, "harvest.WorkerTelemetry | None"]:
    side, trajectory_id = task
    engine: DirectionalSearchEngine = _WORKER_STATE[f"engine_{side}"]
    database: TrajectoryDatabase = _WORKER_STATE[f"database_{side}"]
    lam: float = _WORKER_STATE["lam"]
    limit: float = _WORKER_STATE["limit"]
    trajectory = database.get(trajectory_id)
    points = [(p.vertex, p.timestamp) for p in trajectory.points]
    config = _WORKER_STATE.get("harvest")
    if not config:
        candidates = engine.threshold_search(points, lam, limit)
        return side, trajectory_id, candidates.values, candidates.stats, None
    with harvest.collecting(config) as collector:
        with collector.tracer.span(
            "join_task", trajectory_id=trajectory_id, side=side
        ):
            candidates = engine.threshold_search(points, lam, limit)
        collector.record_stats(candidates.stats, kind="join")
    return (
        side, trajectory_id, candidates.values, candidates.stats,
        collector.telemetry(),
    )


def parallel_join(
    database: TrajectoryDatabase,
    other: TrajectoryDatabase,
    theta: float,
    lam: float = 0.5,
    sigma_t: float = 1800.0,
    workers: int = 1,
) -> JoinResult:
    """The two-phase non-self join ``P x Q`` with phase 1 fanned out.

    Searches from both sides (``P`` trajectories against ``Q``'s engine and
    vice versa) form one task pool; merging runs in the parent, worker-count
    independent.
    """
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    _validate_theta(theta)
    if workers == 1 or not fork_available():
        return TwoPhaseJoin(database, other, lam=lam, sigma_t=sigma_t).join(theta)

    started = time.perf_counter()
    engine_q = DirectionalSearchEngine(other, sigma_t=sigma_t)
    engine_p = DirectionalSearchEngine(database, sigma_t=sigma_t)
    tasks = [("p", tid) for tid in database.trajectories.ids()]
    tasks += [("q", tid) for tid in other.trajectories.ids()]
    context = multiprocessing.get_context("fork")
    # Side "p" trajectories search the Q engine and vice versa.
    payload = {
        "engine_p": engine_q, "database_p": database,
        "engine_q": engine_p, "database_q": other,
        "lam": lam, "limit": theta - 1.0,
    }
    config = harvest.harvest_config()
    if config is not None:
        payload["harvest"] = config
    with _worker_handoff(payload):
        with context.Pool(processes=workers, initializer=_worker_init) as pool:
            chunk = max(1, len(tasks) // (workers * 8))
            rows = pool.map(_cross_join_worker, tasks, chunksize=chunk)

    result = JoinResult()
    from_p: dict[int, dict[int, float]] = {}
    from_q: dict[int, dict[int, float]] = {}
    tracer = current_tracer()
    with tracer.span("parallel_join", workers=workers, tasks=len(rows)) as jspan:
        for side, trajectory_id, values, stats, telemetry in rows:
            (from_p if side == "p" else from_q)[trajectory_id] = values
            result.stats.merge(stats)
            harvest.merge_telemetry(telemetry)
            if telemetry is not None:
                harvest.graft_telemetry(tracer, jspan, telemetry)
    eps = 1e-9
    for id1, candidates in from_p.items():
        for id2, v12 in candidates.items():
            v21 = from_q.get(id2, {}).get(id1)
            if v21 is None:
                continue
            result.candidate_pairs += 1
            score = v12 + v21
            if score >= theta - eps:
                result.pairs.append((id1, id2, score))
    result.pairs.sort()
    result.stats.elapsed_seconds = time.perf_counter() - started
    return result
