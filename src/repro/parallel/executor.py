"""Parallel execution of independent searches.

The paper's central systems claim is that per-trajectory (and per-query)
searches are embarrassingly parallel while the merge step stays constant
cost.  This module provides that fan-out for batch UOTS queries and for
phase 1 of the two-phase join.

Processes, not threads, carry the parallelism: the searches are pure Python
and GIL-bound.  Workers are forked (POSIX), so the database is shared
copy-on-write and never pickled; the per-task payload is just the query or
trajectory id.  On platforms without ``fork`` the executor transparently
falls back to sequential execution (documented, and reported in the stats).
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Sequence

from repro.core.engine import make_searcher
from repro.core.query import UOTSQuery
from repro.core.results import SearchResult, SearchStats
from repro.errors import QueryError
from repro.index.database import TrajectoryDatabase
from repro.join.tsjoin import JoinResult, TwoPhaseJoin, _validate_theta
from repro.matching.engine import DirectionalSearchEngine

__all__ = ["parallel_search", "parallel_self_join", "parallel_join", "fork_available"]

# Worker globals, inherited through fork (never pickled).
_WORKER: dict[str, object] = {}


def fork_available() -> bool:
    """Whether fork-based process pools are usable on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------- batch queries
def _search_worker(query: UOTSQuery) -> SearchResult:
    searcher = _WORKER["searcher"]
    return searcher.search(query)


def parallel_search(
    database: TrajectoryDatabase,
    queries: Sequence[UOTSQuery],
    algorithm: str = "collaborative",
    workers: int = 1,
) -> list[SearchResult]:
    """Run a batch of UOTS queries across ``workers`` processes.

    Results come back in query order.  ``workers=1`` (or an unavailable
    ``fork``) runs sequentially in-process.
    """
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    searcher = make_searcher(database, algorithm)
    if workers == 1 or not fork_available() or len(queries) <= 1:
        return [searcher.search(query) for query in queries]

    context = multiprocessing.get_context("fork")
    _WORKER["searcher"] = searcher
    try:
        with context.Pool(processes=min(workers, len(queries))) as pool:
            return pool.map(_search_worker, queries, chunksize=1)
    finally:
        _WORKER.clear()


# -------------------------------------------------------------- join phase 1
def _join_worker(trajectory_id: int) -> tuple[int, dict[int, float], SearchStats]:
    engine: DirectionalSearchEngine = _WORKER["engine"]
    database: TrajectoryDatabase = _WORKER["database"]
    lam: float = _WORKER["lam"]
    limit: float = _WORKER["limit"]
    trajectory = database.get(trajectory_id)
    candidates = engine.threshold_search(
        [(p.vertex, p.timestamp) for p in trajectory.points],
        lam,
        limit,
        exclude_id=trajectory_id,
    )
    return trajectory_id, candidates.values, candidates.stats


def parallel_self_join(
    database: TrajectoryDatabase,
    theta: float,
    lam: float = 0.5,
    sigma_t: float = 1800.0,
    workers: int = 1,
) -> JoinResult:
    """The two-phase self join with phase 1 fanned out over processes.

    Phase 2 (merging the candidate sets) runs in the parent and is the same
    dictionary intersection regardless of the worker count — the constant
    merge cost the two-phase design claims.
    """
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    _validate_theta(theta)
    if workers == 1 or not fork_available():
        return TwoPhaseJoin(database, lam=lam, sigma_t=sigma_t).self_join(theta)

    started = time.perf_counter()
    engine = DirectionalSearchEngine(database, sigma_t=sigma_t)
    ids = database.trajectories.ids()
    context = multiprocessing.get_context("fork")
    _WORKER.update(
        {"engine": engine, "database": database, "lam": lam, "limit": theta - 1.0}
    )
    try:
        with context.Pool(processes=workers) as pool:
            chunk = max(1, len(ids) // (workers * 8))
            rows = pool.map(_join_worker, ids, chunksize=chunk)
    finally:
        _WORKER.clear()

    result = JoinResult()
    sets: dict[int, dict[int, float]] = {}
    for trajectory_id, values, stats in rows:
        sets[trajectory_id] = values
        result.stats.merge(stats)
    eps = 1e-9
    for id1, candidates in sets.items():
        for id2, v12 in candidates.items():
            if id2 <= id1:
                continue
            v21 = sets.get(id2, {}).get(id1)
            if v21 is None:
                continue
            result.candidate_pairs += 1
            score = v12 + v21
            if score >= theta - eps:
                result.pairs.append((id1, id2, score))
    result.pairs.sort()
    result.stats.elapsed_seconds = time.perf_counter() - started
    return result


# ------------------------------------------------------- non-self join
def _cross_join_worker(task: tuple[str, int]) -> tuple[str, int, dict[int, float], SearchStats]:
    side, trajectory_id = task
    engine: DirectionalSearchEngine = _WORKER[f"engine_{side}"]
    database: TrajectoryDatabase = _WORKER[f"database_{side}"]
    lam: float = _WORKER["lam"]
    limit: float = _WORKER["limit"]
    trajectory = database.get(trajectory_id)
    candidates = engine.threshold_search(
        [(p.vertex, p.timestamp) for p in trajectory.points], lam, limit
    )
    return side, trajectory_id, candidates.values, candidates.stats


def parallel_join(
    database: TrajectoryDatabase,
    other: TrajectoryDatabase,
    theta: float,
    lam: float = 0.5,
    sigma_t: float = 1800.0,
    workers: int = 1,
) -> JoinResult:
    """The two-phase non-self join ``P x Q`` with phase 1 fanned out.

    Searches from both sides (``P`` trajectories against ``Q``'s engine and
    vice versa) form one task pool; merging runs in the parent, worker-count
    independent.
    """
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    _validate_theta(theta)
    if workers == 1 or not fork_available():
        return TwoPhaseJoin(database, other, lam=lam, sigma_t=sigma_t).join(theta)

    started = time.perf_counter()
    engine_q = DirectionalSearchEngine(other, sigma_t=sigma_t)
    engine_p = DirectionalSearchEngine(database, sigma_t=sigma_t)
    tasks = [("p", tid) for tid in database.trajectories.ids()]
    tasks += [("q", tid) for tid in other.trajectories.ids()]
    context = multiprocessing.get_context("fork")
    # Side "p" trajectories search the Q engine and vice versa.
    _WORKER.update(
        {
            "engine_p": engine_q, "database_p": database,
            "engine_q": engine_p, "database_q": other,
            "lam": lam, "limit": theta - 1.0,
        }
    )
    try:
        with context.Pool(processes=workers) as pool:
            chunk = max(1, len(tasks) // (workers * 8))
            rows = pool.map(_cross_join_worker, tasks, chunksize=chunk)
    finally:
        _WORKER.clear()

    result = JoinResult()
    from_p: dict[int, dict[int, float]] = {}
    from_q: dict[int, dict[int, float]] = {}
    for side, trajectory_id, values, stats in rows:
        (from_p if side == "p" else from_q)[trajectory_id] = values
        result.stats.merge(stats)
    eps = 1e-9
    for id1, candidates in from_p.items():
        for id2, v12 in candidates.items():
            v21 = from_q.get(id2, {}).get(id1)
            if v21 is None:
                continue
            result.candidate_pairs += 1
            score = v12 + v21
            if score >= theta - eps:
                result.pairs.append((id1, id2, score))
    result.pairs.sort()
    result.stats.elapsed_seconds = time.perf_counter() - started
    return result
