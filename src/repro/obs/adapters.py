"""Adapters publishing the existing stats classes into the registry.

The library already keeps six stats surfaces — ``SearchStats``,
``ServiceStats``, ``BufferStats``, ``CacheStats``, ``NetworkStats``,
``TrajectoryStats`` — plus the chaos-testing ``FaultInjector`` counters.
Each ``bind_*`` function here takes a *live* stats object and a
:class:`~repro.obs.metrics.MetricsRegistry`, registers a collector that
mirrors the object's current totals into named instruments at export
time, and returns that collector (tests call it directly).  The stats
objects stay the source of truth; nothing double-counts.

Metric names follow the DESIGN.md §8 convention
(``repro_<subsystem>_<what>[_total]``); all ``bind_*`` functions default
to the process-wide registry when ``registry`` is omitted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.obs.metrics import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps import light
    from repro.core.results import SearchStats
    from repro.index.database import TrajectoryDatabase
    from repro.network.stats import NetworkStats
    from repro.obs.slowlog import SlowQueryJournal
    from repro.obs.trace import Tracer
    from repro.perf.cache import CacheStats
    from repro.perf.result_cache import ResultCache
    from repro.resilience.faults import FaultInjector
    from repro.service.admission import AdmissionController
    from repro.service.stats import ServiceStats
    from repro.storage.buffer import BufferStats
    from repro.trajectory.stats import TrajectoryStats

__all__ = [
    "bind_search_stats",
    "bind_service_stats",
    "bind_tracer",
    "bind_slowlog",
    "bind_admission",
    "bind_buffer_stats",
    "bind_cache_stats",
    "bind_result_cache",
    "bind_network_stats",
    "bind_trajectory_stats",
    "bind_fault_injector",
    "bind_database",
    "bind_landmark_clamps",
]

Collector = Callable[[], None]

#: SearchStats counter fields exported one-to-one, with help strings.
_SEARCH_FIELDS = {
    "visited_trajectories": "Trajectories visited across served queries",
    "expanded_vertices": "Dijkstra/expansion vertices settled",
    "similarity_evaluations": "Exact similarity evaluations",
    "pruned_trajectories": "Candidates eliminated by bounds",
    "text_candidates": "Candidates surviving the text filter",
    "refinements": "Point-to-set refinement computations",
    "retries": "Transient faults absorbed by retry inside searches",
    "degraded_queries": "Queries answered inexactly under a budget",
    "failed_queries": "Queries that raised inside the search core",
    "expand_batches": "Batched expansion rounds",
    "alt_pruned": "Frontier caps tightened by ALT lower bounds",
}


def bind_search_stats(
    stats: "SearchStats",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Mirror a live (monotone) :class:`SearchStats` into the registry.

    Bind accumulating instances — a service's ``stats.totals`` — not a
    single query's result stats, which a later bind would regress.
    """
    if registry is None:
        registry = get_registry()
    counters = {
        field: registry.counter(f"repro_search_{field}_total", help)
        for field, help in _SEARCH_FIELDS.items()
    }
    elapsed = registry.counter(
        "repro_search_elapsed_seconds_total", "Wall time spent inside searches"
    )
    shard_planned = registry.counter(
        "repro_shard_planned_total", "Shards considered by scatter-gather plans"
    )
    shard_executed = registry.counter(
        "repro_shard_executed_total", "Shards actually searched"
    )
    shard_pruned = registry.counter(
        "repro_shard_pruned_total", "Shards skipped by the bound-based filter"
    )
    shard_seconds = registry.counter(
        "repro_shard_seconds_total", "Summed per-shard search time"
    )
    cache_hits = registry.counter(
        "repro_search_cache_hits_total", "Per-query cache hits, by cache"
    )
    cache_misses = registry.counter(
        "repro_search_cache_misses_total", "Per-query cache misses, by cache"
    )

    def collect() -> None:
        for field, counter in counters.items():
            counter.set_total(getattr(stats, field), **labels)
        elapsed.set_total(stats.elapsed_seconds, **labels)
        shard_planned.set_total(stats.shards_planned, **labels)
        shard_executed.set_total(stats.shards_executed, **labels)
        shard_pruned.set_total(stats.shards_pruned, **labels)
        shard_seconds.set_total(stats.shard_seconds, **labels)
        cache_hits.set_total(stats.distance_cache_hits, cache="distance", **labels)
        cache_hits.set_total(stats.text_cache_hits, cache="text", **labels)
        cache_misses.set_total(stats.distance_cache_misses, cache="distance", **labels)
        cache_misses.set_total(stats.text_cache_misses, cache="text", **labels)

    registry.register_collector(collect)
    return collect


def bind_service_stats(
    stats: "ServiceStats",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Mirror a :class:`ServiceStats` (outcomes, latency percentiles, totals)."""
    if registry is None:
        registry = get_registry()
    outcomes = registry.counter(
        "repro_service_queries_total", "Queries by outcome (served + rejected)"
    )
    p50 = registry.gauge(
        "repro_service_latency_p50_seconds", "Median latency over the recent window"
    )
    p95 = registry.gauge(
        "repro_service_latency_p95_seconds", "p95 latency over the recent window"
    )
    hit_rate = registry.gauge(
        "repro_service_cache_hit_rate", "Cross-query cache hit rate, by cache"
    )
    totals = bind_search_stats(stats.totals, registry, **labels)

    def collect() -> None:
        snapshot = stats.snapshot()
        outcomes.set_total(snapshot["exact_results"], outcome="exact", **labels)
        outcomes.set_total(snapshot["degraded_results"], outcome="degraded", **labels)
        outcomes.set_total(snapshot["failed_queries"], outcome="failed", **labels)
        outcomes.set_total(snapshot["rejected_queries"], outcome="rejected", **labels)
        p50.set(snapshot["p50_ms"] / 1000.0, **labels)
        p95.set(snapshot["p95_ms"] / 1000.0, **labels)
        hit_rate.set(snapshot["distance_cache_hit_rate"], cache="distance", **labels)
        hit_rate.set(snapshot["text_cache_hit_rate"], cache="text", **labels)
        # Overload-policy series materialise only once a policy decision
        # happened: an un-policied service exports exactly the pre-overload
        # instrument set (get-or-create makes the repeats cheap).
        if "invalidation_events" in snapshot:
            invalidation_events = registry.counter(
                "repro_invalidation_events_total",
                "Result-cache invalidation events, by mutation kind",
            )
            for kind, count in snapshot["invalidation_kinds"].items():
                invalidation_events.set_total(count, kind=kind, **labels)
            registry.counter(
                "repro_invalidation_entries_dropped_total",
                "Result-cache entries dropped by scoped invalidation",
            ).set_total(snapshot["invalidation_entries_dropped"], **labels)
            registry.counter(
                "repro_invalidation_entries_retained_total",
                "Result-cache entries proven unaffected and retained, "
                "summed per event",
            ).set_total(snapshot["invalidation_entries_retained"], **labels)
        if "shed_reasons" in snapshot:
            shed = registry.counter(
                "repro_service_shed_total", "Queries shed by policy, by reason"
            )
            for reason, count in snapshot["shed_reasons"].items():
                shed.set_total(count, reason=reason, **labels)
        if "policy_degraded_results" in snapshot:
            degraded = registry.counter(
                "repro_service_policy_degraded_total",
                "Queries answered under an admission-tightened budget",
            )
            degraded.set_total(snapshot["policy_degraded_results"], **labels)
        if "tenants" in snapshot:
            per_tenant = registry.counter(
                "repro_service_tenant_queries_total",
                "Queries by tenant and admission outcome",
            )
            for tenant, lane in snapshot["tenants"].items():
                per_tenant.set_total(
                    lane["served"], tenant=tenant, outcome="served", **labels
                )
                per_tenant.set_total(
                    lane["rejected"], tenant=tenant, outcome="rejected", **labels
                )
        if "priorities" in snapshot:
            per_class = registry.counter(
                "repro_service_priority_queries_total",
                "Queries by priority class and admission outcome",
            )
            for priority, lane in snapshot["priorities"].items():
                per_class.set_total(
                    lane["served"], priority=priority, outcome="served", **labels
                )
                per_class.set_total(
                    lane["rejected"], priority=priority, outcome="rejected", **labels
                )
        if "plan_drift" in snapshot:
            drift_queries = registry.counter(
                "repro_plan_drift_queries_total",
                "Executed queries with a drift-comparable plan estimate, "
                "by algorithm",
            )
            drift_estimated = registry.counter(
                "repro_plan_drift_estimated_units_total",
                "Planner-estimated work units across drift-tracked queries",
            )
            drift_actual = registry.counter(
                "repro_plan_drift_actual_units_total",
                "Measured work units across drift-tracked queries",
            )
            for algorithm, lane in snapshot["plan_drift"].items():
                drift_queries.set_total(
                    lane["queries"], algorithm=algorithm, **labels
                )
                drift_estimated.set_total(
                    lane["estimated_units"], algorithm=algorithm, **labels
                )
                drift_actual.set_total(
                    lane["actual_units"], algorithm=algorithm, **labels
                )

    registry.register_collector(collect)

    def collect_both() -> None:
        collect()
        totals()

    return collect_both


def bind_tracer(
    tracer: "Tracer",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Mirror a tracer's lifetime drop counters into the registry.

    Non-zero values mean the per-trace buffer caps truncated spans or
    events — locally recorded or grafted from harvested workers — so an
    exported trace is thinner than the work it describes.  A dashboard
    line on these is the difference between "the query did little" and
    "the trace dropped the evidence".
    """
    if registry is None:
        registry = get_registry()
    dropped_spans = registry.counter(
        "repro_trace_dropped_spans_total",
        "Spans dropped by per-trace buffer caps (local and grafted)",
    )
    dropped_events = registry.counter(
        "repro_trace_dropped_events_total",
        "Events dropped by per-trace buffer caps (local and grafted)",
    )

    def collect() -> None:
        dropped_spans.set_total(tracer.dropped_spans_total, **labels)
        dropped_events.set_total(tracer.dropped_events_total, **labels)

    registry.register_collector(collect)
    return collect


def bind_slowlog(
    journal: "SlowQueryJournal",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Mirror a :class:`SlowQueryJournal`'s admission counters and bounds."""
    if registry is None:
        registry = get_registry()
    entries = registry.gauge(
        "repro_slowlog_entries", "Slow-query journal entries currently retained"
    )
    recorded = registry.counter(
        "repro_slowlog_recorded_total", "Queries admitted to the slow-query journal"
    )
    evicted = registry.counter(
        "repro_slowlog_evicted_total",
        "Journal entries evicted by a slower query under the worst-N bound",
    )
    threshold = registry.gauge(
        "repro_slowlog_threshold_seconds", "Journal admission latency threshold"
    )
    worst = registry.gauge(
        "repro_slowlog_worst_seconds", "Slowest latency currently journalled"
    )

    def collect() -> None:
        entries.set(len(journal), **labels)
        recorded.set_total(journal.recorded, **labels)
        evicted.set_total(journal.evicted, **labels)
        threshold.set(journal.threshold_seconds, **labels)
        worst.set(journal.worst_seconds(), **labels)

    registry.register_collector(collect)
    return collect


def bind_admission(
    controller: "AdmissionController",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Mirror an admission controller (and its breaker) into the registry.

    Publishes the current in-flight gauge; when the controller carries a
    circuit breaker, also a state gauge (``0`` closed / ``1`` half-open /
    ``2`` open — see :data:`~repro.service.breaker.BREAKER_STATE_CODES`)
    and a transitions counter fed *eventfully* by chaining onto the
    breaker's ``on_transition`` hook, so every trip/half-open/close is
    counted even between scrapes (a previously installed hook keeps
    firing).
    """
    if registry is None:
        registry = get_registry()
    inflight = registry.gauge(
        "repro_service_inflight", "Queries currently holding an admission slot"
    )
    breaker = getattr(controller, "breaker", None)
    if breaker is not None:
        state = registry.gauge(
            "repro_service_breaker_state",
            "Circuit breaker state (0 closed, 1 half-open, 2 open)",
        )
        transitions = registry.counter(
            "repro_service_breaker_transitions_total",
            "Breaker state transitions, by target state",
        )
        previous = breaker.on_transition

        def on_transition(to_state: str) -> None:
            transitions.inc(to=to_state)
            if previous is not None:
                previous(to_state)

        breaker.on_transition = on_transition

    def collect() -> None:
        inflight.set(controller.inflight, **labels)
        if breaker is not None:
            state.set(breaker.state_code, **labels)

    registry.register_collector(collect)
    return collect


def bind_buffer_stats(
    stats: "BufferStats",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Mirror a buffer pool's :class:`BufferStats` (hits/misses/retries)."""
    if registry is None:
        registry = get_registry()
    hits = registry.counter(
        "repro_storage_page_hits_total", "Page requests served from the buffer pool"
    )
    misses = registry.counter(
        "repro_storage_page_misses_total", "Page requests that went to disk"
    )
    evictions = registry.counter(
        "repro_storage_page_evictions_total", "Pages evicted from the buffer pool"
    )
    retries = registry.counter(
        "repro_storage_read_retries_total", "Physical reads retried after transient faults"
    )
    hit_ratio = registry.gauge(
        "repro_storage_page_hit_ratio", "Fraction of page requests served from memory"
    )

    def collect() -> None:
        hits.set_total(stats.hits, **labels)
        misses.set_total(stats.misses, **labels)
        evictions.set_total(stats.evictions, **labels)
        retries.set_total(stats.retries, **labels)
        hit_ratio.set(stats.hit_ratio, **labels)

    registry.register_collector(collect)
    return collect


def bind_cache_stats(
    stats: "CacheStats",
    cache: str,
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Mirror one perf-cache :class:`CacheStats` under a ``cache=`` label."""
    if registry is None:
        registry = get_registry()
    hits = registry.counter("repro_cache_hits_total", "Cache hits, by cache")
    misses = registry.counter("repro_cache_misses_total", "Cache misses, by cache")
    evictions = registry.counter(
        "repro_cache_evictions_total", "Cache evictions, by cache"
    )
    hit_rate = registry.gauge("repro_cache_hit_rate", "Lifetime hit rate, by cache")

    def collect() -> None:
        hits.set_total(stats.hits, cache=cache, **labels)
        misses.set_total(stats.misses, cache=cache, **labels)
        evictions.set_total(stats.evictions, cache=cache, **labels)
        hit_rate.set(stats.hit_rate, cache=cache, **labels)

    registry.register_collector(collect)
    return collect


def bind_result_cache(
    cache: "ResultCache",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Mirror the service-level result cache into the registry.

    Counters follow the service namespace (the cache is a serving-layer
    structure, not a per-database one): only *eligible* lookups count —
    budgeted queries bypass the cache entirely and appear in neither hits
    nor misses.
    """
    if registry is None:
        registry = get_registry()
    hits = registry.counter(
        "repro_service_result_cache_hits_total",
        "Queries answered from the service-level result cache",
    )
    misses = registry.counter(
        "repro_service_result_cache_misses_total",
        "Cache-eligible queries that had to execute the search",
    )
    evictions = registry.counter(
        "repro_service_result_cache_evictions_total",
        "Result-cache entries evicted by the LRU bound",
    )
    entries = registry.gauge(
        "repro_service_result_cache_entries", "Results currently cached"
    )

    def collect() -> None:
        stats = cache.stats
        hits.set_total(stats.hits, **labels)
        misses.set_total(stats.misses, **labels)
        evictions.set_total(stats.evictions, **labels)
        entries.set(len(cache), **labels)

    registry.register_collector(collect)
    return collect


def bind_network_stats(
    stats: "NetworkStats",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Publish a (frozen) :class:`NetworkStats` as dataset gauges."""
    if registry is None:
        registry = get_registry()
    gauges = {
        "num_vertices": registry.gauge(
            "repro_dataset_network_vertices", "Vertices in the spatial network"
        ),
        "num_edges": registry.gauge(
            "repro_dataset_network_edges", "Edges in the spatial network"
        ),
        "total_weight": registry.gauge(
            "repro_dataset_network_total_weight", "Sum of edge weights"
        ),
        "avg_degree": registry.gauge(
            "repro_dataset_network_avg_degree", "Average vertex degree"
        ),
        "avg_edge_weight": registry.gauge(
            "repro_dataset_network_avg_edge_weight", "Average edge weight"
        ),
        "diameter_lower_bound": registry.gauge(
            "repro_dataset_network_diameter_lower_bound",
            "Lower bound on the network diameter",
        ),
    }

    def collect() -> None:
        for field, gauge in gauges.items():
            gauge.set(getattr(stats, field), **labels)

    registry.register_collector(collect)
    return collect


def bind_trajectory_stats(
    stats: "TrajectoryStats",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Publish a (frozen) :class:`TrajectoryStats` as dataset gauges."""
    if registry is None:
        registry = get_registry()
    gauges = {
        "count": registry.gauge(
            "repro_dataset_trajectories", "Trajectories in the database"
        ),
        "avg_points": registry.gauge(
            "repro_dataset_trajectory_avg_points", "Average points per trajectory"
        ),
        "min_points": registry.gauge(
            "repro_dataset_trajectory_min_points", "Shortest trajectory length"
        ),
        "max_points": registry.gauge(
            "repro_dataset_trajectory_max_points", "Longest trajectory length"
        ),
        "avg_duration": registry.gauge(
            "repro_dataset_trajectory_avg_duration_seconds",
            "Average trajectory duration",
        ),
        "distinct_vertices": registry.gauge(
            "repro_dataset_trajectory_distinct_vertices",
            "Vertices covered by at least one trajectory",
        ),
        "avg_keywords": registry.gauge(
            "repro_dataset_trajectory_avg_keywords", "Average keywords per trajectory"
        ),
        "distinct_keywords": registry.gauge(
            "repro_dataset_trajectory_distinct_keywords", "Distinct keywords"
        ),
    }

    def collect() -> None:
        for field, gauge in gauges.items():
            gauge.set(getattr(stats, field), **labels)

    registry.register_collector(collect)
    return collect


def bind_fault_injector(
    injector: "FaultInjector",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Mirror a chaos :class:`FaultInjector`'s counters into the registry."""
    if registry is None:
        registry = get_registry()
    injected = registry.counter(
        "repro_faults_injected_transients_total", "Transient read faults injected"
    )
    observed = registry.counter(
        "repro_faults_observed_reads_total", "Physical reads seen by the injector"
    )
    corrupted = registry.counter(
        "repro_faults_corrupted_pages_total", "Pages deliberately corrupted"
    )

    def collect() -> None:
        injected.set_total(injector.injected_transients, **labels)
        observed.set_total(injector.observed_reads, **labels)
        corrupted.set_total(len(injector.corrupted_pages), **labels)

    registry.register_collector(collect)
    return collect


def bind_landmark_clamps(
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Mirror the process-wide landmark-count clamp counter.

    :func:`repro.network.landmarks.clamp_events` counts every
    ``LandmarkIndex.build`` call whose requested ``num_landmarks`` exceeded
    the graph size and was clamped — a sizing-misconfiguration signal worth
    a dashboard line even though each individual clamp is benign.
    """
    if registry is None:
        registry = get_registry()
    clamps = registry.counter(
        "repro_index_landmark_clamps_total",
        "LandmarkIndex builds whose landmark count was clamped to the graph size",
    )

    def collect() -> None:
        from repro.network.landmarks import clamp_events

        clamps.set_total(clamp_events(), **labels)

    registry.register_collector(collect)
    return collect


def bind_database(
    database: "TrajectoryDatabase",
    registry: MetricsRegistry | None = None,
    **labels,
) -> Collector:
    """Bind a database's cross-query caches (one collector for both)."""
    if registry is None:
        registry = get_registry()
    collectors = [
        bind_cache_stats(stats, cache=name, registry=registry, **labels)
        for name, stats in database.caches.stats().items()
    ]

    def collect() -> None:
        for collector in collectors:
            collector()

    return collect
