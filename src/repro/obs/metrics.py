"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` aggregates everything a serving process wants
on a dashboard.  Instruments are created get-or-create by name (so every
layer can cheaply resolve the counter it increments), support optional
labels, and export two ways:

- :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / sample lines), directly
  scrapeable or checkable line by line;
- :meth:`MetricsRegistry.snapshot` — a plain nested dict for JSON logging.

Naming convention (see DESIGN.md §8): ``repro_<subsystem>_<what>[_total]``
with ``_total`` reserved for monotone counters, base units (seconds, not
ms) in histograms, and the subsystem one of ``service``, ``search``,
``storage``, ``cache``, ``executor``, ``faults``, ``dataset``.

The registry of record is the module-level default
(:func:`get_registry`) — process-wide, fork-inherited copy-on-write like
the caches (a forked worker's increments die with it; the parent
re-aggregates worker results through the service layer).  Components take
an optional explicit registry so tests can isolate themselves.

Collectors bridge pull-style sources: a callable registered with
:meth:`MetricsRegistry.register_collector` runs before every export and
publishes current values from live stats objects (the adapter layer in
:mod:`repro.obs.adapters` is built on this).
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "DRIFT_BUCKETS",
    "get_registry",
    "set_registry",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

#: Default latency buckets, in seconds (sub-ms to tens of seconds).
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Service latency buckets: the defaults extended down to 10 microseconds.
#: Result-cache hits serve in O(1) — tens of microseconds — and all landed
#: in DEFAULT_BUCKETS' lowest (0.5 ms) bucket, making the hit path's
#: latency distribution invisible.  Used by the per-query service latency
#: histogram; other histograms keep the coarser defaults.
LATENCY_BUCKETS = (0.00001, 0.000025, 0.00005, 0.0001, 0.00025) + DEFAULT_BUCKETS

#: Buckets for plan-vs-actual drift ratios (measured work / estimated
#: cost).  Estimates are worst-case bounds, so most mass sits well below
#: 1.0; the >1.0 buckets catch genuine planner under-estimates.
DRIFT_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0)

_INF = float("inf")


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _escape(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Instrument:
    """Shared shape of one named metric family (all label sets).

    Every mutation and every read goes through a per-instrument lock:
    one instrument is shared by every thread submitting through a
    service, and ``+=`` on a dict slot is not atomic under free-threaded
    interleavings.  The lock is uncontended in the common case and far
    cheaper than a lost increment is confusing.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    @staticmethod
    def _check_labels(labels: dict) -> dict:
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        return labels

    @staticmethod
    def _render_labels(key: tuple) -> str:
        if not key:
            return ""
        inner = ",".join(f'{name}="{_escape(value)}"' for name, value in key)
        return "{" + inner + "}"


class Counter(_Instrument):
    """A monotonically increasing count (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (>= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        key = _label_key(self._check_labels(labels))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, total: float, **labels) -> None:
        """Publish an externally accumulated monotone total.

        The adapter seam: the stats dataclasses already accumulate, so
        collectors mirror their totals instead of double-counting.  The
        value must not regress.
        """
        key = _label_key(self._check_labels(labels))
        with self._lock:
            if total < self._values.get(key, 0.0):
                raise ValueError(
                    f"counter {self.name} would regress from "
                    f"{self._values[key]} to {total}"
                )
            self._values[key] = float(total)

    def value(self, **labels) -> float:
        """Current count of the labelled series (0 if never touched)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterable[tuple[str, float]]:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield f"{self.name}{self._render_labels(key)}", value

    def snapshot_value(self):
        with self._lock:
            values = dict(self._values)
        if set(values) == {()}:
            return values[()]
        return {
            self._render_labels(key) or "": value
            for key, value in sorted(values.items())
        }


class Gauge(Counter):
    """A value that can go up and down (current in-flight, hit rate, ...)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(self._check_labels(labels))
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels) -> None:
        """Set the labelled series to ``value``."""
        key = _label_key(self._check_labels(labels))
        with self._lock:
            self._values[key] = float(value)

    set_total = set  # gauges have no monotonicity to protect


class Histogram(_Instrument):
    """Fixed-bucket distribution (cumulative buckets, Prometheus-style)."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ):
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.buckets = bounds
        # Per label set: [per-bucket counts..., +Inf count], sum, count.
        self._series: dict[tuple, list] = {}

    def _series_for(self, labels: dict) -> list:
        key = _label_key(self._check_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = [[0] * (len(self.buckets) + 1), 0.0, 0]
        return series

    def observe(self, value: float, **labels) -> None:
        """Record one observation."""
        with self._lock:
            counts, total, n = series = self._series_for(labels)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
            series[1] = total + value
            series[2] = n + 1

    def count(self, **labels) -> int:
        """Observations recorded for the labelled series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[2] if series else 0

    def sum(self, **labels) -> float:
        """Sum of observed values for the labelled series."""
        with self._lock:
            series = self._series.get(_label_key(labels))
            return series[1] if series else 0.0

    def _snapshot_series(self) -> list[tuple[tuple, list, float, int]]:
        with self._lock:
            return [
                (key, list(counts), total, n)
                for key, (counts, total, n) in sorted(self._series.items())
            ]

    def samples(self) -> Iterable[tuple[str, float]]:
        for key, counts, total, n in self._snapshot_series():
            cumulative = 0
            for bound, bucket_count in zip(
                self.buckets + (_INF,), counts
            ):
                cumulative += bucket_count
                bucket_key = key + (("le", _format_value(bound)),)
                yield (
                    f"{self.name}_bucket{self._render_labels(bucket_key)}",
                    cumulative,
                )
            yield f"{self.name}_sum{self._render_labels(key)}", total
            yield f"{self.name}_count{self._render_labels(key)}", n

    def snapshot_value(self):
        out = {}
        for key, counts, total, n in self._snapshot_series():
            out[self._render_labels(key) or ""] = {
                "buckets": {
                    _format_value(bound): count
                    for bound, count in zip(self.buckets + (_INF,), counts)
                },
                "sum": total,
                "count": n,
            }
        return out


class MetricsRegistry:
    """Get-or-create home of every instrument in one process.

    Instrument creation and collector registration are lock-guarded (they
    happen at wiring time); increments take a per-instrument lock so
    threads submitting through one service never lose counts (see
    ``_Instrument``).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._collectors: list[Callable[[], None]] = []

    # ------------------------------------------------------------- creation
    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the named counter."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the named gauge."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the named histogram (buckets fixed at creation)."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector()`` before every export to publish pull values."""
        with self._lock:
            self._collectors.append(collector)

    # ------------------------------------------------------ harvest seam
    def counter_deltas(self) -> tuple:
        """Serialize every counter as ``(name, help, ((labels, value), ...))``.

        The worker half of the cross-process harvest protocol (see
        :mod:`repro.obs.harvest`): a forked worker accumulates into a
        *fresh* registry, so its counter values ARE the deltas its task
        produced, and the tuples pickle cleanly back to the parent.
        Gauges and histograms are deliberately excluded — only monotone
        counts merge associatively across processes.
        """
        with self._lock:
            counters = [
                inst for inst in self._instruments.values()
                if type(inst) is Counter
            ]
        out = []
        for counter in sorted(counters, key=lambda c: c.name):
            with counter._lock:
                values = tuple(sorted(counter._values.items()))
            out.append((counter.name, counter.help, values))
        return tuple(out)

    def merge_counter_deltas(self, deltas: tuple) -> None:
        """Fold :meth:`counter_deltas` rows into this registry's counters.

        The parent half of the harvest: additions per labelled series, so
        merging commutes across workers and never collides with the
        ``set_total`` collectors mirroring parent-side stats objects (the
        harvested names live in their own ``repro_worker_*`` namespace).
        Rows fold under the counter lock directly rather than through
        ``inc``: the keys are verbatim ``_values`` keys from the worker's
        :meth:`counter_deltas`, already canonical, and this merge sits on
        the per-result serving path of every harvested query.
        """
        for name, help, values in deltas:
            counter = self.counter(name, help)
            with counter._lock:
                counter_values = counter._values
                for key, value in values:
                    if value:
                        counter_values[key] = counter_values.get(key, 0.0) + value

    # --------------------------------------------------------------- export
    def collect(self) -> None:
        """Run every registered collector (export does this for you)."""
        for collector in list(self._collectors):
            collector()

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every instrument."""
        self.collect()
        lines: list[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {_escape(instrument.help)}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for sample_name, value in instrument.samples():
                lines.append(f"{sample_name} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """A JSON-ready ``{metric name: value}`` view of the registry."""
        self.collect()
        return {
            name: instrument.snapshot_value()
            for name, instrument in sorted(self._instruments.items())
        }

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"


#: The process-wide default registry (see the module docstring).
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default (returns the previous one).

    For tests and embedders that want a clean slate; production processes
    keep the module default for their whole lifetime.
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
