"""Cross-process telemetry harvest: worker spans and counters come home.

The fork executor (:mod:`repro.parallel.executor`) runs searches in forked
worker processes whose memory — including any spans or metric increments
they record — is copy-on-write private and dies with the worker.  Before
this module, the parent's trace showed a forked ``shard[i]`` as an opaque
box and the process registry never saw worker-side work.

The harvest protocol closes that gap in three steps:

1. **Capture (worker side).**  At fork time the parent stages a harvest
   config (:func:`harvest_config`) in the worker handoff payload.  Each
   worker task runs inside :func:`collecting`, which activates a fresh
   bounded :class:`~repro.obs.trace.Tracer` (same per-trace caps as the
   parent's) and, when metric harvesting is on, a fresh
   :class:`~repro.obs.metrics.MetricsRegistry`.  Because both start
   empty, whatever they hold afterwards *is* the task's delta.
2. **Serialize.**  :meth:`HarvestCollector.telemetry` flattens the span
   trees to their JSONL dict shape and the registry to counter-delta
   tuples — a plain picklable :class:`WorkerTelemetry` that rides back
   alongside each ``SearchResult``.
3. **Graft and merge (parent side).**  The parent grafts the worker's
   span trees under the owning ``query``/``shard[i]`` span via
   :meth:`~repro.obs.trace.Tracer.graft` (through the trace's buffer
   caps) and folds the counter deltas into the harvest *sink* registry
   via :meth:`~repro.obs.metrics.MetricsRegistry.merge_counter_deltas`.

State-ownership rules (DESIGN.md §13): a child's tracer/registry are
created by, owned by, and die with that child — the parent only ever sees
their serialized form, and the merge targets live in its own namespace.
Worker deltas are published under dedicated ``repro_worker_*`` counters
rather than the parent's ``repro_search_*`` series: those are mirrored
from parent-side stats objects with ``set_total`` (which forbids external
increments), and the parent already merges worker *result stats* into its
stats objects — double-publishing the same work under one name would
double-count it.

The *sink* is the registry worker counter deltas merge into.  By default
there is none (metric harvest off — span harvest alone follows the
ambient tracer); :func:`sink_to` installs one for a dynamic extent, which
is what :class:`~repro.service.service.QueryService` does around every
query when built with ``metrics=``.  Crashed workers ship nothing: the
executor emits a ``telemetry_lost`` trace event so a stitched trace is
explicit about which shard's telemetry vanished rather than silently thin.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, activated, current_tracer

__all__ = [
    "WorkerTelemetry",
    "HarvestCollector",
    "collecting",
    "harvest_config",
    "current_sink",
    "sink_to",
    "graft_telemetry",
    "merge_telemetry",
]

#: Worker-side counter names (the parent-facing ``repro_worker_*``
#: namespace).  Kept here so capture and tests agree on the vocabulary.
WORKER_COUNTERS = {
    "tasks": ("repro_worker_tasks_total", "Tasks completed inside forked workers, by kind"),
    "elapsed": ("repro_worker_elapsed_seconds_total", "Wall time spent inside forked worker tasks"),
    "expanded": ("repro_worker_expanded_vertices_total", "Vertices settled inside forked workers"),
    "visited": ("repro_worker_visited_trajectories_total", "Trajectories visited inside forked workers"),
    "evaluations": ("repro_worker_similarity_evaluations_total", "Exact similarity evaluations inside forked workers"),
    "refinements": ("repro_worker_refinements_total", "Refinements computed inside forked workers"),
    "failed": ("repro_worker_failed_tasks_total", "Worker tasks that produced an error-marked result"),
}


@dataclass(frozen=True)
class WorkerTelemetry:
    """One worker task's serialized diagnostics (plain, picklable).

    ``spans`` holds the worker tracer's finished roots in
    :meth:`~repro.obs.trace.Span.to_dict` shape; ``counters`` the
    :meth:`~repro.obs.metrics.MetricsRegistry.counter_deltas` rows;
    ``dropped_spans``/``dropped_events`` the worker-side cap overflow
    (also embedded per root in ``spans``, which is what the parent-side
    graft actually counts).
    """

    spans: tuple = ()
    counters: tuple = ()
    dropped_spans: int = 0
    dropped_events: int = 0
    pid: int = 0

    @property
    def empty(self) -> bool:
        return not (self.spans or self.counters)


class HarvestCollector:
    """Worker-side capture context: one fresh tracer (+ registry) per task."""

    def __init__(
        self,
        spans: bool = True,
        metrics: bool = True,
        max_spans: int = 4096,
        max_events: int = 1024,
    ):
        # max_traces stays small: one task produces a handful of roots at
        # most (a search records exactly one plan+execute tree).
        self.tracer = Tracer(
            enabled=spans, max_spans=max_spans, max_events=max_events,
            max_traces=32,
        )
        self.registry = MetricsRegistry() if metrics else None

    def record_result(self, result, kind: str) -> None:
        """Fold one task's result stats into the worker counter namespace."""
        if result is None:
            return
        self.record_stats(result.stats, kind, failed=result.error is not None)

    def record_stats(self, stats, kind: str, failed: bool = False) -> None:
        """Fold one task's :class:`SearchStats` into the worker counters."""
        if self.registry is None:
            return
        registry = self.registry
        registry.counter(*WORKER_COUNTERS["tasks"]).inc(kind=kind)
        registry.counter(*WORKER_COUNTERS["elapsed"]).inc(
            max(0.0, stats.elapsed_seconds), kind=kind
        )
        for key, value in (
            ("expanded", stats.expanded_vertices),
            ("visited", stats.visited_trajectories),
            ("evaluations", stats.similarity_evaluations),
            ("refinements", stats.refinements),
        ):
            if value:
                registry.counter(*WORKER_COUNTERS[key]).inc(value, kind=kind)
        if failed:
            registry.counter(*WORKER_COUNTERS["failed"]).inc(kind=kind)

    def telemetry(self) -> WorkerTelemetry:
        """Serialize everything captured so far (picklable)."""
        spans = tuple(root.to_dict() for root in self.tracer.traces)
        counters = (
            self.registry.counter_deltas() if self.registry is not None else ()
        )
        return WorkerTelemetry(
            spans=spans,
            counters=counters,
            dropped_spans=self.tracer.dropped_spans_total,
            dropped_events=self.tracer.dropped_events_total,
            pid=os.getpid(),
        )


@contextmanager
def collecting(config: dict):
    """Run a worker task under its own harvest collector.

    ``config`` is the dict :func:`harvest_config` staged through the fork
    handoff.  The collector's tracer is activated as the ambient tracer
    for the dynamic extent, so the existing instrumentation (``query`` /
    ``plan`` / ``execute`` spans, stage timers) records into it unchanged.
    """
    collector = HarvestCollector(
        spans=config.get("spans", True),
        metrics=config.get("metrics", True),
        max_spans=config.get("max_spans", 4096),
        max_events=config.get("max_events", 1024),
    )
    with activated(collector.tracer):
        yield collector


# --------------------------------------------------------------- parent side
#: The registry worker counter deltas merge into; ``None`` = metric
#: harvest off.  Swapped only via :func:`sink_to`.  Thread-local for the
#: same reason as the ambient tracer (see :mod:`repro.obs.trace`): gateway
#: worker threads install the sink around their own query blocks, and a
#: process-wide global would let one thread's exit switch every other
#: thread's harvest off mid-query.  The install and the merge always
#: happen on the same thread (``QueryService._traced`` wraps the whole
#: execution), so a thread-local is the correct scope.
_SINK = threading.local()


def current_sink() -> MetricsRegistry | None:
    """The registry harvested worker counters merge into (or ``None``)."""
    return getattr(_SINK, "registry", None)


@contextmanager
def sink_to(registry: MetricsRegistry):
    """Install ``registry`` as the calling thread's harvest sink for the
    dynamic extent."""
    previous = getattr(_SINK, "registry", None)
    _SINK.registry = registry
    try:
        yield registry
    finally:
        _SINK.registry = previous


def harvest_config() -> dict | None:
    """The harvest config to stage at fork time, or ``None`` for off.

    Span harvest follows the ambient tracer (workers inherit the parent's
    per-trace caps so a forked query obeys the same memory bounds as a
    sequential one); metric harvest follows the installed sink.  When
    neither is on, the fork paths skip the harvest entirely — the
    off-by-default cost is one global read per batch.
    """
    tracer = current_tracer()
    spans = tracer.enabled
    metrics = current_sink() is not None
    if not (spans or metrics):
        return None
    return {
        "spans": spans,
        "metrics": metrics,
        "max_spans": tracer.max_spans if spans else 4096,
        "max_events": tracer.max_events if spans else 1024,
    }


def graft_telemetry(tracer: Tracer, parent_span, telemetry: WorkerTelemetry) -> int:
    """Graft a worker's span trees under ``parent_span``; returns roots kept.

    Worker-side drop counts travel inside the serialized roots and are
    folded into the parent trace by :meth:`Tracer.graft` itself.
    """
    if telemetry is None or parent_span is None or not tracer.enabled:
        return 0
    kept = 0
    for record in telemetry.spans:
        if tracer.graft(parent_span, record) is not None:
            kept += 1
    return kept


def merge_telemetry(telemetry: WorkerTelemetry | None) -> None:
    """Merge a worker's counter deltas into the current sink (if any)."""
    if telemetry is None or not telemetry.counters:
        return
    sink = current_sink()
    if sink is not None:
        sink.merge_counter_deltas(telemetry.counters)
