"""The slow-query journal: a bounded ring of the worst queries served.

Tail latency is diagnosed from examples, not averages.  A
:class:`SlowQueryJournal` keeps the worst-``capacity`` queries whose
latency crossed ``threshold_ms``, each entry carrying everything a
post-hoc "why was this slow?" needs: the canonical query fingerprint
(:func:`repro.perf.result_cache.query_fingerprint`), the plan the
optimizer would build for it (``QueryPlan.describe()``), the merged work
counters, the plan-vs-actual drift ratio, and — when the service traces —
the stitched trace tree including harvested worker spans
(:mod:`repro.obs.harvest`).

Admission is worst-N, not first-N: a min-heap on latency evicts the
mildest entry when a slower query arrives, so a long-running service
converges on its true tail instead of whatever happened early.  Capture
stays off the serving path twice over: callers gate entry construction
behind the cheap :meth:`would_record` pre-check, and the one genuinely
expensive artifact — re-planning the query for its describe text — is
deferred to render time via ``plan_provider`` (an evicted entry never
pays it at all).  The journal itself only ever stores bounded state.

The journal is service-agnostic plumbing: :class:`~repro.service.service.
QueryService` feeds it from its single recording path, ``repro slowlog``
renders it, and :func:`repro.obs.adapters.bind_slowlog` mirrors it as
``repro_slowlog_*`` metrics.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.results import SearchStats
from repro.obs.trace import Span, format_trace

__all__ = ["SlowLogEntry", "SlowQueryJournal"]


@dataclass
class SlowLogEntry:
    """One journaled slow query (everything needed to re-diagnose it)."""

    fingerprint: tuple
    algorithm: str
    latency_seconds: float
    stats: SearchStats
    plan_text: str = ""
    #: Lazy describe: called (once) at render time when ``plan_text`` is
    #: empty, so the serving path never pays a re-plan for an entry
    #: nobody ever looks at.
    plan_provider: Callable[[], str] | None = None
    trace: Span | None = None
    #: Measured work / ``estimated_cost`` (``None`` when the plan carried
    #: no estimate or the query failed before doing accountable work).
    drift_ratio: float | None = None
    degradation_reason: str | None = None
    error: str | None = None
    recorded_at: float = field(default_factory=time.time)

    def plan(self) -> str:
        """The plan describe text, resolving the lazy provider once.

        A failed provider (the query no longer plans — e.g. the database
        mutated underneath it) degrades to an empty plan section rather
        than poisoning the journal readout.
        """
        if not self.plan_text and self.plan_provider is not None:
            try:
                self.plan_text = self.plan_provider()
            except Exception:
                pass
            self.plan_provider = None
        return self.plan_text

    def render(self, include_trace: bool = False) -> str:
        """A human-readable block for the CLI / logs."""
        lines = [
            f"latency:      {self.latency_seconds * 1000.0:.3f} ms"
            f"  ({self.algorithm})",
            f"fingerprint:  {self.fingerprint}",
        ]
        if self.drift_ratio is not None:
            lines.append(
                f"plan drift:   actual/estimated = {self.drift_ratio:.3f} "
                f"(estimated {self.stats.estimated_cost:.0f} units, "
                f"measured {self.stats.expanded_vertices + self.stats.similarity_evaluations})"
            )
        if self.error is not None:
            lines.append(f"error:        {self.error}")
        elif self.degradation_reason is not None:
            lines.append(f"degraded:     {self.degradation_reason}")
        stats = self.stats
        lines.append(
            f"work:         {stats.visited_trajectories} visited, "
            f"{stats.expanded_vertices} expanded, "
            f"{stats.similarity_evaluations} evaluations, "
            f"{stats.refinements} refinements"
        )
        if stats.shards_planned:
            lines.append(
                f"shards:       {stats.shards_planned} planned, "
                f"{stats.shards_executed} executed, "
                f"{stats.shards_pruned} pruned "
                f"({stats.shard_seconds * 1000.0:.3f} ms summed)"
            )
        plan_text = self.plan()
        if plan_text:
            lines.append("plan:")
            lines.extend(f"  {line}" for line in plan_text.splitlines())
        if include_trace and self.trace is not None:
            lines.append("trace:")
            lines.extend(f"  {line}" for line in format_trace(self.trace).splitlines())
        return "\n".join(lines)


class SlowQueryJournal:
    """Thread-safe bounded worst-N journal of slow queries.

    Parameters
    ----------
    capacity:
        Entries kept; the mildest is evicted when a slower query arrives.
    threshold_ms:
        Minimum latency to be considered at all.  ``0.0`` (the default)
        journals the worst-N of *all* queries — useful on a fresh service
        whose tail is not yet known.
    """

    def __init__(self, capacity: int = 32, threshold_ms: float = 0.0):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if threshold_ms < 0.0:
            raise ValueError(f"threshold_ms must be >= 0, got {threshold_ms}")
        self.capacity = capacity
        self.threshold_seconds = threshold_ms / 1000.0
        self._lock = threading.Lock()
        # Min-heap of (latency, seq, entry): heap[0] is the mildest entry.
        self._heap: list[tuple[float, int, SlowLogEntry]] = []
        self._seq = 0
        #: Entries ever admitted / evicted by a worse one (monotone; the
        #: scrape surface for ``repro_slowlog_*_total``).
        self.recorded = 0
        self.evicted = 0

    def would_record(self, latency_seconds: float) -> bool:
        """Whether a query at this latency would be journaled *now*.

        The cheap pre-check the service gates capture cost (plan describe,
        trace serialization) behind; :meth:`record` re-checks under the
        lock, so a lost race costs one wasted capture, never a bad entry.
        """
        if latency_seconds < self.threshold_seconds:
            return False
        with self._lock:
            return (
                len(self._heap) < self.capacity
                or latency_seconds > self._heap[0][0]
            )

    def record(self, entry: SlowLogEntry) -> bool:
        """Admit an entry (worst-N policy); returns whether it was kept."""
        if entry.latency_seconds < self.threshold_seconds:
            return False
        with self._lock:
            item = (entry.latency_seconds, self._seq, entry)
            self._seq += 1
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, item)
            elif entry.latency_seconds > self._heap[0][0]:
                heapq.heapreplace(self._heap, item)
                self.evicted += 1
            else:
                return False
            self.recorded += 1
            return True

    # -------------------------------------------------------------- readouts
    def entries(self) -> list[SlowLogEntry]:
        """Journaled entries, worst first."""
        with self._lock:
            items = list(self._heap)
        return [
            entry
            for _, _, entry in sorted(items, key=lambda t: (-t[0], t[1]))
        ]

    def worst_seconds(self) -> float:
        """Latency of the worst journaled query (0.0 while empty)."""
        with self._lock:
            return max((lat for lat, _, _ in self._heap), default=0.0)

    def clear(self) -> None:
        """Drop every entry (the monotone counters are unaffected)."""
        with self._lock:
            self._heap.clear()

    def describe(self, top: int | None = None, include_trace: bool = False) -> str:
        """Render the journal, worst first (the ``repro slowlog`` body)."""
        entries = self.entries()
        held = len(entries)
        if top is not None:
            entries = entries[:top]
        if not entries:
            return (
                "slow-query journal: empty "
                f"(threshold {self.threshold_seconds * 1000.0:.1f} ms)"
            )
        lines = [
            f"slow-query journal: {held} of {self.capacity} slots, "
            f"threshold {self.threshold_seconds * 1000.0:.1f} ms, "
            f"{self.recorded} recorded, {self.evicted} evicted"
        ]
        for rank, entry in enumerate(entries, 1):
            lines.append("")
            lines.append(f"#{rank}")
            lines.extend(
                f"  {line}"
                for line in entry.render(include_trace=include_trace).splitlines()
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"SlowQueryJournal({len(self)}/{self.capacity} entries, "
            f"threshold {self.threshold_seconds * 1000.0:.1f} ms)"
        )
