"""Observability: structured tracing + a process-wide metrics registry.

Pure-stdlib measurement substrate for the plan/execute/serve stack:

- :mod:`repro.obs.trace` — nested span trees (query → plan → stage →
  round), ambient activation, JSONL export, CLI rendering;
- :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  with Prometheus text exposition and a JSON snapshot;
- :mod:`repro.obs.adapters` — collectors mirroring the existing stats
  classes into the registry;
- :mod:`repro.obs.harvest` — the cross-process telemetry harvest that
  brings forked workers' spans and counter deltas home;
- :mod:`repro.obs.slowlog` — the bounded worst-N slow-query journal.

See DESIGN.md §8 for the span model, naming convention, and overhead
budget, and §13 for the harvest protocol, slow-query journal, and
plan-drift accounting.
"""

from repro.obs.adapters import (
    bind_buffer_stats,
    bind_cache_stats,
    bind_database,
    bind_fault_injector,
    bind_network_stats,
    bind_search_stats,
    bind_service_stats,
    bind_slowlog,
    bind_tracer,
    bind_trajectory_stats,
)
from repro.obs.harvest import HarvestCollector, WorkerTelemetry
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.slowlog import SlowLogEntry, SlowQueryJournal
from repro.obs.trace import (
    Span,
    StageTimer,
    Tracer,
    activated,
    current_tracer,
    format_trace,
)

__all__ = [
    "Span",
    "StageTimer",
    "Tracer",
    "activated",
    "current_tracer",
    "format_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "WorkerTelemetry",
    "HarvestCollector",
    "SlowLogEntry",
    "SlowQueryJournal",
    "bind_search_stats",
    "bind_service_stats",
    "bind_tracer",
    "bind_slowlog",
    "bind_buffer_stats",
    "bind_cache_stats",
    "bind_network_stats",
    "bind_trajectory_stats",
    "bind_fault_injector",
    "bind_database",
]
