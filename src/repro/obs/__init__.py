"""Observability: structured tracing + a process-wide metrics registry.

Pure-stdlib measurement substrate for the plan/execute/serve stack:

- :mod:`repro.obs.trace` — nested span trees (query → plan → stage →
  round), ambient activation, JSONL export, CLI rendering;
- :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  with Prometheus text exposition and a JSON snapshot;
- :mod:`repro.obs.adapters` — collectors mirroring the existing stats
  classes into the registry.

See DESIGN.md §8 for the span model, naming convention, and overhead
budget.
"""

from repro.obs.adapters import (
    bind_buffer_stats,
    bind_cache_stats,
    bind_database,
    bind_fault_injector,
    bind_network_stats,
    bind_search_stats,
    bind_service_stats,
    bind_trajectory_stats,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.trace import (
    Span,
    StageTimer,
    Tracer,
    activated,
    current_tracer,
    format_trace,
)

__all__ = [
    "Span",
    "StageTimer",
    "Tracer",
    "activated",
    "current_tracer",
    "format_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "bind_search_stats",
    "bind_service_stats",
    "bind_buffer_stats",
    "bind_cache_stats",
    "bind_network_stats",
    "bind_trajectory_stats",
    "bind_fault_injector",
    "bind_database",
]
