"""Structured tracing: where did this query spend its time?

A :class:`Tracer` produces nested :class:`Span` trees — query → plan →
stage → expansion round / refinement batch / storage read — with monotonic
wall-clock timing (``time.perf_counter``), free-form span attributes
(expansions, ALT prunes, cache hits, retries, fault injections), bounded
per-query buffers, and JSONL export.  It is the measurement substrate the
metrics registry (:mod:`repro.obs.metrics`) aggregates and the ``repro
trace`` CLI renders.

Design constraints, in order:

- **Off by default, ~zero cost when off.**  The ambient tracer is a
  disabled singleton; instrumented code checks one ``enabled`` attribute
  (or holds ``None``) and skips everything else.  Nothing in the library
  ever *requires* a tracer.
- **Bounded.**  A trace records at most ``max_spans`` spans and
  ``max_events`` point events per root span; overflow is counted
  (``dropped_spans`` / ``dropped_events``), never stored — a pathological
  query cannot eat the heap.  Finished traces keep only the most recent
  ``max_traces`` roots.
- **Cheap per-round accounting.**  Pipeline stages repeat thousands of
  times per query; :class:`StageTimer` attributes wall time to the current
  stage with *one* ``perf_counter`` call per stage transition, so the
  per-stage breakdown sums to the query total by construction (the
  acceptance bar: within 10%).
- **Fork-safe, like the caches.**  State is plain process memory shared
  copy-on-write; forked workers mutate their private copies and the parent
  never sees them *directly*.  Worker span trees come home through the
  harvest protocol (:mod:`repro.obs.harvest`): each worker runs under its
  own tracer, serializes its finished roots, and the parent grafts them
  under the owning span via :meth:`Tracer.graft` — through the same
  per-trace buffer caps as locally recorded spans.  Export
  (:meth:`Tracer.export_jsonl`) is an explicit parent-side call, so
  concurrent children never interleave writes.

Activation is ambient: ``with activated(tracer): ...`` installs the tracer
process-wide for the dynamic extent of a call, and instrumented layers pick
it up via :func:`current_tracer` — the searchers stay stateless and the
:class:`~repro.core.plan.Searcher` protocol keeps its signature.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = [
    "Span",
    "StageTimer",
    "Tracer",
    "activated",
    "current_tracer",
    "format_trace",
]

_perf_counter = time.perf_counter


class Span:
    """One timed node of a trace tree.

    ``duration_s`` is wall time between :meth:`finish` and construction for
    ordinary spans.  *Aggregated* spans (created via
    :meth:`Span.aggregate`) instead carry the accumulated duration of many
    repetitions of a stage — their ``calls`` attribute says how many — so a
    hot loop costs one span, not thousands.
    """

    __slots__ = (
        "name",
        "started_s",
        "duration_s",
        "attributes",
        "children",
        "events",
        "dropped_spans",
        "dropped_events",
        "_trace_started",
        "_recorded_spans",
        "_recorded_events",
    )

    def __init__(self, name: str, trace_started: float | None = None):
        self.name = name
        now = _perf_counter()
        self._trace_started = trace_started if trace_started is not None else now
        #: Offset from the root span's start, in seconds.
        self.started_s = now - self._trace_started
        self.duration_s = 0.0
        self.attributes: dict = {}
        self.children: list[Span] = []
        self.events: list[dict] = []
        self.dropped_spans = 0
        self.dropped_events = 0
        # Root-span bookkeeping for the tracer's per-trace buffer bounds.
        self._recorded_spans = 1
        self._recorded_events = 0

    # ------------------------------------------------------------ recording
    def set(self, key: str, value) -> None:
        """Set one span attribute."""
        self.attributes[key] = value

    def update(self, attributes: dict) -> None:
        """Merge a batch of attributes."""
        self.attributes.update(attributes)

    def finish(self) -> None:
        """Stamp the duration from the monotonic clock."""
        self.duration_s = _perf_counter() - self._trace_started - self.started_s

    def aggregate(self, name: str, seconds: float, calls: int, **attributes) -> "Span":
        """Attach an aggregated child covering ``calls`` repetitions."""
        child = Span(name, self._trace_started)
        child.started_s = self.started_s
        child.duration_s = seconds
        child.attributes["calls"] = calls
        child.attributes.update(attributes)
        self.children.append(child)
        return child

    # -------------------------------------------------------------- export
    def to_dict(self) -> dict:
        """A JSON-ready nested dict (the JSONL record shape)."""
        record = {
            "name": self.name,
            "started_s": round(self.started_s, 9),
            "duration_s": round(self.duration_s, 9),
        }
        if self.attributes:
            record["attributes"] = self.attributes
        if self.events:
            record["events"] = self.events
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        if self.dropped_spans:
            record["dropped_spans"] = self.dropped_spans
        if self.dropped_events:
            record["dropped_events"] = self.dropped_events
        return record

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_s * 1000:.3f} ms, "
            f"{len(self.children)} children)"
        )


class StageTimer:
    """Attribute wall time to named stages, one clock read per transition.

    ``enter(stage)`` charges the time since the previous transition to the
    stage that was running and makes ``stage`` current; ``stop()`` closes
    the last stage.  Because every instant between ``start`` and ``stop``
    belongs to exactly one stage, the per-stage totals sum to the overall
    elapsed time minus nothing — the property the trace rendering's
    "stage times sum to total" check rides on.
    """

    __slots__ = ("seconds", "calls", "_current", "_mark")

    def __init__(self):
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self._current: str | None = None
        self._mark = _perf_counter()

    def enter(self, stage: str) -> None:
        """Close the running stage and start ``stage``."""
        now = _perf_counter()
        current = self._current
        if current is not None:
            self.seconds[current] = self.seconds.get(current, 0.0) + now - self._mark
        self.calls[stage] = self.calls.get(stage, 0) + 1
        self._current = stage
        self._mark = now

    def stop(self) -> None:
        """Close the running stage (idempotent)."""
        now = _perf_counter()
        current = self._current
        if current is not None:
            self.seconds[current] = self.seconds.get(current, 0.0) + now - self._mark
        self._current = None
        self._mark = now

    def attach_to(self, span: Span) -> None:
        """Publish the accumulated stages as aggregated children of ``span``."""
        self.stop()
        for stage, seconds in self.seconds.items():
            span.aggregate(stage, seconds, self.calls.get(stage, 0))


class Tracer:
    """Produces bounded, nested span trees and keeps the finished ones.

    Parameters
    ----------
    enabled:
        A disabled tracer refuses to record anything; every begin call
        returns ``None`` so instrumentation can guard with one ``is not
        None`` check.
    max_spans / max_events:
        Per-trace caps on recorded child spans and point events; overflow
        increments the root's ``dropped_spans`` / ``dropped_events``.
    max_traces:
        Finished root spans kept (oldest evicted first).
    """

    def __init__(
        self,
        enabled: bool = True,
        max_spans: int = 4096,
        max_events: int = 1024,
        max_traces: int = 256,
    ):
        if max_spans < 1 or max_events < 0 or max_traces < 1:
            raise ValueError("tracer buffer bounds must be positive")
        self.enabled = enabled
        self.max_spans = max_spans
        self.max_events = max_events
        self.max_traces = max_traces
        #: Finished root spans, oldest first (bounded by ``max_traces``).
        self.traces: list[Span] = []
        #: Lifetime dropped-overflow totals across every trace this tracer
        #: produced (per-root counts evict with their traces; these do
        #: not) — the scrape surface for ``repro_trace_dropped_*_total``.
        self.dropped_spans_total = 0
        self.dropped_events_total = 0
        # Per-thread open-span stack: concurrent submit() callers on one
        # service must not parent each other's spans.
        self._local = threading.local()

    # ------------------------------------------------------------ recording
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name: str, **attributes) -> Span | None:
        """Open a span (a root if none is open); ``None`` when disabled.

        Past ``max_spans`` recorded spans in the current trace the span is
        not materialised — the root counts it in ``dropped_spans`` and the
        caller gets ``None``, the same contract as a disabled tracer.
        """
        if not self.enabled:
            return None
        stack = self._stack()
        if stack:
            root = stack[0]
            if root._recorded_spans >= self.max_spans:
                root.dropped_spans += 1
                self.dropped_spans_total += 1
                return None
            root._recorded_spans += 1
            span = Span(name, root._trace_started)
            stack[-1].children.append(span)
        else:
            span = Span(name)
        if attributes:
            span.attributes.update(attributes)
        stack.append(span)
        return span

    def end(self, span: Span | None) -> None:
        """Finish ``span`` and pop it; finished roots join :attr:`traces`."""
        if span is None:
            return
        stack = self._stack()
        span.finish()
        # Tolerate unbalanced instrumentation (an exception may skip ends):
        # pop through to the span being ended.
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.finish()
        if not stack:
            self.traces.append(span)
            if len(self.traces) > self.max_traces:
                del self.traces[: len(self.traces) - self.max_traces]

    @contextmanager
    def span(self, name: str, **attributes):
        """Context-managed :meth:`begin`/:meth:`end` pair."""
        span = self.begin(name, **attributes)
        try:
            yield span
        finally:
            self.end(span)

    def event(self, name: str, **attributes) -> None:
        """Record a point event on the innermost open span (bounded).

        Events are for things with no meaningful duration at trace
        granularity — an injected fault, a retried read, a worker crash.
        With no open span (or a disabled tracer) the event is dropped
        silently: events decorate traces, they are not a log.
        """
        if not self.enabled:
            return
        stack = self._stack()
        if not stack:
            return
        root = stack[0]
        if root._recorded_events >= self.max_events:
            root.dropped_events += 1
            self.dropped_events_total += 1
            return
        root._recorded_events += 1
        record = {"name": name, "at_s": _perf_counter() - root._trace_started}
        if attributes:
            record.update(attributes)
        stack[-1].events.append(record)

    # ------------------------------------------------------------- grafting
    def graft(self, parent: Span | None, record: dict) -> Span | None:
        """Materialise a serialized span tree as a child of ``parent``.

        ``record`` is the :meth:`Span.to_dict` shape a forked worker
        shipped home (see :mod:`repro.obs.harvest`).  Grafted spans pass
        through the *current trace's* buffer caps exactly like locally
        recorded ones: overflow is counted on the root (and the tracer's
        lifetime totals), never stored.  Child timestamps are rebased so
        the worker's trace start lines up with ``parent.started_s`` —
        worker offsets stay internally consistent and sit inside the
        parent span on the rendered timeline.

        Returns the grafted root span, or ``None`` when disabled, capped,
        or ``parent`` is ``None``.
        """
        if not self.enabled or parent is None:
            return None
        stack = self._stack()
        root = stack[0] if stack else parent
        return self._graft_node(root, parent, record, parent.started_s)

    def _graft_node(
        self, root: Span, parent: Span, record: dict, rebase: float
    ) -> Span | None:
        if root._recorded_spans >= self.max_spans:
            # The whole subtree is over budget: count it without walking
            # every node (the cap is about memory, not about exact census
            # of work we refused to store).
            root.dropped_spans += 1
            self.dropped_spans_total += 1
            return None
        root._recorded_spans += 1
        span = Span(record.get("name", "worker"), root._trace_started)
        span.started_s = rebase + record.get("started_s", 0.0)
        span.duration_s = record.get("duration_s", 0.0)
        attributes = record.get("attributes")
        if attributes:
            span.attributes.update(attributes)
        for event in record.get("events", ()):
            if root._recorded_events >= self.max_events:
                root.dropped_events += 1
                self.dropped_events_total += 1
                continue
            root._recorded_events += 1
            rebased = dict(event)
            if "at_s" in rebased:
                rebased["at_s"] = rebase + rebased["at_s"]
            span.events.append(rebased)
        # Drops the worker already counted stay attributed to its subtree.
        self.count_remote_drops(
            record.get("dropped_spans", 0), record.get("dropped_events", 0),
            root=root,
        )
        parent.children.append(span)
        for child in record.get("children", ()):
            self._graft_node(root, span, child, rebase)
        return span

    def count_remote_drops(
        self, spans: int, events: int, root: Span | None = None
    ) -> None:
        """Fold drop counts that happened in another process into this
        tracer's totals (and the current root, so the rendered trace's
        "buffers full" line tells the whole-query truth)."""
        if not (spans or events):
            return
        self.dropped_spans_total += spans
        self.dropped_events_total += events
        if root is None:
            stack = self._stack()
            root = stack[0] if stack else None
        if root is not None:
            root.dropped_spans += spans
            root.dropped_events += events

    # -------------------------------------------------------------- export
    def last_trace(self) -> Span | None:
        """The most recently finished root span."""
        return self.traces[-1] if self.traces else None

    def export_jsonl(self, path: str | Path) -> int:
        """Write every finished trace as one JSON line; returns the count."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as sink:
            for root in self.traces:
                sink.write(json.dumps(root.to_dict(), sort_keys=True))
                sink.write("\n")
        return len(self.traces)

    def clear(self) -> None:
        """Drop all finished traces (open spans are unaffected)."""
        self.traces.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, traces={len(self.traces)})"


#: The ambient tracer when nothing is activated: permanently disabled.
_DISABLED = Tracer(enabled=False)

#: Per-thread active tracer (fork-inherited copy-on-write, like the
#: caches); swapped only via :func:`activated`.  Thread-local rather than
#: a process global: gateway worker threads activate around their own
#: query blocks, and with one shared global a thread finishing its block
#: would restore the *process* to disabled mid-way through every other
#: thread's still-open block, silently dropping their spans.  Activation
#: and the instrumented reads always happen on the same thread (the
#: service layer activates immediately around each searcher call), so a
#: thread-local is the correct scope.
_ACTIVE = threading.local()


def current_tracer() -> Tracer:
    """The ambient tracer instrumented layers record into.

    Disabled unless the *calling thread* is inside an :func:`activated`
    block, so the common case costs one thread-local read and one
    attribute check.
    """
    return getattr(_ACTIVE, "tracer", _DISABLED)


@contextmanager
def activated(tracer: Tracer):
    """Install ``tracer`` as the calling thread's ambient tracer for the
    dynamic extent.

    Nesting restores the previous tracer on exit.  The service layer wraps
    each searcher call in this, which is what lets stateless searchers
    trace without carrying observability configuration.  Each thread keeps
    its own activation; concurrent ``submit`` callers on one service never
    clobber each other's extents.
    """
    previous = getattr(_ACTIVE, "tracer", _DISABLED)
    _ACTIVE.tracer = tracer
    try:
        yield tracer
    finally:
        _ACTIVE.tracer = previous


# ------------------------------------------------------------------ rendering
def format_trace(root: Span, top_n: int = 5) -> str:
    """Render one trace: the nested breakdown tree plus the slowest spans.

    The per-stage lines show duration, share of the parent, and call counts
    for aggregated stages; a final section lists the ``top_n`` slowest
    spans across the whole tree (the "where did it go" shortlist).
    """
    lines: list[str] = []

    def pct(child: Span, parent: Span) -> str:
        if parent.duration_s <= 0:
            return "-"
        return f"{100.0 * child.duration_s / parent.duration_s:.1f}%"

    def walk(span: Span, parent: Span | None, depth: int) -> None:
        label = f"{'  ' * depth}{span.name}"
        calls = span.attributes.get("calls")
        suffix = f"  x{calls}" if calls is not None else ""
        share = f"  ({pct(span, parent)})" if parent is not None else ""
        lines.append(
            f"{label:<40} {span.duration_s * 1000:>10.3f} ms{share}{suffix}"
        )
        interesting = {
            key: value
            for key, value in span.attributes.items()
            if key != "calls" and value not in ("", None)
        }
        if interesting:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
            lines.append(f"{'  ' * (depth + 1)}| {rendered}")
        for event in span.events:
            name = event["name"]
            extras = ", ".join(
                f"{k}={v}" for k, v in event.items() if k not in ("name", "at_s")
            )
            lines.append(
                f"{'  ' * (depth + 1)}! {name} @ {event['at_s'] * 1000:.3f} ms"
                + (f" ({extras})" if extras else "")
            )
        for child in span.children:
            walk(child, span, depth + 1)

    walk(root, None, 0)
    if root.dropped_spans or root.dropped_events:
        lines.append(
            f"(buffers full: {root.dropped_spans} spans, "
            f"{root.dropped_events} events dropped)"
        )

    spans = [span for span in root.walk() if span is not root]
    if spans:
        slowest = sorted(spans, key=lambda s: s.duration_s, reverse=True)[:top_n]
        lines.append("")
        lines.append(f"top {len(slowest)} slowest spans:")
        for span in slowest:
            calls = span.attributes.get("calls")
            suffix = f" over {calls} calls" if calls is not None else ""
            lines.append(
                f"  {span.duration_s * 1000:>10.3f} ms  {span.name}{suffix}"
            )
    return "\n".join(lines)
