"""Synthetic road-network generators.

The paper evaluates on the Beijing Road Network (~28k vertices, ring+radial
topology) and the New York Road Network (~96k vertices, grid topology).
Neither dataset is redistributable here, so these generators produce networks
with the same scale and structural character:

- :func:`grid_network` — Manhattan-style lattice (NRN-like),
- :func:`ring_radial_network` — concentric ring roads crossed by radial
  avenues (BRN-like),
- :func:`random_geometric_network` — irregular suburban sprawl.

All generators return connected graphs, apply seeded coordinate jitter so
that edge lengths vary like real road segments, and randomly drop a fraction
of edges (never disconnecting the graph) to create the dead ends and
irregular blocks of real maps.
"""

from __future__ import annotations

import math
import random

from repro.errors import GraphError
from repro.network.builder import GraphBuilder
from repro.network.graph import SpatialNetwork

__all__ = ["grid_network", "ring_radial_network", "random_geometric_network"]


def grid_network(
    rows: int,
    cols: int,
    spacing: float = 100.0,
    jitter: float = 0.15,
    drop_fraction: float = 0.1,
    seed: int | None = None,
) -> SpatialNetwork:
    """A jittered ``rows x cols`` street lattice.

    ``jitter`` is the coordinate noise as a fraction of ``spacing``;
    ``drop_fraction`` is the share of lattice edges randomly removed (the
    graph is kept connected).
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid_network needs at least one row and one column")
    if spacing <= 0:
        raise GraphError("spacing must be positive")
    rng = random.Random(seed)
    builder = GraphBuilder()
    for r in range(rows):
        for c in range(cols):
            x = c * spacing + rng.gauss(0.0, jitter * spacing)
            y = r * spacing + rng.gauss(0.0, jitter * spacing)
            builder.add_vertex(x, y)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    builder.add_edges(edges)
    graph = builder.build()
    return _drop_edges(graph, drop_fraction, rng)


def ring_radial_network(
    rings: int,
    radials: int,
    ring_spacing: float = 500.0,
    jitter: float = 0.1,
    drop_fraction: float = 0.08,
    seed: int | None = None,
) -> SpatialNetwork:
    """Concentric ring roads crossed by radial avenues (Beijing-like).

    Produces ``rings * radials + 1`` vertices: a centre plus a polar lattice.
    Ring edges connect angular neighbours on the same ring; radial edges
    connect consecutive rings along the same bearing; the innermost ring
    connects to the centre.
    """
    if rings < 1 or radials < 3:
        raise GraphError("ring_radial_network needs >= 1 ring and >= 3 radials")
    if ring_spacing <= 0:
        raise GraphError("ring_spacing must be positive")
    rng = random.Random(seed)
    builder = GraphBuilder()
    centre = builder.add_vertex(0.0, 0.0)

    def vid(ring: int, spoke: int) -> int:
        return 1 + ring * radials + (spoke % radials)

    for ring in range(rings):
        radius = (ring + 1) * ring_spacing
        for spoke in range(radials):
            angle = 2.0 * math.pi * spoke / radials
            noise = jitter * ring_spacing
            x = radius * math.cos(angle) + rng.gauss(0.0, noise)
            y = radius * math.sin(angle) + rng.gauss(0.0, noise)
            builder.add_vertex(x, y)

    edges = []
    for spoke in range(radials):
        edges.append((centre, vid(0, spoke)))
        for ring in range(rings):
            edges.append((vid(ring, spoke), vid(ring, spoke + 1)))
            if ring + 1 < rings:
                edges.append((vid(ring, spoke), vid(ring + 1, spoke)))
    builder.add_edges(edges)
    graph = builder.build()
    return _drop_edges(graph, drop_fraction, rng)


def random_geometric_network(
    num_vertices: int,
    connect_k: int = 3,
    extent: float = 10_000.0,
    seed: int | None = None,
) -> SpatialNetwork:
    """Irregular network on uniformly random points.

    Each vertex connects to its ``connect_k`` nearest neighbours (found via a
    uniform cell grid), and a Euclidean spanning structure is added to
    guarantee connectivity.
    """
    if num_vertices < 2:
        raise GraphError("random_geometric_network needs at least two vertices")
    if connect_k < 1:
        raise GraphError("connect_k must be at least 1")
    rng = random.Random(seed)
    xs = [rng.uniform(0.0, extent) for __ in range(num_vertices)]
    ys = [rng.uniform(0.0, extent) for __ in range(num_vertices)]

    builder = GraphBuilder()
    for x, y in zip(xs, ys):
        builder.add_vertex(x, y)

    # Cell grid for neighbour search: ~1 point per cell on average.
    cell = extent / max(1.0, math.sqrt(num_vertices))
    grid: dict[tuple[int, int], list[int]] = {}
    for i, (x, y) in enumerate(zip(xs, ys)):
        grid.setdefault((int(x / cell), int(y / cell)), []).append(i)

    def nearest(i: int, k: int) -> list[int]:
        cx, cy = int(xs[i] / cell), int(ys[i] / cell)
        found: list[tuple[float, int]] = []
        ring = 1
        while len(found) < k + 1 and ring < 2 * int(math.sqrt(num_vertices)) + 3:
            found = []
            for gx in range(cx - ring, cx + ring + 1):
                for gy in range(cy - ring, cy + ring + 1):
                    for j in grid.get((gx, gy), ()):
                        if j != i:
                            d = math.hypot(xs[i] - xs[j], ys[i] - ys[j])
                            found.append((d, j))
            ring += 1
        found.sort()
        return [j for __, j in found[:k]]

    for i in range(num_vertices):
        for j in nearest(i, connect_k):
            if i != j:
                builder.add_edge(i, j)

    graph = builder.build()
    if graph.is_connected():
        return graph
    # Stitch components together by connecting each component's first vertex
    # to the geometrically closest vertex of the growing connected core.
    components = graph.connected_components()
    components.sort(key=len, reverse=True)
    core = list(components[0])
    for component in components[1:]:
        u = component[0]
        best, best_d = core[0], math.inf
        for v in core:
            d = math.hypot(xs[u] - xs[v], ys[u] - ys[v])
            if d < best_d:
                best, best_d = v, d
        builder.add_edge(u, best)
        core.extend(component)
    return builder.build(require_connected=True)


def _drop_edges(graph: SpatialNetwork, fraction: float, rng: random.Random) -> SpatialNetwork:
    """Randomly remove ``fraction`` of edges without disconnecting the graph."""
    if fraction <= 0.0:
        return graph
    if fraction >= 1.0:
        raise GraphError("drop_fraction must be < 1")
    edges = list(graph.edges())
    rng.shuffle(edges)
    to_drop = int(len(edges) * fraction)
    kept = {(u, v): w for u, v, w in edges}
    dropped = 0
    degree = {v: graph.degree(v) for v in graph.vertices()}
    for u, v, w in edges:
        if dropped >= to_drop:
            break
        # Cheap connectivity guard: never strand a vertex.  A full
        # connectivity check per drop would be quadratic; degree>=2 on both
        # endpoints keeps the graph connected for the lattice-like inputs
        # this helper is applied to, and a final component check repairs any
        # rare miss below.
        if degree[u] <= 1 or degree[v] <= 1:
            continue
        del kept[(u, v)]
        degree[u] -= 1
        degree[v] -= 1
        dropped += 1
    candidate = SpatialNetwork(
        graph.xs, graph.ys, [(u, v, w) for (u, v), w in kept.items()], validate=False
    )
    if candidate.is_connected():
        return candidate
    sub, __ = candidate.subgraph(max(candidate.connected_components(), key=len))
    return sub
