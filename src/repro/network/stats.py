"""Descriptive statistics of spatial networks.

Used by the benchmark harness to report dataset characteristics alongside
results (the paper reports |V|, |E| for both road networks) and by the
similarity layer to choose a characteristic distance scale ``sigma``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import GraphError
from repro.network.dijkstra import eccentricity, single_source_distances
from repro.network.graph import SpatialNetwork

__all__ = ["NetworkStats", "network_stats", "estimate_diameter", "characteristic_distance"]


@dataclass(frozen=True)
class NetworkStats:
    """Summary of a spatial network."""

    num_vertices: int
    num_edges: int
    total_weight: float
    avg_degree: float
    avg_edge_weight: float
    diameter_lower_bound: float

    def describe(self) -> str:
        """Single-line human-readable summary."""
        return (
            f"|V|={self.num_vertices} |E|={self.num_edges} "
            f"avg_deg={self.avg_degree:.2f} avg_w={self.avg_edge_weight:.1f} "
            f"diam>={self.diameter_lower_bound:.1f}"
        )


def network_stats(graph: SpatialNetwork) -> NetworkStats:
    """Compute :class:`NetworkStats` for ``graph``."""
    if graph.num_vertices == 0:
        raise GraphError("statistics of an empty graph are undefined")
    num_edges = graph.num_edges
    return NetworkStats(
        num_vertices=graph.num_vertices,
        num_edges=num_edges,
        total_weight=graph.total_weight,
        avg_degree=2.0 * num_edges / graph.num_vertices,
        avg_edge_weight=(graph.total_weight / num_edges) if num_edges else 0.0,
        diameter_lower_bound=estimate_diameter(graph),
    )


def estimate_diameter(graph: SpatialNetwork, sweeps: int = 2, seed: int = 0) -> float:
    """Double-sweep lower bound on the network diameter.

    Starts from a random vertex, repeatedly jumps to the farthest vertex
    found; the final eccentricity lower-bounds the true diameter and is
    usually within a few percent on road networks.
    """
    if graph.num_vertices == 0:
        raise GraphError("diameter of an empty graph is undefined")
    rng = random.Random(seed)
    vertex = rng.randrange(graph.num_vertices)
    best = 0.0
    for __ in range(max(1, sweeps)):
        vertex, distance = eccentricity(graph, vertex)
        best = max(best, distance)
    return best


def characteristic_distance(graph: SpatialNetwork, samples: int = 16, seed: int = 0) -> float:
    """Median network distance between random vertex pairs.

    This is the default scale ``sigma`` for the exponential distance decay in
    the similarity functions: with ``sigma`` near the typical inter-point
    distance, ``exp(-d / sigma)`` spreads usefully over (0, 1] instead of
    collapsing to 0 or 1.
    """
    if graph.num_vertices < 2:
        raise GraphError("characteristic distance needs at least two vertices")
    rng = random.Random(seed)
    values: list[float] = []
    for __ in range(max(1, samples)):
        source = rng.randrange(graph.num_vertices)
        distances = single_source_distances(graph, source)
        reachable = [d for d in distances.values() if d > 0.0]
        if reachable:
            reachable.sort()
            values.append(reachable[len(reachable) // 2])
    if not values:
        raise GraphError("graph has no reachable vertex pairs")
    values.sort()
    return values[len(values) // 2]
