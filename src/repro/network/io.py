"""Persistence for spatial networks.

Two formats are supported:

- a single JSON document (convenient, self-describing), and
- the classic two-file edge-list layout (``*.co`` vertex coordinates +
  ``*.gr`` weighted edges) used by public road-network releases such as the
  DIMACS / Illinois open data the paper points at.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphError
from repro.network.graph import SpatialNetwork

__all__ = ["save_json", "load_json", "save_edge_list", "load_edge_list"]


def save_json(graph: SpatialNetwork, path: str | Path) -> None:
    """Write the network to ``path`` as a JSON document."""
    payload = {
        "format": "repro-network",
        "version": 1,
        "xs": [float(x) for x in graph.xs],
        "ys": [float(y) for y in graph.ys],
        "edges": [[u, v, w] for u, v, w in graph.edges()],
    }
    Path(path).write_text(json.dumps(payload))


def load_json(path: str | Path) -> SpatialNetwork:
    """Read a network previously written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-network":
        raise GraphError(f"{path} is not a repro network file")
    return SpatialNetwork(
        payload["xs"],
        payload["ys"],
        [(int(u), int(v), float(w)) for u, v, w in payload["edges"]],
    )


def save_edge_list(graph: SpatialNetwork, prefix: str | Path) -> tuple[Path, Path]:
    """Write ``<prefix>.co`` (coordinates) and ``<prefix>.gr`` (edges).

    Vertex ids are written 1-based to match the DIMACS convention.
    Returns the two paths written.
    """
    prefix = Path(prefix)
    co_path = prefix.with_suffix(".co")
    gr_path = prefix.with_suffix(".gr")
    with co_path.open("w") as fh:
        fh.write(f"p aux co {graph.num_vertices}\n")
        for v in graph.vertices():
            x, y = graph.position(v)
            fh.write(f"v {v + 1} {x!r} {y!r}\n")
    with gr_path.open("w") as fh:
        fh.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for u, v, w in graph.edges():
            fh.write(f"a {u + 1} {v + 1} {w!r}\n")
    return co_path, gr_path


def load_edge_list(prefix: str | Path) -> SpatialNetwork:
    """Read a network from ``<prefix>.co`` + ``<prefix>.gr``."""
    prefix = Path(prefix)
    co_path = prefix.with_suffix(".co")
    gr_path = prefix.with_suffix(".gr")
    if not co_path.exists() or not gr_path.exists():
        raise GraphError(f"missing {co_path} or {gr_path}")

    xs: list[float] = []
    ys: list[float] = []
    with co_path.open() as fh:
        for line in fh:
            parts = line.split()
            if not parts or parts[0] != "v":
                continue
            index = int(parts[1]) - 1
            while len(xs) <= index:
                xs.append(0.0)
                ys.append(0.0)
            xs[index] = float(parts[2])
            ys[index] = float(parts[3])

    edges: list[tuple[int, int, float]] = []
    seen: set[tuple[int, int]] = set()
    with gr_path.open() as fh:
        for line in fh:
            parts = line.split()
            if not parts or parts[0] != "a":
                continue
            u, v = int(parts[1]) - 1, int(parts[2]) - 1
            key = (min(u, v), max(u, v))
            if key in seen:
                continue  # directed files list both arcs; keep one
            seen.add(key)
            edges.append((u, v, float(parts[3])))
    return SpatialNetwork(xs, ys, edges)
