"""Bidirectional Dijkstra search.

Runs two simultaneous expansions, one from the source and one from the
target, alternating by frontier distance, and stops when the sum of the two
frontier radii exceeds the best meeting-point distance found so far.  On
road-like networks this roughly halves the settled vertex count relative to
unidirectional Dijkstra.
"""

from __future__ import annotations

import heapq

from repro.errors import DisconnectedError
from repro.network.graph import SpatialNetwork

__all__ = ["bidirectional_path_length", "bidirectional_path"]

_INF = float("inf")


def bidirectional_path_length(graph: SpatialNetwork, source: int, target: int) -> float:
    """Network distance computed with bidirectional Dijkstra."""
    __, length = bidirectional_path(graph, source, target)
    return length


def bidirectional_path(
    graph: SpatialNetwork, source: int, target: int
) -> tuple[list[int], float]:
    """Shortest path as ``(vertex sequence, length)`` via bidirectional search.

    Raises :class:`DisconnectedError` when no path exists.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return [source], 0.0

    adjacency = graph.adjacency
    # Index 0 = forward search, index 1 = backward search.
    dists: list[dict[int, float]] = [{source: 0.0}, {target: 0.0}]
    parents: list[dict[int, int]] = [{}, {}]
    settled: list[set[int]] = [set(), set()]
    heaps: list[list[tuple[float, int]]] = [[(0.0, source)], [(0.0, target)]]
    radii = [0.0, 0.0]

    best = _INF
    meeting = -1
    while heaps[0] and heaps[1]:
        side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        d, u = heapq.heappop(heaps[side])
        if u in settled[side]:
            continue
        settled[side].add(u)
        radii[side] = d
        if radii[0] + radii[1] >= best:
            break
        other = 1 - side
        for v, w in adjacency[u]:
            nd = d + w
            if v not in settled[side] and nd < dists[side].get(v, _INF):
                dists[side][v] = nd
                parents[side][v] = u
                heapq.heappush(heaps[side], (nd, v))
            via = dists[other].get(v)
            if via is not None:
                total = nd + via
                if total < best:
                    best = total
                    meeting = v

    if meeting < 0:
        # The searches never met: u itself may be the meeting vertex when a
        # frontier settles a vertex the other side already reached.
        for v in dists[0]:
            via = dists[1].get(v)
            if via is not None and dists[0][v] + via < best:
                best = dists[0][v] + via
                meeting = v
    if meeting < 0 or best == _INF:
        raise DisconnectedError(source, target)

    forward = [meeting]
    while forward[-1] != source:
        forward.append(parents[0][forward[-1]])
    forward.reverse()
    backward = []
    v = meeting
    while v != target:
        v = parents[1][v]
        backward.append(v)
    return forward + backward, best
