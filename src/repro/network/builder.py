"""Incremental construction of :class:`~repro.network.graph.SpatialNetwork`.

The builder collects vertices and edges, deduplicates edges, and can repair
common defects of raw road data (disconnected fragments) before producing an
immutable network.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import GraphError
from repro.network.graph import SpatialNetwork

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Mutable accumulator of vertices and edges.

    Example
    -------
    >>> b = GraphBuilder()
    >>> a, c = b.add_vertex(0.0, 0.0), b.add_vertex(1.0, 0.0)
    >>> _ = b.add_edge(a, c)
    >>> g = b.build()
    >>> g.num_vertices, g.num_edges
    (2, 1)
    """

    def __init__(self):
        self._xs: list[float] = []
        self._ys: list[float] = []
        self._edges: dict[tuple[int, int], float] = {}

    # ------------------------------------------------------------- mutation
    def add_vertex(self, x: float, y: float) -> int:
        """Add a vertex at ``(x, y)`` and return its id."""
        self._xs.append(float(x))
        self._ys.append(float(y))
        return len(self._xs) - 1

    def add_edge(self, u: int, v: int, weight: float | None = None) -> float:
        """Add the undirected edge ``{u, v}``.

        When ``weight`` is omitted the Euclidean distance between the
        endpoints is used (a road segment as the crow flies).  Re-adding an
        existing edge keeps the smaller weight.  Returns the stored weight.
        """
        n = len(self._xs)
        if not (0 <= u < n) or not (0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) references a vertex not yet added")
        if u == v:
            raise GraphError(f"self-loop on vertex {u} is not allowed")
        if weight is None:
            weight = math.hypot(self._xs[u] - self._xs[v], self._ys[u] - self._ys[v])
            if weight == 0.0:
                raise GraphError(
                    f"vertices {u} and {v} are co-located; give an explicit weight"
                )
        if weight <= 0 or not math.isfinite(weight):
            raise GraphError(f"edge ({u}, {v}) has non-positive weight {weight}")
        key = (min(u, v), max(u, v))
        stored = self._edges.get(key)
        if stored is None or weight < stored:
            self._edges[key] = float(weight)
        return self._edges[key]

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Add many edges with Euclidean weights."""
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------ inspection
    @property
    def num_vertices(self) -> int:
        return len(self._xs)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------- assembly
    def build(self, require_connected: bool = False) -> SpatialNetwork:
        """Produce the immutable network.

        With ``require_connected`` the build fails on a fragmented graph;
        use :meth:`build_largest_component` to repair instead.
        """
        graph = SpatialNetwork(
            self._xs,
            self._ys,
            [(u, v, w) for (u, v), w in self._edges.items()],
            validate=True,
        )
        if require_connected and not graph.is_connected():
            raise GraphError(
                "graph is not connected; use build_largest_component() or add "
                "connecting edges"
            )
        return graph

    def build_largest_component(self) -> tuple[SpatialNetwork, dict[int, int]]:
        """Build, then restrict to the largest connected component.

        Returns the connected network and the old-id to new-id mapping.
        """
        graph = self.build(require_connected=False)
        if graph.num_vertices == 0:
            raise GraphError("cannot extract a component from an empty graph")
        components = graph.connected_components()
        largest = max(components, key=len)
        return graph.subgraph(largest)
