"""Incremental network expansion — the core search primitive.

The UOTS search explores the network *incrementally* from every query
location: each expansion step settles one more vertex, in non-decreasing
distance order, and the caller interleaves steps from several expansions
under the control of a scheduler.  This module provides that resumable
Dijkstra, backed by the graph's flat CSR arrays with a dense ``dist`` list
and a ``settled`` byte mask (no dicts on the hot path).

The key guarantee (Dijkstra's invariant) used throughout the paper family:
if the expansion from ``source`` first reaches a vertex belonging to
trajectory ``tau`` at distance ``d``, then ``d == d(source, tau)``, the exact
network distance from the source to the trajectory; and :attr:`radius` is a
lower bound on the distance to everything not yet settled.

:meth:`expand_steps` settles up to ``n`` vertices in one call so a caller
expanding in batches pays one Python call per batch, not per vertex —
callers must check :attr:`exhausted` (not the radius) to detect a source
running dry mid-batch.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.network.graph import SpatialNetwork

__all__ = ["IncrementalExpansion"]

_INF = float("inf")


class IncrementalExpansion:
    """A resumable single-source Dijkstra over a spatial network.

    Parameters
    ----------
    graph:
        The network to explore.
    source:
        Vertex the expansion starts from.

    Notes
    -----
    ``expand()`` settles and returns one vertex per call (``expand_steps``
    settles a batch); vertices come out in non-decreasing distance order.
    :attr:`radius` is the distance of the most recently settled vertex and
    therefore lower-bounds the distance of every vertex not settled yet.
    """

    __slots__ = (
        "_graph",
        "_source",
        "_heap",
        "_dist",
        "_settled",
        "_order",
        "_radius",
        "_indptr",
        "_indices",
        "_weights",
    )

    def __init__(self, graph: SpatialNetwork, source: int):
        graph._check_vertex(source)
        self._graph = graph
        self._source = source
        csr = graph.csr
        self._indptr = csr.indptr_list
        self._indices = csr.indices_list
        self._weights = csr.weights_list
        n = graph.num_vertices
        self._heap: list[tuple[float, int]] = [(0.0, source)]
        self._dist: list[float] = [_INF] * n
        self._dist[source] = 0.0
        self._settled = bytearray(n)
        self._order: list[tuple[int, float]] = []
        self._radius = 0.0

    # ------------------------------------------------------------ properties
    @property
    def source(self) -> int:
        """The expansion's start vertex."""
        return self._source

    @property
    def radius(self) -> float:
        """Distance of the last settled vertex.

        Monotonically non-decreasing; a valid lower bound on the distance
        of every unsettled vertex.  Stays at the last settled distance once
        the component is exhausted — an exhausted source can reach nothing
        further, so callers that zero out exhausted frontiers must check
        :attr:`exhausted` rather than wait for an infinite radius (which a
        mid-batch exhaustion never produces).
        """
        return self._radius

    @property
    def exhausted(self) -> bool:
        """Whether the whole reachable component has been settled."""
        return not self._heap

    @property
    def num_settled(self) -> int:
        """How many vertices have been settled so far."""
        return len(self._order)

    # ------------------------------------------------------------- stepping
    def expand(self) -> tuple[int, float] | None:
        """Settle the next-closest vertex.

        Returns ``(vertex, distance)`` or ``None`` when the reachable
        component is exhausted.
        """
        steps = self.expand_steps(1)
        return steps[0] if steps else None

    def expand_steps(self, max_steps: int) -> list[tuple[int, float]]:
        """Settle up to ``max_steps`` next-closest vertices in one call.

        Returns the settled ``(vertex, distance)`` pairs in settle order;
        fewer than ``max_steps`` entries (possibly none) means the
        reachable component ran out mid-batch — :attr:`exhausted` is then
        true and :attr:`radius` keeps its last settled value.
        """
        out: list[tuple[int, float]] = []
        heap = self._heap
        if not heap:
            return out
        settled = self._settled
        dist = self._dist
        indptr = self._indptr
        indices = self._indices
        weights = self._weights
        pop = heapq.heappop
        push = heapq.heappush
        while heap and len(out) < max_steps:
            d, u = pop(heap)
            if settled[u]:
                continue  # stale heap entry (lazy deletion)
            settled[u] = 1
            self._radius = d
            for k in range(indptr[u], indptr[u + 1]):
                v = indices[k]
                nd = d + weights[k]
                if nd < dist[v]:
                    dist[v] = nd
                    push(heap, (nd, v))
            out.append((u, d))
        if out:
            self._order.extend(out)
        # Drain trailing stale entries so `exhausted` flips as soon as the
        # last real vertex is settled, not one call later.
        while heap and settled[heap[0][1]]:
            pop(heap)
        return out

    def expand_until(self, radius: float) -> Iterator[tuple[int, float]]:
        """Yield settled vertices until :attr:`radius` exceeds ``radius``."""
        while not self.exhausted:
            nxt = self._peek_distance()
            if nxt is None or nxt > radius:
                return
            item = self.expand()
            if item is None:
                return
            yield item

    def _peek_distance(self) -> float | None:
        """Distance of the next vertex to be settled, without settling it."""
        heap = self._heap
        settled = self._settled
        while heap and settled[heap[0][1]]:
            heapq.heappop(heap)  # drop stale entries
        if not heap:
            return None
        return heap[0][0]

    # --------------------------------------------------------------- lookup
    def distance(self, vertex: int) -> float | None:
        """Settled distance to ``vertex`` (``None`` if not settled yet)."""
        if self._settled[vertex]:
            return self._dist[vertex]
        return None

    def settled_vertices(self) -> dict[int, float]:
        """All settled ``vertex -> distance`` entries (snapshot)."""
        return dict(self._order)

    def __repr__(self) -> str:
        return (
            f"IncrementalExpansion(source={self._source}, "
            f"settled={len(self._order)}, radius={self._radius:.3f}, "
            f"exhausted={self.exhausted})"
        )
