"""Incremental network expansion — the core search primitive.

The UOTS search explores the network *incrementally* from every query
location: each expansion step settles exactly one more vertex, in
non-decreasing distance order, and the caller interleaves steps from several
expansions under the control of a scheduler.  This module provides that
resumable Dijkstra.

The key guarantee (Dijkstra's invariant) used throughout the paper family:
if the expansion from ``source`` first reaches a vertex belonging to
trajectory ``tau`` at distance ``d``, then ``d == d(source, tau)``, the exact
network distance from the source to the trajectory; and :attr:`radius` is a
lower bound on the distance to everything not yet settled.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.network.graph import SpatialNetwork

__all__ = ["IncrementalExpansion"]

_INF = float("inf")


class IncrementalExpansion:
    """A resumable single-source Dijkstra over a spatial network.

    Parameters
    ----------
    graph:
        The network to explore.
    source:
        Vertex the expansion starts from.

    Notes
    -----
    ``expand()`` settles and returns one vertex per call; vertices come out
    in non-decreasing distance order.  :attr:`radius` is the distance of the
    most recently settled vertex and therefore lower-bounds the distance of
    every vertex not settled yet.
    """

    __slots__ = ("_graph", "_source", "_heap", "_dist", "_settled", "_radius")

    def __init__(self, graph: SpatialNetwork, source: int):
        graph._check_vertex(source)
        self._graph = graph
        self._source = source
        self._heap: list[tuple[float, int]] = [(0.0, source)]
        self._dist: dict[int, float] = {source: 0.0}
        self._settled: dict[int, float] = {}
        self._radius = 0.0

    # ------------------------------------------------------------ properties
    @property
    def source(self) -> int:
        """The expansion's start vertex."""
        return self._source

    @property
    def radius(self) -> float:
        """Distance of the last settled vertex.

        Monotonically non-decreasing; a valid lower bound on the distance of
        every unsettled vertex.  Becomes ``inf`` once the component is
        exhausted (nothing unexplored remains).
        """
        if self.exhausted:
            return _INF
        return self._radius

    @property
    def exhausted(self) -> bool:
        """Whether the whole reachable component has been settled."""
        return not self._heap

    @property
    def num_settled(self) -> int:
        """How many vertices have been settled so far."""
        return len(self._settled)

    # ------------------------------------------------------------- stepping
    def expand(self) -> tuple[int, float] | None:
        """Settle the next-closest vertex.

        Returns ``(vertex, distance)`` or ``None`` when the reachable
        component is exhausted.
        """
        heap = self._heap
        settled = self._settled
        dist = self._dist
        adjacency = self._graph.adjacency
        while heap:
            d, u = heapq.heappop(heap)
            if u in settled:
                continue  # stale heap entry (lazy deletion)
            settled[u] = d
            self._radius = d
            for v, w in adjacency[u]:
                nd = d + w
                if v not in settled and nd < dist.get(v, _INF):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
            return u, d
        return None

    def expand_until(self, radius: float) -> Iterator[tuple[int, float]]:
        """Yield settled vertices until :attr:`radius` exceeds ``radius``."""
        while not self.exhausted:
            nxt = self._peek_distance()
            if nxt is None or nxt > radius:
                return
            item = self.expand()
            if item is None:
                return
            yield item

    def _peek_distance(self) -> float | None:
        """Distance of the next vertex to be settled, without settling it."""
        heap = self._heap
        settled = self._settled
        while heap and heap[0][1] in settled:
            heapq.heappop(heap)  # drop stale entries
        if not heap:
            return None
        return heap[0][0]

    # --------------------------------------------------------------- lookup
    def distance(self, vertex: int) -> float | None:
        """Settled distance to ``vertex`` (``None`` if not settled yet)."""
        return self._settled.get(vertex)

    def settled_vertices(self) -> dict[int, float]:
        """All settled ``vertex -> distance`` entries (read-only view)."""
        return self._settled

    def __repr__(self) -> str:
        return (
            f"IncrementalExpansion(source={self._source}, "
            f"settled={len(self._settled)}, radius={self.radius:.3f})"
        )
