"""A* shortest-path search with admissible geometric heuristics.

Road-network edge weights are segment lengths, so the straight-line distance
between two vertices, scaled by the minimum weight/Euclidean ratio observed
over all edges, never overestimates the network distance.  That scaled
heuristic keeps A* exact while typically settling far fewer vertices than
plain Dijkstra.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from repro.errors import DisconnectedError
from repro.network.graph import SpatialNetwork

__all__ = ["astar_path", "astar_path_length", "euclidean_heuristic", "admissible_scale"]

_INF = float("inf")

Heuristic = Callable[[int], float]


def admissible_scale(graph: SpatialNetwork) -> float:
    """Largest factor ``c`` such that ``c * euclidean(u, v) <= sd(u, v)``.

    Computed as the minimum ``weight / euclidean`` ratio over all edges; by
    the triangle inequality the bound then holds for all vertex pairs.
    Degenerate (zero-length) straight-line segments are skipped.  Returns
    ``1.0`` for a graph with no edges.
    """
    scale = 1.0
    found = False
    for u, v, w in graph.edges():
        straight = graph.euclidean(u, v)
        if straight <= 0.0:
            continue
        ratio = w / straight
        scale = ratio if not found else min(scale, ratio)
        found = True
    return min(scale, 1.0) if found else 1.0


def euclidean_heuristic(graph: SpatialNetwork, target: int, scale: float | None = None) -> Heuristic:
    """Admissible heuristic ``h(v) = scale * euclidean(v, target)``."""
    if scale is None:
        scale = admissible_scale(graph)
    tx, ty = graph.position(target)
    xs, ys = graph.xs, graph.ys

    def h(v: int) -> float:
        return scale * math.hypot(xs[v] - tx, ys[v] - ty)

    return h


def astar_path_length(
    graph: SpatialNetwork,
    source: int,
    target: int,
    heuristic: Heuristic | None = None,
) -> float:
    """Network distance via A*; exact when ``heuristic`` is admissible."""
    __, length = astar_path(graph, source, target, heuristic)
    return length


def astar_path(
    graph: SpatialNetwork,
    source: int,
    target: int,
    heuristic: Heuristic | None = None,
) -> tuple[list[int], float]:
    """Shortest path via A* as ``(vertex sequence, length)``.

    Raises :class:`DisconnectedError` when no path exists.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return [source], 0.0
    if heuristic is None:
        heuristic = euclidean_heuristic(graph, target)

    csr = graph.csr
    n = csr.num_vertices
    g_score = [_INF] * n
    g_score[source] = 0.0
    parent = [-1] * n
    settled = bytearray(n)
    heap: list[tuple[float, float, int]] = [(heuristic(source), 0.0, source)]
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    pop = heapq.heappop
    push = heapq.heappush
    while heap:
        __, d, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return path, d
        for k in range(indptr[u], indptr[u + 1]):
            v = indices[k]
            nd = d + weights[k]
            if not settled[v] and nd < g_score[v]:
                g_score[v] = nd
                parent[v] = u
                push(heap, (nd + heuristic(v), nd, v))
    raise DisconnectedError(source, target)
