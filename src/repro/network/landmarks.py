"""ALT (A*, Landmarks, Triangle inequality) distance lower bounds.

A set of landmark vertices is chosen with the classic farthest-point
heuristic; single-source distances from each landmark are precomputed.  The
triangle inequality then gives, for any pair ``(u, v)``,

    sd(u, v) >= |sd(l, u) - sd(l, v)|      for every landmark l,

and the maximum over landmarks is a (often tight) lower bound usable both as
an A* heuristic and as a cheap pre-filter before running an exact search.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.network.dijkstra import single_source_distances
from repro.network.graph import SpatialNetwork

__all__ = ["LandmarkIndex"]


class LandmarkIndex:
    """Precomputed landmark distances over a connected spatial network."""

    def __init__(self, graph: SpatialNetwork, landmarks: Sequence[int], table: np.ndarray):
        self._graph = graph
        self._landmarks = list(landmarks)
        self._table = table  # shape (num_landmarks, num_vertices)

    @classmethod
    def build(
        cls,
        graph: SpatialNetwork,
        num_landmarks: int = 8,
        seed: int | None = None,
    ) -> "LandmarkIndex":
        """Select landmarks by farthest-point traversal and precompute distances.

        The first landmark is random (seeded); each subsequent landmark is
        the vertex maximizing the minimum distance to the already chosen
        ones, which spreads landmarks to the periphery where ALT bounds are
        tightest.
        """
        if graph.num_vertices == 0:
            raise GraphError("cannot build landmarks on an empty graph")
        if not graph.is_connected():
            raise GraphError("LandmarkIndex requires a connected graph")
        num_landmarks = min(num_landmarks, graph.num_vertices)
        rng = random.Random(seed)
        first = rng.randrange(graph.num_vertices)

        landmarks = [first]
        rows = [_distance_row(graph, first)]
        min_dist = rows[0].copy()
        while len(landmarks) < num_landmarks:
            candidate = int(np.argmax(min_dist))
            if min_dist[candidate] <= 0.0:
                break  # every vertex is already a landmark
            landmarks.append(candidate)
            row = _distance_row(graph, candidate)
            rows.append(row)
            np.minimum(min_dist, row, out=min_dist)
        return cls(graph, landmarks, np.vstack(rows))

    # -------------------------------------------------------------- queries
    @property
    def landmarks(self) -> list[int]:
        """The selected landmark vertex ids."""
        return list(self._landmarks)

    def lower_bound(self, u: int, v: int) -> float:
        """A lower bound on ``sd(u, v)`` from the triangle inequality."""
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        if u == v:
            return 0.0
        column_u = self._table[:, u]
        column_v = self._table[:, v]
        return float(np.max(np.abs(column_u - column_v)))

    def heuristic(self, target: int):
        """An admissible A* heuristic ``h(v) = lower_bound(v, target)``."""
        self._graph._check_vertex(target)
        column_t = self._table[:, target]
        table = self._table

        def h(v: int) -> float:
            return float(np.max(np.abs(table[:, v] - column_t)))

        return h

    def landmark_distance(self, landmark_index: int, vertex: int) -> float:
        """Precomputed ``sd(landmark, vertex)`` for the i-th landmark."""
        return float(self._table[landmark_index, vertex])


def _distance_row(graph: SpatialNetwork, source: int) -> np.ndarray:
    row = np.full(graph.num_vertices, np.inf)
    for v, d in single_source_distances(graph, source).items():
        row[v] = d
    return row
