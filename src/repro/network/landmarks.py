"""ALT (A*, Landmarks, Triangle inequality) distance lower bounds.

A set of landmark vertices is chosen with the classic farthest-point
heuristic; single-source distances from each landmark are precomputed.  The
triangle inequality then gives, for any pair ``(u, v)``,

    sd(u, v) >= |sd(l, u) - sd(l, v)|      for every landmark l,

and the maximum over landmarks is a (often tight) lower bound usable both as
an A* heuristic and as a cheap pre-filter before running an exact search.
The vectorised :meth:`LandmarkIndex.lower_bounds_to_set` extends the bound
to point-to-set distances (``min over p in P of sd(o, p)``), which is what
the collaborative search needs to cap a blocked trajectory's frontier
contribution before paying for its refinement Dijkstra.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.network.csr import sssp_arrays_batch
from repro.network.graph import SpatialNetwork

__all__ = ["LandmarkIndex", "clamp_events"]

# Process-wide count of builds that asked for more landmarks than the graph
# has vertices and were clamped (mirrored into metrics by repro.obs.adapters).
_clamp_events = 0


def clamp_events() -> int:
    """How many :meth:`LandmarkIndex.build` calls clamped ``num_landmarks``."""
    return _clamp_events


class LandmarkIndex:
    """Precomputed landmark distances over a connected spatial network."""

    def __init__(self, graph: SpatialNetwork, landmarks: Sequence[int], table: np.ndarray):
        self._graph = graph
        self._landmarks = list(landmarks)
        self._table = table  # shape (num_landmarks, num_vertices)

    @classmethod
    def build(
        cls,
        graph: SpatialNetwork,
        num_landmarks: int = 8,
        seed: int | np.random.Generator | None = None,
    ) -> "LandmarkIndex":
        """Select landmarks by farthest-point traversal and precompute distances.

        The first landmark is random (``seed`` is anything
        :func:`numpy.random.default_rng` accepts — an int, a ``Generator``,
        or ``None`` — consistent with the rest of the codebase; no
        module-level random state is touched).  Each subsequent landmark is
        the vertex maximizing the minimum distance to the already chosen
        ones, which spreads landmarks to the periphery where ALT bounds are
        tightest.

        ``num_landmarks`` larger than the vertex count is clamped to the
        vertex count (every vertex becomes a landmark) rather than raised:
        small shard subgraphs and tiny test graphs still get ALT bounds.
        Each clamp bumps the process-wide :func:`clamp_events` counter.

        Raises :class:`GraphError` when the graph is empty or disconnected,
        or when ``num_landmarks < 1``.
        """
        if graph.num_vertices == 0:
            raise GraphError("cannot build landmarks on an empty graph")
        if num_landmarks < 1:
            raise GraphError(f"num_landmarks must be >= 1, got {num_landmarks}")
        if num_landmarks > graph.num_vertices:
            global _clamp_events
            _clamp_events += 1
            num_landmarks = graph.num_vertices
        if not graph.is_connected():
            raise GraphError("LandmarkIndex requires a connected graph")
        rng = np.random.default_rng(seed)
        first = int(rng.integers(graph.num_vertices))

        landmarks = [first]
        rows = [_distance_row(graph, first)]
        min_dist = rows[0].copy()
        while len(landmarks) < num_landmarks:
            candidate = int(np.argmax(min_dist))
            if min_dist[candidate] <= 0.0:
                break  # every vertex is already a landmark
            landmarks.append(candidate)
            row = _distance_row(graph, candidate)
            rows.append(row)
            np.minimum(min_dist, row, out=min_dist)
        return cls(graph, landmarks, np.vstack(rows))

    # -------------------------------------------------------------- queries
    @property
    def landmarks(self) -> list[int]:
        """The selected landmark vertex ids."""
        return list(self._landmarks)

    def lower_bound(self, u: int, v: int) -> float:
        """A lower bound on ``sd(u, v)`` from the triangle inequality."""
        self._graph._check_vertex(u)
        self._graph._check_vertex(v)
        if u == v:
            return 0.0
        column_u = self._table[:, u]
        column_v = self._table[:, v]
        return float(np.max(np.abs(column_u - column_v)))

    def lower_bounds_to_set(
        self, sources: np.ndarray, vertices: np.ndarray
    ) -> np.ndarray:
        """Per-source lower bounds on the point-to-set network distance.

        Entry ``i`` lower-bounds ``min over p in vertices of
        sd(sources[i], p)``: the ALT pair bound, maximised over landmarks
        and minimised over the vertex set, fully vectorised — one call
        prices every query location against one trajectory's vertex set.
        """
        table = self._table
        # (L, m, 1) - (L, 1, P) -> (L, m, P): |sd(l, o) - sd(l, p)|
        diff = np.abs(
            table[:, sources][:, :, None] - table[:, vertices][:, None, :]
        )
        return diff.max(axis=0).min(axis=1)

    def heuristic(self, target: int):
        """An admissible A* heuristic ``h(v) = lower_bound(v, target)``."""
        self._graph._check_vertex(target)
        column_t = self._table[:, target]
        table = self._table

        def h(v: int) -> float:
            return float(np.max(np.abs(table[:, v] - column_t)))

        return h

    def landmark_distance(self, landmark_index: int, vertex: int) -> float:
        """Precomputed ``sd(landmark, vertex)`` for the i-th landmark."""
        return float(self._table[landmark_index, vertex])


def _distance_row(graph: SpatialNetwork, source: int) -> np.ndarray:
    return sssp_arrays_batch(graph.csr, (source,))[0]
