"""Spatial-network substrate: graph model, shortest paths, expansion, generators."""

from repro.network.astar import astar_path, astar_path_length, euclidean_heuristic
from repro.network.bidirectional import bidirectional_path, bidirectional_path_length
from repro.network.builder import GraphBuilder
from repro.network.contraction import ContractionHierarchy
from repro.network.dijkstra import (
    distance_matrix,
    distances_to_targets,
    eccentricity,
    shortest_path,
    shortest_path_length,
    single_source_distances,
)
from repro.network.expansion import IncrementalExpansion
from repro.network.generators import (
    grid_network,
    random_geometric_network,
    ring_radial_network,
)
from repro.network.graph import SpatialNetwork
from repro.network.interop import from_networkx, to_networkx
from repro.network.io import load_edge_list, load_json, save_edge_list, save_json
from repro.network.landmarks import LandmarkIndex
from repro.network.stats import (
    NetworkStats,
    characteristic_distance,
    estimate_diameter,
    network_stats,
)

__all__ = [
    "ContractionHierarchy",
    "SpatialNetwork",
    "GraphBuilder",
    "IncrementalExpansion",
    "LandmarkIndex",
    "NetworkStats",
    "astar_path",
    "astar_path_length",
    "bidirectional_path",
    "bidirectional_path_length",
    "characteristic_distance",
    "distance_matrix",
    "distances_to_targets",
    "eccentricity",
    "estimate_diameter",
    "euclidean_heuristic",
    "from_networkx",
    "to_networkx",
    "grid_network",
    "load_edge_list",
    "load_json",
    "network_stats",
    "random_geometric_network",
    "ring_radial_network",
    "save_edge_list",
    "save_json",
    "shortest_path",
    "shortest_path_length",
    "single_source_distances",
]
