"""Interoperability with networkx.

networkx is an optional dependency (it powers the test oracles); these
converters let users bring existing road graphs in and take results out
without writing glue code.  Imports are local so the core library keeps its
numpy-only runtime footprint.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.network.builder import GraphBuilder
from repro.network.graph import SpatialNetwork

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(graph: SpatialNetwork):
    """An undirected ``networkx.Graph`` with ``weight`` and ``pos`` attributes."""
    import networkx as nx

    mirror = nx.Graph()
    for vertex in graph.vertices():
        mirror.add_node(vertex, pos=graph.position(vertex))
    for u, v, w in graph.edges():
        mirror.add_edge(u, v, weight=w)
    return mirror


def from_networkx(mirror, weight: str = "weight", pos: str = "pos") -> SpatialNetwork:
    """Build a :class:`SpatialNetwork` from an undirected networkx graph.

    Node labels may be arbitrary hashables; they are remapped to dense ids
    in sorted-by-insertion order.  Nodes need a ``pos`` attribute (an
    ``(x, y)`` pair); edges missing ``weight`` get their Euclidean length.
    """
    import networkx as nx

    if mirror.is_directed():
        raise GraphError("from_networkx expects an undirected graph")
    builder = GraphBuilder()
    remap: dict[object, int] = {}
    for node, data in mirror.nodes(data=True):
        try:
            x, y = data[pos]
        except KeyError:
            raise GraphError(
                f"node {node!r} lacks a {pos!r} attribute (an (x, y) pair)"
            ) from None
        remap[node] = builder.add_vertex(float(x), float(y))
    for u, v, data in mirror.edges(data=True):
        if u == v:
            continue  # self loops carry no distance information
        builder.add_edge(remap[u], remap[v], data.get(weight))
    return builder.build()
