"""Spatial network model.

A spatial network is a connected, undirected graph ``G = (V, E, W)`` in which
vertices carry planar coordinates (road intersections) and edge weights are
positive road-segment lengths.  Vertices are dense integer ids ``0..n-1``,
which keeps the adjacency structure compact and lets algorithms use plain
lists instead of hash maps on the hot path.

The class is immutable after construction; use
:class:`repro.network.builder.GraphBuilder` to assemble one incrementally.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError, VertexNotFoundError

__all__ = ["SpatialNetwork"]


class SpatialNetwork:
    """An immutable, undirected, weighted graph with vertex coordinates.

    Parameters
    ----------
    xs, ys:
        Vertex coordinates, one entry per vertex.
    edges:
        Iterable of ``(u, v, weight)`` triples.  Each undirected edge is
        given once; parallel edges and self-loops are rejected.
    validate:
        When true (the default), reject malformed input (negative weights,
        out-of-range endpoints, duplicates).
    """

    __slots__ = (
        "_xs",
        "_ys",
        "_adjacency",
        "_edges",
        "_edge_index",
        "_total_weight",
        "_csr",
    )

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        edges: Iterable[tuple[int, int, float]],
        validate: bool = True,
    ):
        if len(xs) != len(ys):
            raise GraphError(f"coordinate arrays differ in length: {len(xs)} != {len(ys)}")
        self._xs = np.asarray(xs, dtype=np.float64)
        self._ys = np.asarray(ys, dtype=np.float64)
        n = len(self._xs)

        edge_list: list[tuple[int, int, float]] = []
        adjacency: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        edge_index: dict[tuple[int, int], float] = {}
        total = 0.0
        for u, v, w in edges:
            if validate:
                if not (0 <= u < n):
                    raise VertexNotFoundError(u, n)
                if not (0 <= v < n):
                    raise VertexNotFoundError(v, n)
                if u == v:
                    raise GraphError(f"self-loop on vertex {u} is not allowed")
                if w <= 0 or not np.isfinite(w):
                    raise GraphError(f"edge ({u}, {v}) has non-positive weight {w}")
                if (min(u, v), max(u, v)) in edge_index:
                    raise GraphError(f"duplicate edge ({u}, {v})")
            w = float(w)
            edge_list.append((u, v, w))
            edge_index[(min(u, v), max(u, v))] = w
            adjacency[u].append((v, w))
            adjacency[v].append((u, w))
            total += w
        self._edges = edge_list
        self._adjacency = adjacency
        self._edge_index = edge_index
        self._total_weight = total
        self._csr = None

    # ------------------------------------------------------------------ size
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._xs)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return len(self._edges)

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights (total road length)."""
        return self._total_weight

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return f"SpatialNetwork(|V|={self.num_vertices}, |E|={self.num_edges})"

    # ------------------------------------------------------------- structure
    def vertices(self) -> range:
        """All vertex ids as a range."""
        return range(self.num_vertices)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(u, v, weight)`` triples (each edge once)."""
        return iter(self._edges)

    def neighbors(self, vertex: int) -> list[tuple[int, float]]:
        """Adjacent ``(neighbor, weight)`` pairs of ``vertex``."""
        self._check_vertex(vertex)
        return self._adjacency[vertex]

    @property
    def adjacency(self) -> list[list[tuple[int, float]]]:
        """The raw adjacency structure (treat as read-only)."""
        return self._adjacency

    @property
    def csr(self):
        """The flat CSR adjacency (:class:`repro.network.csr.CSRAdjacency`).

        Built on first access and cached — the graph is immutable, so the
        arrays never go stale.  Every shortest-path kernel runs against
        this layout instead of the per-vertex tuple lists.
        """
        if self._csr is None:
            from repro.network.csr import CSRAdjacency

            self._csr = CSRAdjacency.from_edges(self.num_vertices, self._edges)
        return self._csr

    def degree(self, vertex: int) -> int:
        """Number of edges incident to ``vertex``."""
        self._check_vertex(vertex)
        return len(self._adjacency[vertex])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return (min(u, v), max(u, v)) in self._edge_index

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises :class:`GraphError` if absent."""
        try:
            return self._edge_index[(min(u, v), max(u, v))]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) does not exist") from None

    def _check_vertex(self, vertex: int) -> None:
        if not (0 <= vertex < self.num_vertices):
            raise VertexNotFoundError(vertex, self.num_vertices)

    # ------------------------------------------------------------- geometry
    def position(self, vertex: int) -> tuple[float, float]:
        """The ``(x, y)`` coordinates of ``vertex``."""
        self._check_vertex(vertex)
        return (float(self._xs[vertex]), float(self._ys[vertex]))

    @property
    def xs(self) -> np.ndarray:
        """Vertex x coordinates (read-only view)."""
        return self._xs

    @property
    def ys(self) -> np.ndarray:
        """Vertex y coordinates (read-only view)."""
        return self._ys

    def euclidean(self, u: int, v: int) -> float:
        """Straight-line distance between two vertices."""
        self._check_vertex(u)
        self._check_vertex(v)
        dx = self._xs[u] - self._xs[v]
        dy = self._ys[u] - self._ys[v]
        return float(np.hypot(dx, dy))

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all vertices."""
        if self.num_vertices == 0:
            raise GraphError("bounding box of an empty graph is undefined")
        return (
            float(self._xs.min()),
            float(self._ys.min()),
            float(self._xs.max()),
            float(self._ys.max()),
        )

    def nearest_vertex(self, x: float, y: float) -> int:
        """The vertex closest (in Euclidean distance) to the point ``(x, y)``."""
        if self.num_vertices == 0:
            raise GraphError("nearest vertex in an empty graph is undefined")
        d2 = (self._xs - x) ** 2 + (self._ys - y) ** 2
        return int(np.argmin(d2))

    # ---------------------------------------------------------- connectivity
    def connected_components(self) -> list[list[int]]:
        """All connected components, each a sorted list of vertex ids."""
        seen = [False] * self.num_vertices
        components: list[list[int]] = []
        for start in range(self.num_vertices):
            if seen[start]:
                continue
            component = []
            queue = deque([start])
            seen[start] = True
            while queue:
                u = queue.popleft()
                component.append(u)
                for v, _w in self._adjacency[u]:
                    if not seen[v]:
                        seen[v] = True
                        queue.append(v)
            components.append(sorted(component))
        return components

    def is_connected(self) -> bool:
        """Whether every vertex is reachable from every other vertex."""
        if self.num_vertices <= 1:
            return True
        return len(self.connected_components()) == 1

    def subgraph(self, vertices: Sequence[int]) -> tuple["SpatialNetwork", dict[int, int]]:
        """Induced subgraph on ``vertices``.

        Returns the new graph together with the mapping from old vertex ids
        to new (dense) ids.
        """
        keep = sorted(set(vertices))
        for v in keep:
            self._check_vertex(v)
        remap = {old: new for new, old in enumerate(keep)}
        xs = [float(self._xs[v]) for v in keep]
        ys = [float(self._ys[v]) for v in keep]
        sub_edges = [
            (remap[u], remap[v], w)
            for u, v, w in self._edges
            if u in remap and v in remap
        ]
        return SpatialNetwork(xs, ys, sub_edges, validate=False), remap
