"""Contraction hierarchies (CH) — fast exact distance queries.

The classic road-network preprocessing technique (Geisberger et al. 2008):
vertices are contracted in importance order, inserting *shortcut* edges that
preserve shortest-path distances among the remaining vertices; a query then
runs a bidirectional Dijkstra that only relaxes edges leading *upward* in
the contraction order, settling a tiny fraction of the graph.

This substrate accelerates the distance-hungry components (the brute-force
oracle, pairwise scoring in the join baselines) and rounds out the spatial
toolbox next to plain/bidirectional Dijkstra, A*, and ALT.  Queries are
exact; the property-based tests hold them against Dijkstra on random
graphs.
"""

from __future__ import annotations

import heapq

from repro.errors import DisconnectedError, GraphError
from repro.network.graph import SpatialNetwork

__all__ = ["ContractionHierarchy"]

_INF = float("inf")


class ContractionHierarchy:
    """A preprocessed hierarchy over a spatial network.

    Parameters (via :meth:`build`)
    ------------------------------
    witness_settle_limit:
        Cap on settled vertices per witness search during preprocessing.
        Counter-intuitively, a *larger* budget usually builds faster on
        road networks: finding more witnesses avoids shortcuts, and fewer
        shortcuts mean less downstream contraction work.
    """

    def __init__(
        self,
        rank: list[int],
        upward: list[list[tuple[int, float, int | None]]],
        num_shortcuts: int,
    ):
        self._rank = rank
        self._upward = upward
        # neighbor -> (weight, middle) per vertex, for shortcut unpacking
        self._edge_info = [
            {v: (w, m) for v, w, m in edges} for edges in upward
        ]
        self.num_shortcuts = num_shortcuts

    # ----------------------------------------------------------------- build
    @classmethod
    def build(
        cls, graph: SpatialNetwork, witness_settle_limit: int = 200
    ) -> "ContractionHierarchy":
        """Preprocess ``graph`` with lazy edge-difference ordering."""
        n = graph.num_vertices
        if n == 0:
            raise GraphError("cannot build a hierarchy over an empty graph")

        # Working adjacency: dict per vertex (neighbor -> weight), updated
        # as vertices are contracted and shortcuts inserted.
        work: list[dict[int, float]] = [dict() for __ in range(n)]
        for u, v, w in graph.edges():
            if w < work[u].get(v, _INF):
                work[u][v] = w
                work[v][u] = w

        contracted = [False] * n
        deleted_neighbors = [0] * n
        rank = [0] * n
        num_shortcuts = 0
        # Middle vertex of each working edge (None = original edge); a
        # shortcut's halves are committed upward edges of its middle, so
        # recording the middle suffices to unpack full paths later.
        mids: list[dict[int, int]] = [dict() for __ in range(n)]
        # The final upward adjacency is assembled as vertices are
        # contracted: at contraction time a vertex's remaining working edges
        # all lead to higher-ranked (not yet contracted) vertices.
        upward: list[list[tuple[int, float, int | None]]] = [[] for __ in range(n)]

        def witness_limited(source, target_set, avoid, cutoff):
            """Bounded Dijkstra avoiding ``avoid``; distances to targets."""
            dist = {source: 0.0}
            heap = [(0.0, source)]
            settled = set()
            found: dict[int, float] = {}
            remaining = set(target_set)
            while heap and remaining and len(settled) < witness_settle_limit:
                d, u = heapq.heappop(heap)
                if u in settled:
                    continue
                settled.add(u)
                if u in remaining:
                    found[u] = d
                    remaining.discard(u)
                if d > cutoff:
                    break
                for v, w in work[u].items():
                    if v == avoid or contracted[v]:
                        continue
                    nd = d + w
                    if v not in settled and nd < dist.get(v, _INF):
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))
            return found

        def shortcuts_needed(vertex):
            """The shortcut set contraction of ``vertex`` would insert."""
            neighbors = [
                (u, w) for u, w in work[vertex].items() if not contracted[u]
            ]
            needed = []
            for i, (u, wu) in enumerate(neighbors):
                targets = {v for v, __ in neighbors[i + 1 :]}
                if not targets:
                    continue
                max_via = max(wu + wv for v, wv in neighbors[i + 1 :])
                witnesses = witness_limited(u, targets, vertex, max_via)
                for v, wv in neighbors[i + 1 :]:
                    via = wu + wv
                    if witnesses.get(v, _INF) > via:
                        needed.append((u, v, via))
            return needed

        def priority(vertex):
            shortcuts = shortcuts_needed(vertex)
            degree = sum(
                1 for u in work[vertex] if not contracted[u]
            )
            return (
                len(shortcuts) - degree + deleted_neighbors[vertex],
                shortcuts,
            )

        queue: list[tuple[float, int]] = []
        for vertex in range(n):
            score, __ = priority(vertex)
            heapq.heappush(queue, (score, vertex))

        order = 0
        while queue:
            score, vertex = heapq.heappop(queue)
            if contracted[vertex]:
                continue
            # Lazy re-evaluation: re-test the priority before committing.
            new_score, shortcuts = priority(vertex)
            if queue and new_score > queue[0][0]:
                heapq.heappush(queue, (new_score, vertex))
                continue

            # Commit: record final up/down edges, insert shortcuts.
            rank[vertex] = order
            order += 1
            contracted[vertex] = True
            for u, w in work[vertex].items():
                if not contracted[u]:
                    upward[vertex].append((u, w, mids[vertex].get(u)))
                    deleted_neighbors[u] += 1
            for u, v, via in shortcuts:
                if via < work[u].get(v, _INF):
                    work[u][v] = via
                    work[v][u] = via
                    mids[u][v] = vertex
                    mids[v][u] = vertex
                    num_shortcuts += 1
        return cls(rank, upward, num_shortcuts)

    # ----------------------------------------------------------------- query
    def distance(self, source: int, target: int) -> float:
        """Exact network distance via the bidirectional upward search.

        Raises :class:`DisconnectedError` when no path exists.
        """
        n = len(self._rank)
        if not (0 <= source < n) or not (0 <= target < n):
            raise GraphError(
                f"query ({source}, {target}) outside vertex range 0..{n - 1}"
            )
        if source == target:
            return 0.0
        best = _INF
        dists: list[dict[int, float]] = [{source: 0.0}, {target: 0.0}]
        heaps = [[(0.0, source)], [(0.0, target)]]
        settled: list[set[int]] = [set(), set()]
        adjacency = (self._upward, self._upward)
        while heaps[0] or heaps[1]:
            for side in (0, 1):
                heap = heaps[side]
                if not heap:
                    continue
                if heap[0][0] >= best:
                    heap.clear()  # this frontier can no longer improve
                    continue
                d, u = heapq.heappop(heap)
                if u in settled[side]:
                    continue
                settled[side].add(u)
                other = dists[1 - side].get(u)
                if other is not None and d + other < best:
                    best = d + other
                for v, w, __m in adjacency[side][u]:
                    nd = d + w
                    if v not in settled[side] and nd < dists[side].get(v, _INF):
                        dists[side][v] = nd
                        heapq.heappush(heap, (nd, v))
        if best == _INF:
            raise DisconnectedError(source, target)
        return best

    def path(self, source: int, target: int) -> tuple[list[int], float]:
        """Full shortest path as ``(vertex sequence, length)``.

        Runs the bidirectional upward search with parent tracking, then
        recursively unpacks every shortcut edge into its two halves (a
        shortcut's halves are committed upward edges of its middle vertex).
        """
        n = len(self._rank)
        if not (0 <= source < n) or not (0 <= target < n):
            raise GraphError(
                f"query ({source}, {target}) outside vertex range 0..{n - 1}"
            )
        if source == target:
            return [source], 0.0
        best = _INF
        meeting = -1
        dists: list[dict[int, float]] = [{source: 0.0}, {target: 0.0}]
        parents: list[dict[int, int]] = [{}, {}]
        heaps = [[(0.0, source)], [(0.0, target)]]
        settled: list[set[int]] = [set(), set()]
        while heaps[0] or heaps[1]:
            for side in (0, 1):
                heap = heaps[side]
                if not heap:
                    continue
                if heap[0][0] >= best:
                    heap.clear()
                    continue
                d, u = heapq.heappop(heap)
                if u in settled[side]:
                    continue
                settled[side].add(u)
                other = dists[1 - side].get(u)
                if other is not None and d + other < best:
                    best = d + other
                    meeting = u
                for v, w, __m in self._upward[u]:
                    nd = d + w
                    if v not in settled[side] and nd < dists[side].get(v, _INF):
                        dists[side][v] = nd
                        parents[side][v] = u
                        heapq.heappush(heap, (nd, v))
        if meeting < 0:
            raise DisconnectedError(source, target)

        forward = [meeting]
        while forward[-1] != source:
            forward.append(parents[0][forward[-1]])
        forward.reverse()
        backward = [meeting]
        while backward[-1] != target:
            backward.append(parents[1][backward[-1]])

        path = [source]
        for a, b in zip(forward, forward[1:]):
            # Edge lies in upward[a] (forward edges climb the hierarchy).
            path.extend(self._unpack(a, b)[1:])
        for a, b in zip(backward, backward[1:]):
            # Backward edges climb from b's side: unpack reversed.
            path.extend(list(reversed(self._unpack(b, a)))[1:])
        return path, best

    def _unpack(self, low: int, high: int) -> list[int]:
        """Expand the hierarchy edge ``low -> high`` into original vertices."""
        info = self._edge_info[low].get(high)
        if info is None:
            # The edge was committed from the other endpoint.
            info = self._edge_info[high].get(low)
        if info is None:
            raise GraphError(f"no hierarchy edge between {low} and {high}")
        __, middle = info
        if middle is None:
            return [low, high]
        left = self._unpack_via(middle, low)
        right = self._unpack_via(middle, high)
        return left[::-1] + right[1:]

    def _unpack_via(self, middle: int, endpoint: int) -> list[int]:
        """Expand the committed upward edge ``middle -> endpoint``.

        Returns the vertex sequence from ``middle`` to ``endpoint``.
        """
        info = self._edge_info[middle].get(endpoint)
        if info is None:
            raise GraphError(
                f"missing shortcut half between {middle} and {endpoint}"
            )
        __, sub_middle = info
        if sub_middle is None:
            return [middle, endpoint]
        left = self._unpack_via(sub_middle, middle)
        right = self._unpack_via(sub_middle, endpoint)
        return left[::-1] + right[1:]

    @property
    def num_vertices(self) -> int:
        """Vertices in the hierarchy."""
        return len(self._rank)

    def __repr__(self) -> str:
        return (
            f"ContractionHierarchy(|V|={len(self._rank)}, "
            f"shortcuts={self.num_shortcuts})"
        )
