"""Flat CSR adjacency and array-backed shortest-path kernels.

The per-vertex list-of-tuples adjacency is convenient but slow on the hot
path: every Dijkstra relaxation chases a list of small tuples and every
``dist`` lookup hashes into a dict.  This module provides the compact
alternative: one ``indptr``/``indices``/``weights`` triple (the classic
compressed-sparse-row layout) built once per graph, plus the shortest-path
kernels rewritten against it with flat ``dist`` arrays and a ``settled``
byte mask instead of dicts and sets.

Two execution tiers share the layout:

- a pure-Python tier that walks Python-list mirrors of the CSR arrays
  (scalar indexing on lists is several times faster than on NumPy arrays
  inside interpreted loops), used for every early-exit variant
  (single-target, multi-target, cutoff);
- a SciPy tier (``scipy.sparse.csgraph.dijkstra``) for full or
  cutoff-bounded single/multi-source explorations, used when SciPy is
  importable.  SciPy is an optional accelerator, never a requirement:
  every kernel falls back to the Python tier.

SciPy is resolved *lazily*, on the first kernel call that could use it —
importing this module (and therefore ``repro.core.search`` and the serving
layer above it) never pays the scipy import, keeping service cold-start
light.

All kernels return dense ``float64`` distance arrays with ``inf`` marking
vertices that were not settled (unreachable, or beyond the cutoff), which
callers convert to the historical dict form where needed.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "CSRAdjacency",
    "scipy_available",
    "sssp_array",
    "sssp_arrays_batch",
    "targets_array",
    "array_to_distance_dict",
]

_INF = float("inf")

# Lazily resolved (csr_matrix, dijkstra) pair; None = not yet attempted.
# (None, None) after a failed import — the Python tier serves everything.
_SCIPY_KERNELS: tuple | None = None


def _scipy_kernels() -> tuple:
    """Resolve the optional SciPy accelerator on first use (cached)."""
    global _SCIPY_KERNELS
    if _SCIPY_KERNELS is None:
        try:
            from scipy.sparse import csr_matrix
            from scipy.sparse.csgraph import dijkstra
        except ImportError:  # pragma: no cover - exercised only without scipy
            _SCIPY_KERNELS = (None, None)
        else:
            _SCIPY_KERNELS = (csr_matrix, dijkstra)
    return _SCIPY_KERNELS


def scipy_available() -> bool:
    """Whether the SciPy ``csgraph`` fast path is importable."""
    return _scipy_kernels()[1] is not None


class CSRAdjacency:
    """Compressed-sparse-row view of an undirected spatial network.

    ``indices[indptr[u]:indptr[u + 1]]`` are the neighbours of ``u`` and
    ``weights[...]`` the matching edge weights; both directions of every
    undirected edge are materialised, so the arrays describe a symmetric
    directed graph.  Immutable once built (like the graph it mirrors).

    The NumPy arrays serve vectorised consumers (SciPy, landmark tables);
    the ``*_list`` mirrors serve the interpreted kernels, where Python-list
    scalar indexing avoids a NumPy-scalar box per access.
    """

    __slots__ = (
        "num_vertices",
        "indptr",
        "indices",
        "weights",
        "indptr_list",
        "indices_list",
        "weights_list",
        "_matrix",
    )

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray):
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.num_vertices = len(indptr) - 1
        self.indptr_list: list[int] = indptr.tolist()
        self.indices_list: list[int] = indices.tolist()
        self.weights_list: list[float] = weights.tolist()
        self._matrix = None

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Sequence[tuple[int, int, float]]
    ) -> "CSRAdjacency":
        """Build from undirected ``(u, v, w)`` triples (each edge once)."""
        m = len(edges)
        if m:
            arr = np.asarray(edges, dtype=np.float64)
            us = arr[:, 0].astype(np.int64)
            vs = arr[:, 1].astype(np.int64)
            ws = arr[:, 2]
            heads = np.concatenate([us, vs])
            tails = np.concatenate([vs, us])
            both_w = np.concatenate([ws, ws])
        else:
            heads = np.empty(0, dtype=np.int64)
            tails = np.empty(0, dtype=np.int64)
            both_w = np.empty(0, dtype=np.float64)
        order = np.argsort(heads, kind="stable")
        counts = np.bincount(heads, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, tails[order], both_w[order])

    def matrix(self):
        """The SciPy CSR matrix (cached; ``None`` when SciPy is absent)."""
        csr_matrix = _scipy_kernels()[0]
        if csr_matrix is None:
            return None
        if self._matrix is None:
            n = self.num_vertices
            self._matrix = csr_matrix(
                (self.weights, self.indices, self.indptr), shape=(n, n)
            )
        return self._matrix

    def __repr__(self) -> str:
        return (
            f"CSRAdjacency(|V|={self.num_vertices}, "
            f"arcs={len(self.indices)}, scipy={self._matrix is not None})"
        )


# ------------------------------------------------------------------ kernels
def _sssp_python(
    csr: CSRAdjacency,
    sources: Iterable[int],
    cutoff: float | None,
    target: int | None,
) -> np.ndarray:
    """Interpreted multi-source Dijkstra over the CSR list mirrors."""
    n = csr.num_vertices
    dist = [_INF] * n
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heap.append((0.0, s))
    heapq.heapify(heap)
    settled = bytearray(n)
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    pop = heapq.heappop
    push = heapq.heappush
    while heap:
        d, u = pop(heap)
        if settled[u]:
            continue
        if cutoff is not None and d > cutoff:
            break
        settled[u] = 1
        if u == target:
            break
        start = indptr[u]
        end = indptr[u + 1]
        for k in range(start, end):
            v = indices[k]
            nd = d + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                push(heap, (nd, v))
    out = np.full(n, np.inf)
    for v in range(n):
        if settled[v]:
            out[v] = dist[v]
    return out


def sssp_array(
    csr: CSRAdjacency,
    sources: Iterable[int],
    cutoff: float | None = None,
    target: int | None = None,
) -> np.ndarray:
    """Multi-source shortest-path distances as a dense array.

    Entry ``v`` is the exact distance ``min over sources s of sd(s, v)``
    when that distance is ``<= cutoff`` (every distance with
    ``cutoff=None``) and ``inf`` otherwise.  ``target`` requests an early
    exit: only the target's entry (plus whatever was settled on the way)
    is guaranteed.  The SciPy tier handles full and cutoff-bounded
    explorations; targeted searches always run the interpreted tier, which
    can actually stop early.
    """
    source_list = list(sources)
    dijkstra = _scipy_kernels()[1]
    if target is None and dijkstra is not None and csr.num_vertices > 0:
        matrix = csr.matrix()
        limit = np.inf if cutoff is None else float(cutoff)
        if len(source_list) == 1:
            return dijkstra(
                matrix, directed=True, indices=source_list[0], limit=limit
            )
        return dijkstra(
            matrix, directed=True, indices=source_list, limit=limit, min_only=True
        )
    return _sssp_python(csr, source_list, cutoff, target)


def sssp_arrays_batch(csr: CSRAdjacency, sources: Sequence[int]) -> np.ndarray:
    """Full distances from each source: shape ``(len(sources), |V|)``.

    One vectorised SciPy call when available (the all-pairs / landmark-table
    shape), otherwise a row-per-source interpreted loop.
    """
    if not len(sources):
        return np.empty((0, csr.num_vertices))
    dijkstra = _scipy_kernels()[1]
    if dijkstra is not None and csr.num_vertices > 0:
        return np.atleast_2d(
            dijkstra(csr.matrix(), directed=True, indices=list(sources))
        )
    return np.vstack([_sssp_python(csr, (s,), None, None) for s in sources])


# Above this vertex count a full C-speed sweep beats the interpreted
# early-exit search even when the targets happen to be nearby.
_SCIPY_TARGETS_MIN_VERTICES = 512


def targets_array(
    csr: CSRAdjacency,
    sources: Iterable[int],
    targets: Sequence[int],
    cutoff: float | None = None,
) -> list[float]:
    """Distances from the source set to each target, stopping early.

    The interpreted kernel with a remaining-target counter: the search ends
    as soon as every target is settled (or the frontier passes ``cutoff``).
    Unreached targets come back as ``inf``, in ``targets`` order.  On large
    graphs the early exit cannot outrun SciPy's compiled sweep, so the
    SciPy tier takes over past ``_SCIPY_TARGETS_MIN_VERTICES`` vertices.
    """
    n = csr.num_vertices
    sources = list(sources)
    if (
        sources
        and n >= _SCIPY_TARGETS_MIN_VERTICES
        and _scipy_kernels()[1] is not None
    ):
        row = sssp_array(csr, sources, cutoff=cutoff)
        return [float(row[t]) for t in targets]
    remaining = set(targets)
    remaining_count = len(remaining)
    dist = [_INF] * n
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heap.append((0.0, s))
    heapq.heapify(heap)
    settled = bytearray(n)
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    pop = heapq.heappop
    push = heapq.heappush
    found: dict[int, float] = {}
    while heap and remaining_count:
        d, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if u in remaining:
            found[u] = d
            remaining.discard(u)
            remaining_count -= 1
        if cutoff is not None and d > cutoff:
            break
        start = indptr[u]
        end = indptr[u + 1]
        for k in range(start, end):
            v = indices[k]
            nd = d + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                push(heap, (nd, v))
    return [found.get(t, _INF) for t in targets]


def array_to_distance_dict(distances: np.ndarray) -> dict[int, float]:
    """The historical ``{vertex: distance}`` form of a dense distance row."""
    reached = np.flatnonzero(np.isfinite(distances))
    return dict(zip(reached.tolist(), distances[reached].tolist()))
