"""Shortest-path primitives on spatial networks.

All functions implement Dijkstra's algorithm with a binary heap and lazy
deletion, the workhorse of every search in this library.  Variants cover
single-target search with early exit, bounded exploration (``cutoff``),
multi-target search that stops once all targets are settled, and dense
all-pairs matrices for small graphs.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

from repro.errors import DisconnectedError
from repro.network.graph import SpatialNetwork

__all__ = [
    "shortest_path_length",
    "shortest_path",
    "single_source_distances",
    "distances_to_targets",
    "distance_matrix",
    "eccentricity",
]

_INF = float("inf")


def shortest_path_length(graph: SpatialNetwork, source: int, target: int) -> float:
    """Network distance ``sd(source, target)``.

    Raises :class:`DisconnectedError` when no path exists.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return 0.0
    dist = _dijkstra(graph, (source,), target=target)
    if target not in dist:
        raise DisconnectedError(source, target)
    return dist[target]


def shortest_path(
    graph: SpatialNetwork, source: int, target: int
) -> tuple[list[int], float]:
    """Shortest path as ``(vertex sequence, length)``.

    Raises :class:`DisconnectedError` when no path exists.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return [source], 0.0
    dist, parent = _dijkstra_with_parents(graph, source, target)
    if target not in dist:
        raise DisconnectedError(source, target)
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path, dist[target]


def single_source_distances(
    graph: SpatialNetwork, source: int, cutoff: float | None = None
) -> dict[int, float]:
    """Distances from ``source`` to every vertex within ``cutoff``.

    With ``cutoff=None`` the whole reachable component is explored.
    """
    graph._check_vertex(source)
    return _dijkstra(graph, (source,), cutoff=cutoff)


def distances_to_targets(
    graph: SpatialNetwork,
    source: int,
    targets: Iterable[int],
    cutoff: float | None = None,
) -> dict[int, float]:
    """Distances from ``source`` to each vertex in ``targets``.

    The search stops as soon as every target is settled (or the cutoff is
    reached); unreachable targets are simply absent from the result.
    """
    graph._check_vertex(source)
    remaining = set(targets)
    for t in remaining:
        graph._check_vertex(t)
    result: dict[int, float] = {}
    if not remaining:
        return result

    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    adjacency = graph.adjacency
    while heap and remaining:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u in remaining:
            result[u] = d
            remaining.discard(u)
        if cutoff is not None and d > cutoff:
            break
        for v, w in adjacency[u]:
            nd = d + w
            if nd < dist.get(v, _INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return result


def distance_matrix(
    graph: SpatialNetwork, sources: Sequence[int] | None = None
) -> np.ndarray:
    """Dense matrix of pairwise network distances.

    ``sources`` defaults to all vertices; rows follow ``sources`` and columns
    are all vertex ids.  Unreachable pairs are ``inf``.  Intended for small
    graphs (the all-pairs pre-computation the TF baseline of the paper family
    relies on).
    """
    if sources is None:
        sources = range(graph.num_vertices)
    matrix = np.full((len(sources), graph.num_vertices), np.inf)
    for row, s in enumerate(sources):
        for v, d in single_source_distances(graph, s).items():
            matrix[row, v] = d
    return matrix


def eccentricity(graph: SpatialNetwork, vertex: int) -> tuple[int, float]:
    """The farthest vertex from ``vertex`` and its distance.

    Two applications of this function give the classic double-sweep lower
    bound on the graph diameter.
    """
    dist = single_source_distances(graph, vertex)
    far = max(dist, key=dist.get)
    return far, dist[far]


# ---------------------------------------------------------------- internals
def _dijkstra(
    graph: SpatialNetwork,
    sources: Iterable[int],
    target: int | None = None,
    cutoff: float | None = None,
) -> dict[int, float]:
    """Multi-source Dijkstra returning settled distances."""
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heap.append((0.0, s))
    heapq.heapify(heap)
    settled: dict[int, float] = {}
    adjacency = graph.adjacency
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if cutoff is not None and d > cutoff:
            break
        settled[u] = d
        if u == target:
            break
        for v, w in adjacency[u]:
            nd = d + w
            if v not in settled and nd < dist.get(v, _INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return settled


def _dijkstra_with_parents(
    graph: SpatialNetwork, source: int, target: int | None = None
) -> tuple[dict[int, float], dict[int, int]]:
    """Dijkstra that also records the shortest-path tree parents."""
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: dict[int, float] = {}
    adjacency = graph.adjacency
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled[u] = d
        if u == target:
            break
        for v, w in adjacency[u]:
            nd = d + w
            if v not in settled and nd < dist.get(v, _INF):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return settled, parent
