"""Shortest-path primitives on spatial networks.

All functions implement Dijkstra's algorithm with a binary heap and lazy
deletion, the workhorse of every search in this library.  Variants cover
single-target search with early exit, bounded exploration (``cutoff``),
multi-target search that stops once all targets are settled, and dense
all-pairs matrices for small graphs.

The hot loops run against the graph's flat CSR layout
(:mod:`repro.network.csr`): array-backed ``dist``/``settled`` state, a
SciPy ``csgraph`` tier for full explorations when SciPy is importable, and
interpreted list-mirror kernels everywhere else.  The historical dict-based
kernels are kept (``dict_reference_sssp``) as the executable specification
the property tests and benchmarks compare against.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

import numpy as np

from repro.errors import DisconnectedError
from repro.network.csr import (
    array_to_distance_dict,
    sssp_array,
    sssp_arrays_batch,
    targets_array,
)
from repro.network.graph import SpatialNetwork

__all__ = [
    "shortest_path_length",
    "shortest_path",
    "single_source_distances",
    "distances_to_targets",
    "distance_matrix",
    "eccentricity",
    "dict_reference_sssp",
]

_INF = float("inf")


def shortest_path_length(graph: SpatialNetwork, source: int, target: int) -> float:
    """Network distance ``sd(source, target)``.

    Raises :class:`DisconnectedError` when no path exists.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return 0.0
    dist = sssp_array(graph.csr, (source,), target=target)
    if dist[target] == _INF:
        raise DisconnectedError(source, target)
    return float(dist[target])


def shortest_path(
    graph: SpatialNetwork, source: int, target: int
) -> tuple[list[int], float]:
    """Shortest path as ``(vertex sequence, length)``.

    Raises :class:`DisconnectedError` when no path exists.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return [source], 0.0
    csr = graph.csr
    n = csr.num_vertices
    dist = [_INF] * n
    dist[source] = 0.0
    parent = [-1] * n
    settled = bytearray(n)
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr = csr.indptr_list
    indices = csr.indices_list
    weights = csr.weights_list
    pop = heapq.heappop
    push = heapq.heappush
    while heap:
        d, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = 1
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(parent[path[-1]])
            path.reverse()
            return path, d
        for k in range(indptr[u], indptr[u + 1]):
            v = indices[k]
            nd = d + weights[k]
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                push(heap, (nd, v))
    raise DisconnectedError(source, target)


def single_source_distances(
    graph: SpatialNetwork, source: int, cutoff: float | None = None
) -> dict[int, float]:
    """Distances from ``source`` to every vertex within ``cutoff``.

    With ``cutoff=None`` the whole reachable component is explored.
    """
    graph._check_vertex(source)
    return array_to_distance_dict(sssp_array(graph.csr, (source,), cutoff=cutoff))


def distances_to_targets(
    graph: SpatialNetwork,
    source: int,
    targets: Iterable[int],
    cutoff: float | None = None,
) -> dict[int, float]:
    """Distances from ``source`` to each vertex in ``targets``.

    The search stops as soon as every target is settled (or the cutoff is
    reached); unreachable targets are simply absent from the result.
    """
    graph._check_vertex(source)
    target_list = list(dict.fromkeys(targets))
    for t in target_list:
        graph._check_vertex(t)
    if not target_list:
        return {}
    found = targets_array(graph.csr, (source,), target_list, cutoff=cutoff)
    return {t: d for t, d in zip(target_list, found) if d != _INF}


def distance_matrix(
    graph: SpatialNetwork, sources: Sequence[int] | None = None
) -> np.ndarray:
    """Dense matrix of pairwise network distances.

    ``sources`` defaults to all vertices; rows follow ``sources`` and columns
    are all vertex ids.  Unreachable pairs are ``inf``.  One batched CSR
    call when SciPy is present.  Intended for small graphs (the all-pairs
    pre-computation the TF baseline of the paper family relies on).
    """
    if sources is None:
        sources = range(graph.num_vertices)
    return sssp_arrays_batch(graph.csr, list(sources))


def eccentricity(graph: SpatialNetwork, vertex: int) -> tuple[int, float]:
    """The farthest vertex from ``vertex`` and its distance.

    Two applications of this function give the classic double-sweep lower
    bound on the graph diameter.
    """
    dist = single_source_distances(graph, vertex)
    far = max(dist, key=dist.get)
    return far, dist[far]


# -------------------------------------------------------------- reference
def dict_reference_sssp(
    graph: SpatialNetwork,
    sources: Iterable[int],
    target: int | None = None,
    cutoff: float | None = None,
) -> dict[int, float]:
    """The historical dict-based multi-source Dijkstra (reference kernel).

    Kept as the executable specification: the property tests and the P1
    kernel benchmark compare the CSR kernels against this implementation.
    Semantics are identical to the array kernels — settled distances for
    every vertex within ``cutoff``, early exit at ``target``.
    """
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = []
    for s in sources:
        dist[s] = 0.0
        heap.append((0.0, s))
    heapq.heapify(heap)
    settled: dict[int, float] = {}
    adjacency = graph.adjacency
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if cutoff is not None and d > cutoff:
            break
        settled[u] = d
        if u == target:
            break
        for v, w in adjacency[u]:
            nd = d + w
            if v not in settled and nd < dist.get(v, _INF):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return settled
