"""Benchmark dataset bundles.

The paper evaluates on the Beijing Road Network (BRN: 28,342 vertices,
27,690 edges, T-Drive taxi trajectories, average length ~72) and the New
York Road Network (NRN: 95,581 vertices, 260,855 edges, NYC taxi trips,
average length ~80).  Neither is redistributable, so the bundles here are
the documented substitutions (DESIGN.md): a ring-radial network for BRN, a
grid network for NRN, hub-biased shortest-path trips with matching length
statistics, and Zipf keyword annotations.

Sizes scale with the ``REPRO_SCALE`` environment variable (default 0.25:
laptop-friendly pure-Python benchmarks; 1.0 approaches the paper's network
sizes).  Bundles are cached per (name, size, scale, seed) within a process
so a benchmark module builds its data once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import DatasetError
from repro.index.database import TrajectoryDatabase
from repro.network.generators import grid_network, ring_radial_network
from repro.network.graph import SpatialNetwork
from repro.text.assignment import annotate_trajectories, assign_vertex_keywords
from repro.text.vocabulary import Vocabulary
from repro.trajectory.generator import TripConfig, generate_trips
from repro.trajectory.model import TrajectorySet

__all__ = ["DatasetBundle", "build_bundle", "bench_scale", "DATASET_BUILDERS"]


def bench_scale() -> float:
    """The global size multiplier from ``REPRO_SCALE`` (default 0.25)."""
    try:
        scale = float(os.environ.get("REPRO_SCALE", "0.25"))
    except ValueError:
        raise DatasetError("REPRO_SCALE must be a number") from None
    if scale <= 0:
        raise DatasetError("REPRO_SCALE must be positive")
    return scale


@dataclass(frozen=True)
class DatasetBundle:
    """A ready-to-query benchmark dataset."""

    name: str
    graph: SpatialNetwork
    trajectories: TrajectorySet
    database: TrajectoryDatabase
    vocabulary: Vocabulary

    def describe(self) -> str:
        """One-line summary for benchmark headers."""
        return (
            f"{self.name}: |V|={self.graph.num_vertices} "
            f"|E|={self.graph.num_edges} |P|={len(self.trajectories)}"
        )


def _brn_graph(scale: float, seed: int) -> SpatialNetwork:
    # Full scale: 94 rings x 300 radials ~ 28.2k vertices (BRN's 28,342).
    rings = max(4, round(94 * scale**0.5))
    radials = max(8, round(300 * scale**0.5))
    return ring_radial_network(rings, radials, ring_spacing=250.0, seed=seed)


def _nrn_graph(scale: float, seed: int) -> SpatialNetwork:
    # Full scale: 310 x 310 ~ 96k vertices (NRN's 95,581).
    side = max(8, round(310 * scale**0.5))
    return grid_network(side, side, spacing=120.0, seed=seed)


_GRAPH_BUILDERS = {"brn": _brn_graph, "nrn": _nrn_graph}

#: Dataset name -> (graph builder, trip target points).  BRN trips average
#: ~72 samples in the paper, NRN ~80.
DATASET_BUILDERS = {"brn": 72, "nrn": 80}


@lru_cache(maxsize=8)
def _cached_bundle(
    name: str, num_trajectories: int, scale: float, seed: int, vocabulary_size: int
) -> DatasetBundle:
    try:
        graph_builder = _GRAPH_BUILDERS[name]
        target_points = DATASET_BUILDERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(_GRAPH_BUILDERS)}"
        ) from None
    graph = graph_builder(scale, seed)
    trips = generate_trips(
        graph,
        num_trajectories,
        seed=seed + 1,
        config=TripConfig(target_points=target_points),
    )
    vocabulary = Vocabulary.build(vocabulary_size, seed=seed + 2)
    vertex_keywords = assign_vertex_keywords(
        graph, vocabulary, poi_fraction=0.12, seed=seed + 3
    )
    trips = annotate_trajectories(trips, vertex_keywords, seed=seed + 4)
    return DatasetBundle(
        name=name,
        graph=graph,
        trajectories=trips,
        database=TrajectoryDatabase(graph, trips),
        vocabulary=vocabulary,
    )


def build_bundle(
    name: str = "brn",
    num_trajectories: int | None = None,
    scale: float | None = None,
    seed: int = 0,
    vocabulary_size: int = 200,
) -> DatasetBundle:
    """Build (or fetch the cached) benchmark bundle.

    ``num_trajectories`` defaults to ``8000 * scale`` and ``scale`` to
    :func:`bench_scale`.
    """
    if scale is None:
        scale = bench_scale()
    if num_trajectories is None:
        num_trajectories = max(200, round(8000 * scale))
    return _cached_bundle(name, num_trajectories, scale, seed, vocabulary_size)
