"""Seeded query workloads for the benchmarks.

A UOTS query asks for places visitable in *one trip* plus a preference, so
the workload samples each query around an **anchor trajectory** drawn from
the dataset: the intended places are (a subset of) the anchor's vertices and
the preference mixes the anchor's keywords with popular vocabulary terms —
the "a traveler like the ones in the data" model.  A fraction of queries
use uniformly random locations instead (the stress case where no trajectory
matches well).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.datasets import DatasetBundle
from repro.core.query import UOTSQuery
from repro.errors import DatasetError
from repro.matching.ptm import PTMQuery

__all__ = ["WorkloadConfig", "make_queries", "make_ptm_queries"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a query workload."""

    num_queries: int = 40
    num_locations: int = 4
    num_keywords: int = 4
    lam: float = 0.5
    k: int = 10
    anchored_fraction: float = 0.9
    seed: int = 0

    def __post_init__(self):
        if self.num_queries < 1 or self.num_locations < 1:
            raise DatasetError("need >= 1 query and >= 1 location")
        if self.num_keywords < 0 or self.k < 1:
            raise DatasetError("need num_keywords >= 0 and k >= 1")
        if not (0.0 <= self.anchored_fraction <= 1.0):
            raise DatasetError("anchored_fraction must be in [0, 1]")


def make_queries(bundle: DatasetBundle, config: WorkloadConfig) -> list[UOTSQuery]:
    """Generate a seeded batch of UOTS queries over ``bundle``."""
    rng = random.Random(config.seed)
    graph = bundle.graph
    ids = bundle.trajectories.ids()
    queries = []
    for __ in range(config.num_queries):
        anchored = rng.random() < config.anchored_fraction
        locations: list[int] = []
        keywords: list[str] = []
        if anchored:
            anchor = bundle.database.get(rng.choice(ids))
            vertices = list(dict.fromkeys(anchor.vertices()))
            locations = rng.sample(
                vertices, min(config.num_locations, len(vertices))
            )
            # Sorted: frozenset iteration order varies with the per-process
            # string hash seed, which would make the workload (and every
            # benchmark comparison on it) unreproducible across runs.
            keywords = sorted(anchor.keywords)[: config.num_keywords]
        while len(locations) < config.num_locations:
            candidate = rng.randrange(graph.num_vertices)
            if candidate not in locations:
                locations.append(candidate)
        while len(keywords) < config.num_keywords:
            term = bundle.vocabulary.sample(1, rng)[0]
            if term not in keywords:
                keywords.append(term)
        queries.append(
            UOTSQuery.create(locations, keywords, lam=config.lam, k=config.k)
        )
    return queries


def make_ptm_queries(
    bundle: DatasetBundle, count: int, lam: float = 0.5, k: int = 10, seed: int = 0
) -> list[PTMQuery]:
    """Matching queries: existing trajectories replayed as intents."""
    rng = random.Random(seed)
    ids = bundle.trajectories.ids()
    return [
        PTMQuery(bundle.database.get(rng.choice(ids)), lam=lam, k=k)
        for __ in range(count)
    ]
