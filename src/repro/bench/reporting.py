"""Paper-style table rendering for benchmark output.

Plain monospace tables like the ones in the paper's experimental section,
printed to stdout so ``python benchmarks/bench_*.py`` output can be pasted
straight into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_sweep", "print_header"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_sweep(
    parameter: str,
    rows,
    algorithms: Sequence[str],
    metric: str = "mean_ms",
) -> str:
    """Render a sweep (one row per parameter value, one column per algorithm).

    ``metric`` is an :class:`AlgoMetrics` attribute or property name.
    """
    headers = [parameter] + list(algorithms)
    table_rows = []
    for row in rows:
        cells = [row.value]
        for algorithm in algorithms:
            metrics = row.metrics.get(algorithm)
            cells.append(getattr(metrics, metric) if metrics else "-")
        table_rows.append(cells)
    return format_table(headers, table_rows)


def print_header(title: str, subtitle: str = "") -> None:
    """Print an experiment banner."""
    print()
    print("=" * 72)
    print(title)
    if subtitle:
        print(subtitle)
    print("=" * 72)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
