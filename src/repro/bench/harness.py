"""Benchmark harness: run algorithm batteries, aggregate paper-style metrics.

Each experiment sweeps one parameter and, per parameter value, runs the same
query batch through every algorithm, aggregating the paper's two main
metrics — CPU time and number of visited trajectories — plus the pruning
counters needed for the pruning-effectiveness table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bench.datasets import DatasetBundle
from repro.core.engine import make_searcher
from repro.core.query import UOTSQuery

__all__ = ["AlgoMetrics", "run_battery", "sweep"]


@dataclass
class AlgoMetrics:
    """Aggregated per-algorithm metrics over a query batch."""

    algorithm: str
    queries: int = 0
    total_seconds: float = 0.0
    visited_trajectories: int = 0
    expanded_vertices: int = 0
    similarity_evaluations: int = 0
    pruned_trajectories: int = 0

    @property
    def mean_ms(self) -> float:
        """Mean per-query runtime in milliseconds."""
        return 1000.0 * self.total_seconds / max(1, self.queries)

    @property
    def mean_visited(self) -> float:
        """Mean visited trajectories per query."""
        return self.visited_trajectories / max(1, self.queries)

    def candidate_ratio(self, database_size: int) -> float:
        """Fraction of the database that received an exact evaluation."""
        return self.similarity_evaluations / max(1, self.queries * database_size)


def run_battery(
    bundle: DatasetBundle,
    queries: Sequence[UOTSQuery],
    algorithms: Sequence[str],
) -> dict[str, AlgoMetrics]:
    """Run every algorithm over every query; aggregate per algorithm.

    Fresh searcher per algorithm (they are stateless across queries apart
    from shared indexes, which belong to the bundle's database).
    """
    results: dict[str, AlgoMetrics] = {}
    for algorithm in algorithms:
        searcher = make_searcher(bundle.database, algorithm)
        metrics = AlgoMetrics(algorithm=algorithm)
        for query in queries:
            started = time.perf_counter()
            result = searcher.search(query)
            metrics.total_seconds += time.perf_counter() - started
            metrics.queries += 1
            metrics.visited_trajectories += result.stats.visited_trajectories
            metrics.expanded_vertices += result.stats.expanded_vertices
            metrics.similarity_evaluations += result.stats.similarity_evaluations
            metrics.pruned_trajectories += result.stats.pruned_trajectories
        results[algorithm] = metrics
    return results


@dataclass
class SweepRow:
    """One sweep point: the parameter value and per-algorithm metrics."""

    value: object
    metrics: dict[str, AlgoMetrics] = field(default_factory=dict)


def sweep(
    values: Sequence[object],
    runner: Callable[[object], dict[str, AlgoMetrics]],
) -> list[SweepRow]:
    """Run ``runner`` for each parameter value, collecting rows."""
    return [SweepRow(value=value, metrics=runner(value)) for value in values]
