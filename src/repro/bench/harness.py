"""Benchmark harness: run algorithm batteries, aggregate paper-style metrics.

Each experiment sweeps one parameter and, per parameter value, runs the same
query batch through every algorithm, aggregating the paper's two main
metrics — CPU time and number of visited trajectories — plus the pruning
counters needed for the pruning-effectiveness table.

The battery runs through one :class:`~repro.service.service.QueryService`
per algorithm, the same serving substrate production callers use, so the
numbers include the service's (negligible) dispatch overhead and the
service-level latency percentiles come for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.bench.datasets import DatasetBundle
from repro.core.query import UOTSQuery
from repro.service.service import QueryService

__all__ = ["AlgoMetrics", "run_battery", "sweep"]


def _percentile(samples: list[float], p: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty sample."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * p // 100))
    return ordered[int(rank) - 1]


@dataclass
class AlgoMetrics:
    """Aggregated per-algorithm metrics over a query batch."""

    algorithm: str
    queries: int = 0
    total_seconds: float = 0.0
    visited_trajectories: int = 0
    expanded_vertices: int = 0
    similarity_evaluations: int = 0
    pruned_trajectories: int = 0
    result_cache_hits: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def mean_ms(self) -> float:
        """Mean per-query runtime in milliseconds."""
        return 1000.0 * self.total_seconds / max(1, self.queries)

    @property
    def p50_ms(self) -> float:
        """Median per-query runtime in milliseconds."""
        return 1000.0 * _percentile(self.latencies, 50.0)

    @property
    def p95_ms(self) -> float:
        """95th-percentile per-query runtime in milliseconds."""
        return 1000.0 * _percentile(self.latencies, 95.0)

    @property
    def mean_visited(self) -> float:
        """Mean visited trajectories per query."""
        return self.visited_trajectories / max(1, self.queries)

    def candidate_ratio(self, database_size: int) -> float:
        """Fraction of the database that received an exact evaluation."""
        return self.similarity_evaluations / max(1, self.queries * database_size)


def run_battery(
    bundle: DatasetBundle,
    queries: Sequence[UOTSQuery],
    algorithms: Sequence[str],
    result_cache: int | None = None,
) -> dict[str, AlgoMetrics]:
    """Run every algorithm over every query; aggregate per algorithm.

    One :class:`QueryService` (hence one stateless searcher) per algorithm;
    the shared indexes belong to the bundle's database.  ``result_cache``
    bounds an optional per-service result cache (default off, keeping the
    battery a pure algorithm comparison); a hit's elapsed time is the O(1)
    lookup, so repeated workloads show the serving-layer speedup directly.
    """
    results: dict[str, AlgoMetrics] = {}
    for algorithm in algorithms:
        service = QueryService(bundle.database, algorithm, result_cache=result_cache)
        metrics = AlgoMetrics(algorithm=algorithm)
        for query in queries:
            result = service.search(query)
            elapsed = result.stats.elapsed_seconds
            metrics.total_seconds += elapsed
            metrics.latencies.append(elapsed)
            metrics.queries += 1
            metrics.visited_trajectories += result.stats.visited_trajectories
            metrics.expanded_vertices += result.stats.expanded_vertices
            metrics.similarity_evaluations += result.stats.similarity_evaluations
            metrics.pruned_trajectories += result.stats.pruned_trajectories
            if result.stats.cache == "result":
                metrics.result_cache_hits += 1
        results[algorithm] = metrics
    return results


@dataclass
class SweepRow:
    """One sweep point: the parameter value and per-algorithm metrics."""

    value: object
    metrics: dict[str, AlgoMetrics] = field(default_factory=dict)


def sweep(
    values: Sequence[object],
    runner: Callable[[object], dict[str, AlgoMetrics]],
) -> list[SweepRow]:
    """Run ``runner`` for each parameter value, collecting rows."""
    return [SweepRow(value=value, metrics=runner(value)) for value in values]
