"""Benchmark substrate: dataset bundles, workloads, harness, reporting."""

from repro.bench.datasets import DatasetBundle, bench_scale, build_bundle
from repro.bench.harness import AlgoMetrics, run_battery, sweep
from repro.bench.reporting import format_sweep, format_table, print_header
from repro.bench.workloads import WorkloadConfig, make_ptm_queries, make_queries

__all__ = [
    "AlgoMetrics",
    "DatasetBundle",
    "WorkloadConfig",
    "bench_scale",
    "build_bundle",
    "format_sweep",
    "format_table",
    "make_ptm_queries",
    "make_queries",
    "print_header",
    "run_battery",
    "sweep",
]
