"""Minimal SVG writer.

A tiny, dependency-free SVG document builder — just enough for the map
renderer: lines, polylines, circles, text, with automatic viewport fitting.
Coordinates are given in *world* units (metres); the writer flips the y
axis (SVG grows downward) and scales to the requested canvas size.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.errors import ReproError

__all__ = ["SvgCanvas"]


class SvgCanvas:
    """Accumulates shapes in world coordinates; renders one SVG document."""

    def __init__(self, width: int = 800, height: int = 800, padding: float = 20.0):
        if width < 1 or height < 1:
            raise ReproError("canvas dimensions must be positive")
        self._width = width
        self._height = height
        self._padding = padding
        self._shapes: list[str] = []
        self._min_x = self._min_y = float("inf")
        self._max_x = self._max_y = float("-inf")

    # ---------------------------------------------------------------- bounds
    def _touch(self, x: float, y: float) -> None:
        self._min_x = min(self._min_x, x)
        self._min_y = min(self._min_y, y)
        self._max_x = max(self._max_x, x)
        self._max_y = max(self._max_y, y)

    def _transform(self):
        if self._min_x > self._max_x:
            raise ReproError("cannot render an empty canvas")
        span_x = max(self._max_x - self._min_x, 1e-9)
        span_y = max(self._max_y - self._min_y, 1e-9)
        scale = min(
            (self._width - 2 * self._padding) / span_x,
            (self._height - 2 * self._padding) / span_y,
        )

        def convert(x: float, y: float) -> tuple[float, float]:
            cx = self._padding + (x - self._min_x) * scale
            cy = self._height - self._padding - (y - self._min_y) * scale
            return (round(cx, 2), round(cy, 2))

        return convert

    # ---------------------------------------------------------------- shapes
    def line(self, x1, y1, x2, y2, color="#999", width=1.0, opacity=1.0) -> None:
        """A straight segment between two world points."""
        self._touch(x1, y1)
        self._touch(x2, y2)
        self._shapes.append(("line", (x1, y1, x2, y2), color, width, opacity))

    def polyline(self, points, color="#333", width=2.0, opacity=1.0) -> None:
        """An open path through world points."""
        points = list(points)
        if len(points) < 2:
            raise ReproError("a polyline needs at least two points")
        for x, y in points:
            self._touch(x, y)
        self._shapes.append(("polyline", points, color, width, opacity))

    def circle(self, x, y, radius=4.0, color="#c00", opacity=1.0) -> None:
        """A filled marker at a world point (radius in canvas pixels)."""
        self._touch(x, y)
        self._shapes.append(("circle", (x, y), color, radius, opacity))

    def text(self, x, y, label, size=12, color="#000") -> None:
        """A text label anchored at a world point."""
        self._touch(x, y)
        self._shapes.append(("text", (x, y), color, size, label))

    # ---------------------------------------------------------------- render
    def render(self) -> str:
        """The complete SVG document."""
        convert = self._transform()
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self._width}" height="{self._height}" '
            f'viewBox="0 0 {self._width} {self._height}">',
            f'<rect width="{self._width}" height="{self._height}" fill="#fff"/>',
        ]
        for shape in self._shapes:
            kind = shape[0]
            if kind == "line":
                (x1, y1, x2, y2), color, width, opacity = shape[1:]
                (cx1, cy1), (cx2, cy2) = convert(x1, y1), convert(x2, y2)
                parts.append(
                    f'<line x1="{cx1}" y1="{cy1}" x2="{cx2}" y2="{cy2}" '
                    f'stroke="{color}" stroke-width="{width}" '
                    f'stroke-opacity="{opacity}"/>'
                )
            elif kind == "polyline":
                points, color, width, opacity = shape[1:]
                coords = " ".join(
                    f"{cx},{cy}" for cx, cy in (convert(x, y) for x, y in points)
                )
                parts.append(
                    f'<polyline points="{coords}" fill="none" '
                    f'stroke="{color}" stroke-width="{width}" '
                    f'stroke-opacity="{opacity}" stroke-linejoin="round"/>'
                )
            elif kind == "circle":
                (x, y), color, radius, opacity = shape[1:]
                cx, cy = convert(x, y)
                parts.append(
                    f'<circle cx="{cx}" cy="{cy}" r="{radius}" '
                    f'fill="{color}" fill-opacity="{opacity}"/>'
                )
            elif kind == "text":
                (x, y), color, size, label = shape[1:]
                cx, cy = convert(x, y)
                parts.append(
                    f'<text x="{cx}" y="{cy}" font-size="{size}" '
                    f'fill="{color}" font-family="sans-serif">'
                    f"{escape(str(label))}</text>"
                )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        """Write the SVG document to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.render())
