"""Map rendering: networks, trajectories, queries and results as SVG.

A research release needs pictures; these renderers draw the spatial network
as a grey base map and overlay trajectories, query locations, and search
results with a small qualitative palette.  Output is a standalone SVG
string (or file) with zero extra dependencies.
"""

from __future__ import annotations

from repro.core.results import SearchResult
from repro.errors import ReproError
from repro.network.graph import SpatialNetwork
from repro.trajectory.model import Trajectory
from repro.trajectory.routes import reconstruct_route
from repro.viz.svg import SvgCanvas

__all__ = ["PALETTE", "draw_network", "draw_trajectories", "draw_search_result"]

#: Qualitative palette for overlaid trajectories (color-blind friendly).
PALETTE = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00",
    "#56b4e9", "#f0e442", "#000000",
]


def draw_network(
    graph: SpatialNetwork,
    canvas: SvgCanvas | None = None,
    color: str = "#cccccc",
    width: float = 0.8,
) -> SvgCanvas:
    """Draw every road segment as a thin base-map line."""
    if graph.num_vertices == 0:
        raise ReproError("cannot draw an empty network")
    canvas = canvas or SvgCanvas()
    for u, v, __ in graph.edges():
        x1, y1 = graph.position(u)
        x2, y2 = graph.position(v)
        canvas.line(x1, y1, x2, y2, color=color, width=width)
    return canvas


def draw_trajectories(
    graph: SpatialNetwork,
    trajectories: list[Trajectory],
    canvas: SvgCanvas | None = None,
    full_routes: bool = True,
    width: float = 2.5,
    labels: bool = False,
) -> SvgCanvas:
    """Overlay trajectories, one palette colour each.

    ``full_routes`` reconstructs the shortest-path route between samples;
    otherwise the sample points are joined directly.
    """
    canvas = canvas or SvgCanvas()
    for i, trajectory in enumerate(trajectories):
        color = PALETTE[i % len(PALETTE)]
        vertices = (
            reconstruct_route(graph, trajectory)
            if full_routes
            else trajectory.vertices()
        )
        points = [graph.position(v) for v in vertices]
        if len(points) >= 2:
            canvas.polyline(points, color=color, width=width, opacity=0.85)
        else:
            canvas.circle(*points[0], radius=4.0, color=color)
        if labels:
            canvas.text(*points[0], f"t{trajectory.id}", size=11, color=color)
    return canvas


def draw_search_result(
    graph: SpatialNetwork,
    locations: tuple[int, ...] | list[int],
    result: SearchResult,
    lookup,
    max_items: int = 5,
) -> SvgCanvas:
    """Base map + the top result trajectories + the query locations.

    ``lookup`` maps trajectory id -> :class:`Trajectory` (a database's
    ``get`` method works).  Query locations are drawn as red markers.
    """
    canvas = draw_network(graph)
    trajectories = [lookup(item.trajectory_id) for item in result.items[:max_items]]
    draw_trajectories(graph, trajectories, canvas=canvas, labels=True)
    for location in locations:
        x, y = graph.position(location)
        canvas.circle(x, y, radius=6.0, color="#c00000")
        canvas.text(x, y, f"o{location}", size=12, color="#c00000")
    return canvas
