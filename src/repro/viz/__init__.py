"""SVG visualisation: base maps, trajectory overlays, query results."""

from repro.viz.maps import (
    PALETTE,
    draw_network,
    draw_search_result,
    draw_trajectories,
)
from repro.viz.svg import SvgCanvas

__all__ = [
    "PALETTE",
    "SvgCanvas",
    "draw_network",
    "draw_search_result",
    "draw_trajectories",
]
