"""repro — User Oriented Trajectory Search for Trip Recommendation (UOTS).

A full reproduction of the EDBT 2012 paper's system and its substrates:
spatial networks, trajectories with textual attributes, the collaborative
spatial-textual search with bound-based pruning and heuristic scheduling,
three baselines, and the group's follow-up extensions (spatio-temporal
matching and the trajectory similarity join).

Quickstart
----------
>>> from repro import (ring_radial_network, generate_trips, Vocabulary,
...                    assign_vertex_keywords, annotate_trajectories,
...                    TrajectoryDatabase, TripRecommender)
>>> graph = ring_radial_network(10, 24, seed=1)
>>> trips = generate_trips(graph, 200, seed=2)
>>> vocab = Vocabulary.build(60, seed=3)
>>> trips = annotate_trajectories(
...     trips, assign_vertex_keywords(graph, vocab, seed=4), seed=5)
>>> recommender = TripRecommender(TrajectoryDatabase(graph, trips))
>>> trips_for_me = recommender.recommend(
...     locations=[0, 57], preference="lakeside seafood", k=3)
"""

from repro.core import (
    ALGORITHMS,
    AlgorithmSpec,
    BruteForceSearcher,
    CollaborativeSearcher,
    QueryPlan,
    Recommendation,
    ScoredTrajectory,
    Searcher,
    SearchResult,
    SearchStats,
    SpatialFirstSearcher,
    TextFirstSearcher,
    TripRecommender,
    UOTSQuery,
    make_searcher,
)
from repro.errors import (
    BudgetExceededError,
    CorruptPageError,
    DatasetError,
    DisconnectedError,
    GraphError,
    QueryError,
    ReproError,
    StorageError,
    TrajectoryError,
    TrajectoryIndexError,
    VertexNotFoundError,
)
from repro.index import (
    TemporalGridIndex,
    TrajectoryDatabase,
    VertexTrajectoryIndex,
)
from repro.join import (
    BruteForceJoin,
    JoinResult,
    TemporalFirstJoin,
    TopKJoin,
    TwoPhaseJoin,
)
from repro.matching import (
    BruteForcePTMMatcher,
    DirectionalSearchEngine,
    PTMMatcher,
    PTMQuery,
    TimestampIndex,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    format_trace,
    get_registry,
)
from repro.network import (
    GraphBuilder,
    IncrementalExpansion,
    SpatialNetwork,
    grid_network,
    random_geometric_network,
    ring_radial_network,
    shortest_path,
    shortest_path_length,
)
from repro.parallel import (
    fork_available,
    parallel_join,
    parallel_search,
    parallel_self_join,
)
from repro.resilience import (
    BudgetMeter,
    FaultInjector,
    FaultPolicy,
    RetryPolicy,
    SearchBudget,
)
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    CircuitBreaker,
    OverloadController,
    QueryService,
    ServiceStats,
)
from repro.storage import DiskTrajectoryDatabase, DiskTrajectoryStore
from repro.viz import SvgCanvas, draw_network, draw_search_result, draw_trajectories
from repro.text import (
    InvertedKeywordIndex,
    Vocabulary,
    annotate_trajectories,
    assign_vertex_keywords,
)
from repro.trajectory import (
    Trajectory,
    TrajectoryPoint,
    TrajectorySet,
    TripConfig,
    TripGenerator,
    generate_trips,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AdmissionController",
    "AdmissionPolicy",
    "AlgorithmSpec",
    "BruteForceJoin",
    "BruteForcePTMMatcher",
    "BruteForceSearcher",
    "BudgetExceededError",
    "BudgetMeter",
    "CircuitBreaker",
    "CollaborativeSearcher",
    "CorruptPageError",
    "DatasetError",
    "DirectionalSearchEngine",
    "DisconnectedError",
    "DiskTrajectoryDatabase",
    "DiskTrajectoryStore",
    "FaultInjector",
    "FaultPolicy",
    "GraphBuilder",
    "GraphError",
    "IncrementalExpansion",
    "InvertedKeywordIndex",
    "JoinResult",
    "MetricsRegistry",
    "OverloadController",
    "PTMMatcher",
    "PTMQuery",
    "QueryError",
    "QueryPlan",
    "QueryService",
    "Recommendation",
    "ReproError",
    "RetryPolicy",
    "ScoredTrajectory",
    "SearchBudget",
    "Searcher",
    "SearchResult",
    "SearchStats",
    "ServiceStats",
    "SpatialFirstSearcher",
    "SpatialNetwork",
    "StorageError",
    "TemporalFirstJoin",
    "TemporalGridIndex",
    "TopKJoin",
    "TextFirstSearcher",
    "TimestampIndex",
    "Tracer",
    "Trajectory",
    "TrajectoryDatabase",
    "TrajectoryError",
    "TrajectoryIndexError",
    "TrajectoryPoint",
    "TrajectorySet",
    "TripConfig",
    "TripGenerator",
    "TripRecommender",
    "TwoPhaseJoin",
    "UOTSQuery",
    "VertexNotFoundError",
    "VertexTrajectoryIndex",
    "annotate_trajectories",
    "assign_vertex_keywords",
    "fork_available",
    "format_trace",
    "generate_trips",
    "get_registry",
    "grid_network",
    "make_searcher",
    "parallel_join",
    "parallel_search",
    "parallel_self_join",
    "random_geometric_network",
    "ring_radial_network",
    "shortest_path",
    "shortest_path_length",
    "draw_network",
    "draw_search_result",
    "draw_trajectories",
    "SvgCanvas",
    "Vocabulary",
    "__version__",
]
