"""The sharded scatter-gather searcher.

``ShardedSearcher`` partitions its database into per-shard
:class:`~repro.index.database.TrajectoryDatabase` views (each with its own
inverted indexes and query caches, sharing the parent's graph and landmark
table), plans a scatter schedule per shard, and executes the shards in
cost-ascending *waves*, merging the per-shard top-k streams into one
global collector.  Three mechanisms keep the scatter cheap:

- **shared spatial work** — the query's per-source network distances are
  computed *once* by the parent (one dense CSR-kernel array per query
  location) and handed to every shard; a shard answers with an exact
  vectorised scan of its own members instead of re-expanding the network,
  so the scatter's critical path is the slowest *scan*, not a repeated
  graph search;
- **shard pruning** — a shard whose summary upper bound (best possible
  combined similarity of any member, see
  :class:`~repro.shard.summary.ShardSummary`) falls below the running
  global score floor is skipped without executing at all;
- **floor filtering** — executing shards receive the floor as
  ``score_floor`` and return only members that can still matter, keeping
  the merge traffic per shard at ``O(k)``.

The floor starts at the kth best *textual* component over the global
candidate set (``score >= (1-lam) * SimT`` holds for every trajectory, so
the global kth exact score can never sit below it) and rises to the merged
collector's kth score between waves — late shards prune harder, which is
why the schedule runs cheap shards first.

Merge correctness does not depend on floats: every shard ranks with the
same total order (score desc, id asc), each executing shard returns
everything that could beat the floor (up to its k best), and the global
top-k under that order is always contained in the union of per-shard
top-k sets.  Budgeted (anytime) and text-only queries delegate wholesale
to the flat collaborative path, which keeps their semantics byte-identical
to the unsharded searcher.

State ownership: the searcher owns the shard collection (views, summaries,
per-shard caches), which is mutable only through the parent database's
mutation hooks — never during a search.  Everything per-query lives in
locals of ``execute``; the per-shard searchers are themselves stateless.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.instrument import annotate_search_span, execute_span
from repro.core.plan import QueryPlan
from repro.core.query import UOTSQuery
from repro.core.results import ScoredTrajectory, SearchResult, SearchStats, TopK
from repro.core.scheduler import Scheduler
from repro.core.search import CollaborativeSearcher
from repro.index.database import TrajectoryDatabase
from repro.network.csr import sssp_arrays_batch
from repro.network.landmarks import LandmarkIndex
from repro.obs import harvest
from repro.obs.trace import current_tracer
from repro.parallel import executor as _executor
from repro.resilience.budget import SearchBudget
from repro.shard.partition import GridPartitioner, Partitioner, trajectory_center
from repro.shard.summary import ShardSummary
from repro.trajectory.model import Trajectory, TrajectorySet

__all__ = ["ShardedQueryPlan", "ShardedSearcher", "ShardCollection"]

_EPS = 1e-9

#: Default shard count when the caller does not size the grid.
DEFAULT_NUM_SHARDS = 8


class _Shard:
    """One shard: a database view, its searcher, and routing bookkeeping."""

    __slots__ = (
        "shard_id", "database", "searcher",
        "center_x", "center_y", "count", "summary", "version", "summary_version",
    )

    def __init__(self, shard_id: int, database: TrajectoryDatabase, searcher):
        self.shard_id = shard_id
        self.database = database
        self.searcher = searcher
        self.center_x = 0.0  # running sums of member bbox centers (routing)
        self.center_y = 0.0
        self.count = 0
        self.summary: ShardSummary | None = None
        self.version = 0
        self.summary_version = -1


class _ShardSearcher(CollaborativeSearcher):
    """The per-shard execution engine.

    When the scattering parent supplies shared per-source *distance maps*
    (one dense ``|V|``-array per query location, computed once per query —
    the spatial work flat search repeats per shard is paid exactly once),
    the shard answers with an exact vectorised scan of its members: the
    spatial term is the per-member min network distance via one
    ``minimum.reduceat`` over the shard's concatenated vertex arrays, the
    textual term comes from the shard's own inverted index, and the local
    top-k is selected under the library-wide total order (score desc,
    id asc).  The scan is exact for every member, so the merged global
    top-k equals the brute-force canonical answer.  Without maps (direct
    use, crash fallback before maps existed) it behaves as the plain
    collaborative searcher over the shard view.
    """

    def __init__(self, view, scheduler, batch_size, refinement, alt):
        super().__init__(view, scheduler, batch_size, refinement, alt)
        self._scan_arrays = None
        view.add_mutation_listener(self._invalidate_scan)

    def _invalidate_scan(self, _event) -> None:
        self._scan_arrays = None

    def _member_arrays(self):
        """``(ids, starts, vertices, positions)``, rebuilt after mutation."""
        if self._scan_arrays is None:
            ids: list[int] = []
            starts: list[int] = []
            vertices: list[int] = []
            for trajectory in sorted(
                self._database.trajectories, key=lambda t: t.id
            ):
                ids.append(trajectory.id)
                starts.append(len(vertices))
                vertices.extend(trajectory.vertex_set)
            self._scan_arrays = (
                np.array(ids, dtype=np.int64),
                np.array(starts, dtype=np.intp),
                np.array(vertices, dtype=np.intp),
                {tid: i for i, tid in enumerate(ids)},
            )
        return self._scan_arrays

    def execute(
        self,
        plan: QueryPlan,
        budget: SearchBudget | None = None,
        *,
        score_floor: float | None = None,
        unseen_caps: list[float] | None = None,
        distance_maps: np.ndarray | None = None,
    ) -> SearchResult:
        if distance_maps is None:
            return super().execute(
                plan, budget, score_floor=score_floor, unseen_caps=unseen_caps
            )
        with execute_span("shard-scan") as span:
            result = self._scan_execute(
                plan, score_floor=score_floor, distance_maps=distance_maps
            )
            annotate_search_span(span, result)
        return result

    def _scan_execute(
        self,
        plan: QueryPlan,
        *,
        score_floor: float | None,
        distance_maps: np.ndarray,
    ) -> SearchResult:
        started = time.perf_counter()
        query: UOTSQuery = plan.query
        stats = SearchStats()
        ids, starts, vertices, positions = self._member_arrays()
        if ids.size == 0:
            stats.elapsed_seconds = time.perf_counter() - started
            return SearchResult(items=[], stats=stats)
        sigma = self._database.sigma
        spatial = np.zeros(ids.size)
        for row in distance_maps:
            spatial += np.exp(-np.minimum.reduceat(row[vertices], starts) / sigma)
        spatial /= query.num_locations
        textual = np.zeros(ids.size)
        if query.lam != 1.0 and query.keywords:
            for tid, sim in self._exact_text_scores(query, stats).items():
                textual[positions[tid]] = sim
        scores = query.lam * spatial + (1.0 - query.lam) * textual
        stats.visited_trajectories = int(ids.size)
        stats.similarity_evaluations = int(ids.size)
        keep = (
            np.flatnonzero(scores >= score_floor)
            if score_floor is not None
            else np.arange(ids.size)
        )
        order = keep[np.lexsort((ids[keep], -scores[keep]))][: query.k]
        items = [
            ScoredTrajectory(
                trajectory_id=int(ids[i]),
                score=float(scores[i]),
                spatial_similarity=float(spatial[i]),
                text_similarity=float(textual[i]),
            )
            for i in order
        ]
        stats.elapsed_seconds = time.perf_counter() - started
        return SearchResult(items=items, stats=stats)


class ShardCollection:
    """The shards of one parent database, kept in sync under mutation.

    Built once per :class:`ShardedSearcher`; a listener on the parent
    database routes every ``add`` to the shard whose member centroid is
    nearest (deterministic, partitioner-agnostic) and every ``remove`` to
    the owning shard, so shard views, their indexes/caches, and the lazily
    rebuilt summaries never go stale.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        partitioner: Partitioner,
        searcher_factory,
    ):
        self._parent = database
        graph = database.graph
        labels = partitioner.assign(graph, database.trajectories)
        groups: dict[int, list[Trajectory]] = {}
        for trajectory in database.trajectories:
            label = labels.get(trajectory.id, 0)
            groups.setdefault(label, []).append(trajectory)
        landmark_index = database.landmark_index  # build once, share below
        self.shards: list[_Shard] = []
        self._owner: dict[int, int] = {}
        for shard_id, label in enumerate(sorted(groups)):
            members = groups[label]
            view = TrajectoryDatabase(
                graph, TrajectorySet(members), sigma=database.sigma
            )
            view.adopt_landmark_index(landmark_index)
            shard = _Shard(shard_id, view, searcher_factory(view))
            for trajectory in members:
                cx, cy = trajectory_center(graph, trajectory)
                shard.center_x += cx
                shard.center_y += cy
                shard.count += 1
                self._owner[trajectory.id] = shard_id
            self.shards.append(shard)
        self.landmark_index: LandmarkIndex | None = landmark_index
        #: Total mutations mirrored; plans stamp it to detect staleness.
        self.mutations = 0
        database.add_mutation_listener(self._sync)

    def summary_of(self, shard: _Shard) -> ShardSummary:
        """The shard's (possibly rebuilt) keyword/region summary."""
        if shard.summary is None or shard.summary_version != shard.version:
            shard.summary = ShardSummary.build(shard.database, self.landmark_index)
            shard.summary_version = shard.version
        return shard.summary

    # ------------------------------------------------------- mutation sync
    def _sync(self, event) -> None:
        """Mirror one parent mutation into the owning/receiving shard.

        The typed event names the mutation kind directly — no more
        re-deriving add-vs-remove from parent membership (which misreads a
        remove-then-re-add of the same id arriving out of order).
        """
        self.mutations += 1
        trajectory_id = event.trajectory_id
        if event.kind == "add":
            trajectory = self._parent.get(trajectory_id)
            shard = self._route(trajectory)
            shard.database.add(trajectory)
            cx, cy = trajectory_center(self._parent.graph, trajectory)
            shard.center_x += cx
            shard.center_y += cy
            shard.count += 1
            shard.version += 1
            self._owner[trajectory_id] = shard.shard_id
        else:
            shard_id = self._owner.pop(trajectory_id, None)
            if shard_id is None:
                return
            shard = self.shards[shard_id]
            trajectory = shard.database.get(trajectory_id)
            cx, cy = trajectory_center(self._parent.graph, trajectory)
            shard.database.remove(trajectory_id)
            shard.center_x -= cx
            shard.center_y -= cy
            shard.count -= 1
            shard.version += 1

    def _route(self, trajectory: Trajectory) -> _Shard:
        """The shard whose member centroid is nearest the new trajectory."""
        cx, cy = trajectory_center(self._parent.graph, trajectory)
        best = None
        best_key = None
        for shard in self.shards:
            if shard.count == 0:
                continue
            mx = shard.center_x / shard.count
            my = shard.center_y / shard.count
            key = ((mx - cx) ** 2 + (my - cy) ** 2, shard.shard_id)
            if best_key is None or key < best_key:
                best, best_key = shard, key
        return best if best is not None else self.shards[0]


@dataclass(frozen=True)
class ShardedQueryPlan(QueryPlan):
    """A :class:`QueryPlan` carrying the per-shard scatter schedule.

    The parallel tuples are aligned: entry ``i`` describes the shard with
    id ``shard_ids[i]``.  ``plan_floor`` is the planning-time global floor
    (kth textual bound); the top-level ``estimated_cost`` sums only the
    shards not already prunable at that floor.
    """

    shard_ids: tuple[int, ...] = ()
    shard_costs: tuple[float, ...] = ()
    shard_upper_bounds: tuple[float, ...] = ()
    shard_sizes: tuple[int, ...] = ()
    shard_candidates: tuple[int, ...] = ()
    plan_floor: float = 0.0
    #: Shard-collection mutation count at planning time; a mismatch at
    #: execute time means the scatter schedule is stale and is re-planned.
    plan_version: int = -1
    shard_plans: tuple[QueryPlan, ...] = field(default=(), repr=False)

    def describe(self) -> str:
        lines = [super().describe()]
        prunable = sum(
            1 for ub in self.shard_upper_bounds if ub < self.plan_floor - _EPS
        )
        lines.append(
            f"  shards:       {len(self.shard_ids)} planned, "
            f"{prunable} prunable at plan floor {self.plan_floor:.4f} "
            "(kth textual bound); schedule = est. cost ascending"
        )
        order = sorted(
            range(len(self.shard_ids)),
            key=lambda i: (self.shard_costs[i], self.shard_ids[i]),
        )
        for i in order:
            pruned = " [prunable]" if (
                self.shard_upper_bounds[i] < self.plan_floor - _EPS
            ) else ""
            lines.append(
                f"  shard[{self.shard_ids[i]}]:     "
                f"cost={self.shard_costs[i]:.0f} "
                f"size={self.shard_sizes[i]} "
                f"candidates={self.shard_candidates[i]} "
                f"ub={self.shard_upper_bounds[i]:.4f}{pruned}"
            )
        return "\n".join(lines)


class ShardedSearcher(CollaborativeSearcher):
    """Scatter-gather top-k over spatially partitioned shards.

    Subclasses :class:`CollaborativeSearcher` so text-only (``lam=0``) and
    budgeted queries delegate to the flat pipeline on the parent database
    (their semantics stay byte-identical), while un-budgeted spatial
    queries scatter across the shard views.

    Parameters beyond the base searcher's:

    shards:
        Target shard count for the default grid partitioner (the actual
        count is the number of non-empty grid cells).
    workers:
        Fan-out width per scheduling wave.  ``None`` picks
        ``min(shards, cpu_count)``; ``1`` (or an unavailable ``fork``, or
        running inside another fork fan-out) scatters sequentially in
        process, which also gives fully nested per-shard trace spans.
    partitioner:
        Any :class:`~repro.shard.partition.Partitioner`; defaults to the
        uniform grid.  This is the graph-partitioner hook.
    scatter_mode:
        ``"auto"`` (fork when beneficial and available) or
        ``"sequential"`` — execute every wave in process while keeping the
        ``workers``-wide wave schedule, so ``shard_critical_seconds``
        measures the parallel critical path without fork overhead or CPU
        contention (the measurement harness for single-core machines).
    """

    plan_name = "sharded"

    def __init__(
        self,
        database: TrajectoryDatabase,
        shards: int = DEFAULT_NUM_SHARDS,
        workers: int | None = None,
        scheduler: str | Scheduler = "heuristic",
        batch_size: int = 16,
        refinement: bool | None = None,
        alt: bool | None = None,
        partitioner: Partitioner | None = None,
        max_task_retries: int = 2,
        scatter_mode: str = "auto",
    ):
        super().__init__(database, scheduler, batch_size, refinement, alt)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if scatter_mode not in ("auto", "sequential"):
            raise ValueError(
                f"scatter_mode must be 'auto' or 'sequential', got {scatter_mode!r}"
            )
        self._workers = workers
        self._scatter_mode = scatter_mode
        self._max_task_retries = max_task_retries
        make_shard_searcher = lambda view: _ShardSearcher(  # noqa: E731
            view, scheduler, batch_size, refinement, alt
        )
        self._collection = ShardCollection(
            database, partitioner or GridPartitioner(shards), make_shard_searcher
        )

    # ----------------------------------------------------------------- API
    def plan(self, query: UOTSQuery) -> ShardedQueryPlan:
        """The flat plan plus the per-shard scatter schedule."""
        base = super().plan(query)
        shards = [s for s in self._collection.shards if len(s.database)]
        floor = self._textual_floor(query)
        caps_by_shard = self._shard_caps(query, shards)
        ids, costs, ubs, sizes, candidates, plans = [], [], [], [], [], []
        for shard, caps in zip(shards, caps_by_shard):
            shard_plan = shard.searcher.plan(query)
            summary = self._collection.summary_of(shard)
            # The flat cost formula with the *shard's* reach: every source
            # settles at worst the shard's covered vertices.
            cost = float(
                shard_plan.candidate_count
                + (0 if query.lam == 0.0 else query.num_locations * summary.covered.size)
            )
            ids.append(shard.shard_id)
            costs.append(cost)
            ubs.append(summary.upper_bound(query.lam, query.keywords, query.text_measure, caps))
            sizes.append(len(shard.database))
            candidates.append(shard_plan.candidate_count)
            plans.append(shard_plan)
        scheduled = sum(
            cost for cost, ub in zip(costs, ubs) if ub >= floor - _EPS
        )
        return ShardedQueryPlan(
            algorithm=base.algorithm,
            query=base.query,
            scheduler=base.scheduler,
            batch_size=base.batch_size,
            use_text_in_bounds=base.use_text_in_bounds,
            use_refinement=base.use_refinement,
            alt_enabled=base.alt_enabled,
            alt_reason=base.alt_reason,
            text_measure=base.text_measure,
            source_vertices=base.source_vertices,
            candidate_count=base.candidate_count,
            database_size=base.database_size,
            cache_enabled=base.cache_enabled,
            estimated_cost=max(1.0, scheduled),
            notes=base.notes + (f"scatter-gather over {len(ids)} shards",),
            shard_ids=tuple(ids),
            shard_costs=tuple(costs),
            shard_upper_bounds=tuple(ubs),
            shard_sizes=tuple(sizes),
            shard_candidates=tuple(candidates),
            plan_floor=floor,
            plan_version=self._collection.mutations,
            shard_plans=tuple(plans),
        )

    def execute(
        self,
        plan: QueryPlan,
        budget: SearchBudget | None = None,
        *,
        score_floor: float | None = None,
        unseen_caps: list[float] | None = None,
    ) -> SearchResult:
        """Scatter, merge, prune; or delegate to the flat pipeline.

        Budgeted (anytime) and text-only queries run the inherited flat
        path on the parent database — identical results to the unsharded
        collaborative searcher by construction.  ``score_floor`` /
        ``unseen_caps`` exist for protocol compatibility and are ignored
        (this searcher *is* the merging caller).
        """
        query: UOTSQuery = plan.query
        effective_budget = budget if budget is not None else query.budget
        if query.lam == 0.0 or (
            effective_budget is not None and not effective_budget.unlimited
        ):
            return super().execute(plan, budget)
        if (
            not isinstance(plan, ShardedQueryPlan)
            or plan.plan_version != self._collection.mutations
        ):
            plan = self.plan(query)
        query.validate_against(self._database.graph)
        with execute_span(self.plan_name) as span:
            result = self._scatter_gather(plan, query)
            if span is not None:
                annotate_search_span(span, result)
            return result

    # ----------------------------------------------------- scatter-gather
    def _scatter_gather(self, plan: ShardedQueryPlan, query: UOTSQuery) -> SearchResult:
        started = time.perf_counter()
        stats = SearchStats()
        tracer = current_tracer()
        collection = self._collection
        shards = [
            collection.shards[sid]
            for sid in plan.shard_ids
            if len(collection.shards[sid].database)
        ]
        shard_plans = {
            sid: shard_plan for sid, shard_plan in zip(plan.shard_ids, plan.shard_plans)
        }
        # Bounds against the *current* summaries (the plan may be stale).
        caps_by_shard = self._shard_caps(query, shards)
        bounds = {
            shard.shard_id: collection.summary_of(shard).upper_bound(
                query.lam, query.keywords, query.text_measure, caps
            )
            for shard, caps in zip(shards, caps_by_shard)
        }
        caps = {shard.shard_id: c for shard, c in zip(shards, caps_by_shard)}

        text_scores = self._exact_text_scores(query, SearchStats())
        floor = self._floor_from_scores(query, text_scores)
        # The query's spatial work, paid once for every shard: one dense
        # distance array per query location (CSR kernel, vectorised).
        # Shards then answer with member scans instead of re-expanding the
        # network per shard — this sharing is what makes the scatter's
        # critical path (max shard, not sum) beat the flat search.
        distance_maps = sssp_arrays_batch(
            self._database.graph.csr, list(query.locations)
        )
        order = sorted(
            shards, key=lambda s: (shard_plans[s.shard_id].estimated_cost, s.shard_id)
        )
        workers = self._resolve_workers(len(order))
        use_fork = (
            self._scatter_mode == "auto"
            and workers > 1
            and _executor.fork_available()
            and not _executor._WORKER_STATE  # no nested pools inside a worker
        )
        # Waves are ``workers`` wide even when executed sequentially in
        # process: the wave schedule (and hence the floor-update points and
        # ``shard_critical_seconds``, the per-wave max) models the
        # ``workers``-way parallel run, which is what makes the sequential
        # mode a faithful critical-path measurement harness.  The first
        # wave is a *seed*: the single cheapest shard runs alone so the
        # merged collector's kth score exists before the wide fan-out —
        # one scan of critical path buys a real floor for every other
        # shard, which is what lets summary bounds prune whole shards even
        # when ``workers >= shards`` would otherwise put everything in one
        # floor-less wave.
        wave_width = workers
        waves = []
        if order:
            waves.append(order[:1])
            for at in range(1, len(order), wave_width):
                waves.append(order[at:at + wave_width])

        topk = TopK(query.k)
        forked = False
        stats.shards_planned = len(plan.shard_ids)
        for wave in waves:
            survivors = []
            for shard in wave:
                if floor > 0.0 and bounds[shard.shard_id] < floor - _EPS:
                    stats.shards_pruned += 1
                    stats.pruned_trajectories += len(shard.database)
                    if tracer.enabled:
                        with tracer.span(
                            f"shard[{shard.shard_id}]", pruned=True,
                            upper_bound=bounds[shard.shard_id],
                        ):
                            pass
                    continue
                survivors.append(shard)
            if not survivors:
                continue
            # The floor handed to shard searches keeps a 2*eps slack so a
            # candidate whose exact score *ties* the floor is still scored
            # and offered — the merged TopK's shared total order (score
            # desc, id asc) then resolves ties exactly like the flat path.
            shard_floor = floor - 2.0 * _EPS if floor > 0.0 else None
            if use_fork and len(survivors) > 1:
                forked = True
                results, telemetries = _executor._fork_shard_batch(
                    [s.searcher for s in survivors],
                    [shard_plans[s.shard_id] for s in survivors],
                    [caps[s.shard_id] for s in survivors],
                    shard_floor,
                    workers,
                    self._max_task_retries,
                    distance_maps=distance_maps,
                )
                if tracer.enabled:
                    for shard, result, telemetry in zip(
                        survivors, results, telemetries
                    ):
                        # The owning shard span; the worker's execute tree
                        # (harvested telemetry) grafts underneath it, so a
                        # stitched trace breaks the scatter down per shard.
                        with tracer.span(
                            f"shard[{shard.shard_id}]",
                            executed=True,
                            items=len(result.items),
                            elapsed_seconds=result.stats.elapsed_seconds,
                            evaluations=result.stats.similarity_evaluations,
                            executor=result.stats.executor,
                        ) as sspan:
                            harvest.graft_telemetry(tracer, sspan, telemetry)
                        if sspan is not None:
                            # The wrapper span opened after the fork
                            # returned; the shard's honest wall time is
                            # what its worker measured.
                            sspan.duration_s = result.stats.elapsed_seconds
            else:
                results = []
                for shard in survivors:
                    if tracer.enabled:
                        with tracer.span(
                            f"shard[{shard.shard_id}]", executed=True
                        ) as sspan:
                            result = shard.searcher.execute(
                                shard_plans[shard.shard_id],
                                score_floor=shard_floor,
                                unseen_caps=caps[shard.shard_id],
                                distance_maps=distance_maps,
                            )
                            if sspan is not None:
                                sspan.set("items", len(result.items))
                                sspan.set(
                                    "evaluations",
                                    result.stats.similarity_evaluations,
                                )
                    else:
                        result = shard.searcher.execute(
                            shard_plans[shard.shard_id],
                            score_floor=shard_floor,
                            unseen_caps=caps[shard.shard_id],
                            distance_maps=distance_maps,
                        )
                    results.append(result)
            wave_seconds = [r.stats.elapsed_seconds for r in results]
            stats.shard_seconds += sum(wave_seconds)
            stats.shard_critical_seconds += max(wave_seconds, default=0.0)
            stats.shards_executed += len(survivors)
            for result in results:
                stats.merge(result.stats)
                for item in result.items:
                    topk.offer(item)
            floor = max(floor, topk.threshold)

        if not topk.full:
            self._zero_fill(
                topk, SearchStats(),
                exclude={item.trajectory_id for item in topk.ranked()},
            )
        # Merged bookkeeping: wall time is the parent's, not the shard sum;
        # the candidate count is the global one (pruned shards contributed
        # no per-shard stats).
        stats.elapsed_seconds = time.perf_counter() - started
        stats.text_candidates = len(text_scores)
        stats.executor = "fork" if forked else ""
        stats.cache = ""
        # The merge above summed the member shards' (zero) estimates; the
        # served estimate is the scheduled scatter cost of this plan.
        stats.estimated_cost = plan.estimated_cost
        return SearchResult(items=topk.ranked(), stats=stats)

    # ------------------------------------------------------------- helpers
    def _resolve_workers(self, num_shards: int) -> int:
        workers = self._workers
        if workers is None:
            workers = min(num_shards, os.cpu_count() or 1)
        return max(1, min(workers, max(1, num_shards)))

    def _textual_floor(self, query: UOTSQuery) -> float:
        """Planning-time floor: kth best ``(1-lam) * SimT`` globally."""
        return self._floor_from_scores(
            query, self._exact_text_scores(query, SearchStats())
        )

    def _floor_from_scores(
        self, query: UOTSQuery, text_scores: dict[int, float]
    ) -> float:
        """``score >= (1-lam) * SimT`` holds per trajectory, so with ``k``
        candidates the global kth exact score is at least the kth best
        textual component — a pruning floor available before any shard
        runs.  0 when fewer than ``k`` candidates exist (no guarantee)."""
        if len(text_scores) < query.k:
            return 0.0
        kth = sorted(text_scores.values(), reverse=True)[query.k - 1]
        return (1.0 - query.lam) * kth

    def _shard_caps(
        self, query: UOTSQuery, shards: list[_Shard]
    ) -> list[list[float] | None]:
        """Per-shard, per-source spatial contribution caps from landmarks."""
        landmark_index = self._collection.landmark_index
        if landmark_index is None or query.lam == 0.0:
            return [None] * len(shards)
        sources = np.array(query.locations, dtype=np.intp)
        alpha = query.lam / query.num_locations
        sigma = self._database.sigma
        caps: list[list[float] | None] = []
        for shard in shards:
            summary = self._collection.summary_of(shard)
            lbs = summary.distance_lower_bounds(landmark_index, sources)
            if lbs is None:
                caps.append(None)
            else:
                caps.append([alpha * math.exp(-lb / sigma) for lb in lbs])
        return caps
