"""Per-shard keyword/region summaries and the shard-level score bound.

A shard summary is everything the scatter-gather planner needs to bound the
score of *any* trajectory in the shard without touching its members:

- the shard's keyword **vocabulary** — every member's textual similarity to
  a query is bounded by a measure-specific function of
  ``c = |Q ∩ vocabulary|`` (a member's keyword set is a subset of the
  vocabulary, so its overlap with the query can never exceed ``c``);
- per-landmark **distance intervals** ``[min, max]`` over the shard's
  covered vertices — the triangle inequality then lower-bounds the network
  distance from any query location ``o`` to the whole shard:
  ``sd(o, shard) >= max_l max(sd(l,o) - max_l, min_l - sd(l,o), 0)``,
  which caps every member's spatial contribution from source ``o`` at
  ``alpha * exp(-lb / sigma)``.

Both parts are upper bounds by construction, so a shard whose combined
bound falls below the running global kth exact score can be skipped with
the same guarantee the per-trajectory bounds give inside a search.
"""

from __future__ import annotations

import numpy as np

from repro.index.database import TrajectoryDatabase
from repro.network.landmarks import LandmarkIndex

# Re-exported from its import-light home (the result cache shares the
# bound and must not pull in the shard layer); the shard-facing docs on
# the function still apply here verbatim.
from repro.text.similarity import text_upper_bound

__all__ = ["ShardSummary", "text_upper_bound"]


class ShardSummary:
    """Immutable bound-support data for one shard (rebuild on mutation)."""

    __slots__ = ("size", "vocabulary", "covered", "landmark_min", "landmark_max")

    def __init__(
        self,
        size: int,
        vocabulary: frozenset[str],
        covered: np.ndarray,
        landmark_min: np.ndarray | None,
        landmark_max: np.ndarray | None,
    ):
        self.size = size
        self.vocabulary = vocabulary
        self.covered = covered
        self.landmark_min = landmark_min  # (L,) over covered vertices
        self.landmark_max = landmark_max

    @classmethod
    def build(
        cls, database: TrajectoryDatabase, landmark_index: LandmarkIndex | None
    ) -> "ShardSummary":
        """Summarise one shard view (vocabulary + landmark intervals)."""
        vocabulary: set[str] = set()
        covered_set: set[int] = set()
        for trajectory in database.trajectories:
            vocabulary.update(trajectory.keywords)
            covered_set.update(trajectory.vertex_set)
        covered = np.fromiter(covered_set, dtype=np.intp, count=len(covered_set))
        landmark_min = landmark_max = None
        if landmark_index is not None and covered.size:
            table = landmark_index._table[:, covered]  # (L, |covered|)
            landmark_min = table.min(axis=1)
            landmark_max = table.max(axis=1)
        return cls(
            size=len(database),
            vocabulary=frozenset(vocabulary),
            covered=covered,
            landmark_min=landmark_min,
            landmark_max=landmark_max,
        )

    def distance_lower_bounds(
        self, landmark_index: LandmarkIndex | None, sources: np.ndarray
    ) -> np.ndarray | None:
        """Per-source lower bounds on ``sd(source, any covered vertex)``.

        ``None`` when no landmark table exists (disconnected graph) — the
        caller then falls back to the trivial zero bound.
        """
        if landmark_index is None or self.landmark_min is None:
            return None
        columns = landmark_index._table[:, sources]  # (L, m)
        below = columns - self.landmark_max[:, None]
        above = self.landmark_min[:, None] - columns
        return np.maximum(np.maximum(below, above), 0.0).max(axis=0)

    def upper_bound(
        self,
        lam: float,
        keywords: frozenset[str],
        measure: str,
        unseen_caps: list[float] | None,
    ) -> float:
        """Best possible combined score of any trajectory in this shard.

        ``unseen_caps`` are the per-source spatial contribution caps already
        derived from :meth:`distance_lower_bounds` (``None`` means no
        spatial information: the spatial term is bounded by ``lam``).
        """
        spatial = sum(unseen_caps) if unseen_caps is not None else lam
        return spatial + (1.0 - lam) * text_upper_bound(
            keywords, measure, self.vocabulary
        )
