"""Spatial partitioning of a trajectory set into shards.

The default :class:`GridPartitioner` lays a uniform grid over the graph's
bounding box and assigns each trajectory to the cell containing the center
of its own bounding box — trajectories that run close together land in the
same shard, which is what makes per-shard distance summaries tight.  Any
object satisfying :class:`Partitioner` (e.g. a METIS-style graph
partitioner mapping each trajectory to its dominant component) can be
plugged into :class:`~repro.shard.searcher.ShardedSearcher` instead; the
shard layer only needs the trajectory-id -> group labeling.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import DatasetError
from repro.network.graph import SpatialNetwork
from repro.trajectory.model import Trajectory, TrajectorySet

__all__ = ["Partitioner", "GridPartitioner", "trajectory_center"]


def trajectory_center(graph: SpatialNetwork, trajectory: Trajectory) -> tuple[float, float]:
    """Center of the trajectory's vertex bounding box (its shard locus)."""
    vertices = np.fromiter(
        trajectory.vertex_set, dtype=np.intp, count=len(trajectory.vertex_set)
    )
    xs = graph.xs[vertices]
    ys = graph.ys[vertices]
    return (
        (float(xs.min()) + float(xs.max())) / 2.0,
        (float(ys.min()) + float(ys.max())) / 2.0,
    )


@runtime_checkable
class Partitioner(Protocol):
    """The contract a shard partitioner satisfies.

    ``assign`` maps every trajectory id to an arbitrary integer group
    label; the shard collection turns the distinct labels (in sorted
    order, so shard numbering is deterministic) into shards.
    """

    def assign(
        self, graph: SpatialNetwork, trajectories: TrajectorySet
    ) -> dict[int, int]:
        """Trajectory id -> group label."""
        ...  # pragma: no cover - protocol


class GridPartitioner:
    """Uniform grid over the graph bounding box, ``about`` cells.

    ``shards`` is a target, not a guarantee: the grid is ``ceil(sqrt(S))``
    columns by ``ceil(S / cols)`` rows, and only non-empty cells become
    shards, so skewed data may produce fewer.
    """

    def __init__(self, shards: int):
        if shards < 1:
            raise DatasetError(f"shards must be >= 1, got {shards}")
        self._shards = shards

    def assign(
        self, graph: SpatialNetwork, trajectories: TrajectorySet
    ) -> dict[int, int]:
        """Label each trajectory with the grid cell of its bbox center."""
        cols = max(1, math.ceil(math.sqrt(self._shards)))
        rows = max(1, math.ceil(self._shards / cols))
        min_x, min_y, max_x, max_y = graph.bounding_box()
        width = max(max_x - min_x, 1e-12)
        height = max(max_y - min_y, 1e-12)
        labels: dict[int, int] = {}
        for trajectory in trajectories:
            cx, cy = trajectory_center(graph, trajectory)
            col = min(cols - 1, int((cx - min_x) / width * cols))
            row = min(rows - 1, int((cy - min_y) / height * rows))
            labels[trajectory.id] = row * cols + col
        return labels
