"""Sharded scatter-gather trajectory database.

Partition the trajectory set by spatial region (``partition``), precompute
per-shard keyword/region summaries that upper-bound any member's similarity
to a query (``summary``), and scatter a top-k search across per-shard
:class:`~repro.index.database.TrajectoryDatabase` views, merging the
per-shard streams while pruning whole shards whose best-possible score
cannot reach the running global kth score (``searcher``).
"""

from repro.shard.partition import GridPartitioner, Partitioner
from repro.shard.searcher import ShardedQueryPlan, ShardedSearcher
from repro.shard.summary import ShardSummary

__all__ = [
    "GridPartitioner",
    "Partitioner",
    "ShardSummary",
    "ShardedQueryPlan",
    "ShardedSearcher",
]
