"""Unit tests for the fixed-size page file."""

import pytest

from repro.errors import DatasetError
from repro.storage.pages import PageFile


class TestPageFile:
    def test_allocate_and_roundtrip(self, tmp_path):
        with PageFile(tmp_path / "t.pages", page_size=128, create=True) as pf:
            first = pf.allocate()
            second = pf.allocate()
            assert (first, second) == (0, 1)
            pf.write_page(0, b"hello")
            pf.write_page(1, b"world" * 20)
            assert pf.read_page(0).rstrip(b"\x00") == b"hello"
            assert pf.read_page(1)[:100] == b"world" * 20

    def test_pages_padded_to_size(self, tmp_path):
        with PageFile(tmp_path / "t.pages", page_size=128, create=True) as pf:
            pf.allocate()
            pf.write_page(0, b"x")
            assert len(pf.read_page(0)) == 128

    def test_oversized_payload_rejected(self, tmp_path):
        with PageFile(tmp_path / "t.pages", page_size=64, create=True) as pf:
            pf.allocate()
            with pytest.raises(DatasetError, match="exceeds page size"):
                pf.write_page(0, b"y" * 65)

    def test_out_of_range_page_rejected(self, tmp_path):
        with PageFile(tmp_path / "t.pages", page_size=64, create=True) as pf:
            with pytest.raises(DatasetError, match="out of range"):
                pf.read_page(0)

    def test_reopen_preserves_pages(self, tmp_path):
        path = tmp_path / "t.pages"
        with PageFile(path, page_size=64, create=True) as pf:
            pf.allocate()
            pf.write_page(0, b"persist")
        with PageFile(path, page_size=64) as pf:
            assert pf.num_pages == 1
            assert pf.read_page(0).rstrip(b"\x00") == b"persist"

    def test_misaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.pages"
        path.write_bytes(b"x" * 100)
        with pytest.raises(DatasetError, match="multiple of page size"):
            PageFile(path, page_size=64)

    def test_tiny_page_size_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            PageFile(tmp_path / "t.pages", page_size=16, create=True)
