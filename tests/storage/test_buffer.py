"""Unit tests for the LRU buffer pool."""

import pytest

from repro.errors import DatasetError
from repro.storage.buffer import LRUBufferPool
from repro.storage.pages import PageFile


@pytest.fixture()
def pagefile(tmp_path):
    pf = PageFile(tmp_path / "b.pages", page_size=64, create=True)
    for i in range(6):
        pf.allocate()
        pf.write_page(i, bytes([i]) * 8)
    yield pf
    pf.close()


class TestLRUBufferPool:
    def test_miss_then_hit(self, pagefile):
        pool = LRUBufferPool(pagefile, capacity=4)
        pool.get_page(0)
        pool.get_page(0)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert pool.stats.hit_ratio == pytest.approx(0.5)

    def test_returns_correct_contents(self, pagefile):
        pool = LRUBufferPool(pagefile, capacity=2)
        for i in range(6):
            assert pool.get_page(i)[0] == i

    def test_eviction_order_is_lru(self, pagefile):
        pool = LRUBufferPool(pagefile, capacity=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)  # 0 is now most recent; 1 is the LRU victim
        pool.get_page(2)  # evicts 1
        misses_before = pool.stats.misses
        pool.get_page(0)  # still cached
        assert pool.stats.misses == misses_before
        pool.get_page(1)  # was evicted -> miss
        assert pool.stats.misses == misses_before + 1

    def test_eviction_counter(self, pagefile):
        pool = LRUBufferPool(pagefile, capacity=1)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(2)
        assert pool.stats.evictions == 2
        assert len(pool) == 1

    def test_invalidate(self, pagefile):
        pool = LRUBufferPool(pagefile, capacity=4)
        pool.get_page(0)
        pool.invalidate(0)
        pool.get_page(0)
        assert pool.stats.misses == 2
        pool.get_page(1)
        pool.invalidate()
        assert len(pool) == 0

    def test_stats_reset(self, pagefile):
        pool = LRUBufferPool(pagefile, capacity=2)
        pool.get_page(0)
        pool.stats.reset()
        assert pool.stats.accesses == 0
        assert pool.stats.hit_ratio == 0.0

    def test_invalid_capacity_rejected(self, pagefile):
        with pytest.raises(DatasetError):
            LRUBufferPool(pagefile, capacity=0)
