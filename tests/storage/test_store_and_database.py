"""Tests for the disk store and the disk-resident database."""

import pytest

from repro.errors import DatasetError, TrajectoryError
from repro.index.database import TrajectoryDatabase
from repro.storage.database import DiskTrajectoryDatabase
from repro.storage.store import DiskTrajectoryStore


@pytest.fixture()
def store(tmp_path, annotated_trips):
    s = DiskTrajectoryStore.build(
        tmp_path / "trips.pages", annotated_trips, buffer_capacity=16
    )
    yield s
    s.close()


class TestDiskTrajectoryStore:
    def test_every_trajectory_roundtrips(self, store, annotated_trips):
        for trajectory in annotated_trips:
            assert store.get(trajectory.id) == trajectory

    def test_len_and_contains(self, store, annotated_trips):
        assert len(store) == len(annotated_trips)
        assert annotated_trips.ids()[0] in store
        assert 10**9 not in store

    def test_unknown_id_rejected(self, store):
        with pytest.raises(TrajectoryError, match="unknown"):
            store.get(10**9)

    def test_iteration_covers_all(self, store, annotated_trips):
        assert sorted(t.id for t in store) == sorted(annotated_trips.ids())

    def test_buffer_stats_accumulate(self, store, annotated_trips):
        store.buffer.stats.reset()
        for tid in annotated_trips.ids():
            store.get(tid)
        assert store.buffer.stats.accesses == len(annotated_trips)
        assert store.buffer.stats.misses >= 1

    def test_small_buffer_still_correct(self, tmp_path, annotated_trips):
        s = DiskTrajectoryStore.build(
            tmp_path / "tiny.pages", annotated_trips, buffer_capacity=1
        )
        try:
            for trajectory in list(annotated_trips)[:20]:
                assert s.get(trajectory.id) == trajectory
            assert s.buffer.stats.evictions > 0
        finally:
            s.close()

    def test_duplicate_ids_rejected(self, tmp_path, annotated_trips):
        first = next(iter(annotated_trips))
        with pytest.raises(DatasetError, match="duplicate"):
            DiskTrajectoryStore.build(tmp_path / "d.pages", [first, first])

    def test_record_too_large_for_page(self, tmp_path, annotated_trips):
        with pytest.raises(DatasetError, match="increase page_size"):
            DiskTrajectoryStore.build(
                tmp_path / "small.pages", annotated_trips, page_size=64
            )


class TestDiskTrajectoryDatabase:
    @pytest.fixture()
    def disk_db(self, tmp_path, grid20, annotated_trips, database):
        db = DiskTrajectoryDatabase.build(
            tmp_path / "db.pages", grid20, annotated_trips,
            sigma=database.sigma, buffer_capacity=32,
        )
        yield db
        db.close()

    def test_interface_parity(self, disk_db, database):
        assert len(disk_db) == len(database)
        assert disk_db.sigma == database.sigma
        tid = database.trajectories.ids()[0]
        assert disk_db.get(tid) == database.get(tid)
        assert disk_db.vertex_index.num_trajectories == (
            database.vertex_index.num_trajectories
        )

    def test_search_results_identical_to_memory(self, disk_db, database, vocab):
        from repro.core.query import UOTSQuery
        from repro.core.search import CollaborativeSearcher

        query = UOTSQuery.create([0, 150], vocab.keywords[:3], lam=0.5, k=5)
        memory_result = CollaborativeSearcher(database).search(query)
        disk_result = CollaborativeSearcher(disk_db).search(query)
        assert disk_result.ids == memory_result.ids
        assert disk_result.scores == pytest.approx(memory_result.scores)

    def test_empty_set_rejected(self, tmp_path, grid20):
        from repro.trajectory.model import TrajectorySet

        with pytest.raises(DatasetError):
            DiskTrajectoryDatabase.build(
                tmp_path / "e.pages", grid20, TrajectorySet()
            )
