"""Unit and property tests for the binary trajectory record codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DatasetError
from repro.storage.records import decode_trajectory, encode_trajectory
from repro.trajectory.model import DAY_SECONDS, Trajectory, TrajectoryPoint


def _traj(tid=3, points=((1, 10.0), (2, 20.5)), keywords=("park", "seafood")):
    return Trajectory(
        tid, [TrajectoryPoint(v, t) for v, t in points], keywords
    )


class TestRoundtrip:
    def test_simple_roundtrip(self):
        original = _traj()
        decoded, consumed = decode_trajectory(encode_trajectory(original))
        assert decoded == original
        assert consumed == len(encode_trajectory(original))

    def test_empty_keywords(self):
        original = _traj(keywords=())
        decoded, __ = decode_trajectory(encode_trajectory(original))
        assert decoded.keywords == frozenset()

    def test_unicode_keywords(self):
        original = _traj(keywords=("café", "smörgås"))
        decoded, __ = decode_trajectory(encode_trajectory(original))
        assert decoded.keywords == original.keywords

    def test_offset_decoding(self):
        a, b = _traj(1), _traj(2, points=((5, 50.0),))
        blob = encode_trajectory(a) + encode_trajectory(b)
        first, offset = decode_trajectory(blob)
        second, end = decode_trajectory(blob, offset)
        assert first == a
        assert second == b
        assert end == len(blob)


class TestMalformed:
    def test_truncated_record_rejected(self):
        blob = encode_trajectory(_traj())
        with pytest.raises(DatasetError, match="corrupt"):
            decode_trajectory(blob[: len(blob) // 2])

    def test_empty_bytes_rejected(self):
        with pytest.raises(DatasetError):
            decode_trajectory(b"")


point_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.0, max_value=DAY_SECONDS - 1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)
keyword_sets = st.sets(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Nd")),
        min_size=1,
        max_size=12,
    ),
    max_size=8,
)


@given(tid=st.integers(0, 2**31 - 1), points=point_lists, keywords=keyword_sets)
def test_roundtrip_property(tid, points, keywords):
    points = sorted(points, key=lambda p: p[1])
    original = Trajectory(
        tid, [TrajectoryPoint(v, t) for v, t in points], keywords
    )
    decoded, consumed = decode_trajectory(encode_trajectory(original))
    assert decoded == original
    assert consumed == len(encode_trajectory(original))
