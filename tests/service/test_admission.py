"""Admission control: the bounded in-flight seam of the serving layer."""

import pytest

from repro.core.query import UOTSQuery
from repro.parallel.executor import fork_available
from repro.service import AdmissionController, LatencyReservoir, QueryService

QUERY = UOTSQuery.create([0, 150], ["park"], lam=0.5, k=3)
BATCH = [
    QUERY,
    UOTSQuery.create([5, 210], ["lakeside"], lam=0.5, k=3),
    UOTSQuery.create([37, 199], ["museum"], lam=0.5, k=3),
]


class TestController:
    def test_unbounded_always_admits(self):
        controller = AdmissionController()
        assert all(controller.try_acquire() for _ in range(100))

    def test_bounded_caps_and_releases(self):
        controller = AdmissionController(max_inflight=2)
        assert controller.try_acquire()
        assert controller.try_acquire()
        assert not controller.try_acquire()
        controller.release()
        assert controller.try_acquire()

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionController(max_inflight=0)


class TestServiceRejection:
    def test_rejected_submit_returns_error_marked_result(self, database):
        service = QueryService(database, "collaborative", admission=1)
        assert service.admission.try_acquire()  # occupy the only slot
        try:
            result = service.submit(QUERY)
        finally:
            service.admission.release()
        assert result.error is not None
        assert result.degradation_reason == "rejected by admission control"
        assert result.items == []
        assert service.stats.rejected_queries == 1
        assert service.stats.queries_served == 0

    def test_submit_admits_after_release(self, database):
        service = QueryService(database, "collaborative", admission=1)
        result = service.submit(QUERY)
        assert result.error is None
        assert result.exact
        assert service.stats.rejected_queries == 0

    def test_prebuilt_controller_is_used_verbatim(self, database):
        controller = AdmissionController(max_inflight=3)
        service = QueryService(database, admission=controller)
        assert service.admission is controller

    def test_rejected_result_stamps_elapsed_seconds(self, database):
        """ISSUE 5 satellite: a rejected result must carry real wall time
        like every other outcome — callers summing ``elapsed_seconds``
        over a mixed batch must not see zero-latency rejections."""
        service = QueryService(database, "collaborative", admission=1)
        assert service.admission.try_acquire()
        try:
            result = service.submit(QUERY)
        finally:
            service.admission.release()
        assert result.degradation_reason == "rejected by admission control"
        assert result.stats.elapsed_seconds > 0.0


class TestBatchAdmissionParity:
    """ISSUE 5 satellite: ``execute_many`` must gate its forked branch
    through the same admission controller as the sequential branch — a
    saturated controller rejects every query of the batch identically on
    both paths."""

    def _saturated(self, database):
        service = QueryService(database, "collaborative", admission=1)
        assert service.admission.try_acquire()  # occupy the only slot
        return service

    def _assert_all_rejected(self, service, results):
        assert len(results) == len(BATCH)
        for result in results:
            assert result.error is not None
            assert result.degradation_reason == "rejected by admission control"
            assert result.items == []
            assert result.stats.elapsed_seconds > 0.0
        assert service.stats.rejected_queries == len(BATCH)
        assert service.stats.queries_served == 0

    def test_sequential_batch_rejects_when_saturated(self, database):
        service = self._saturated(database)
        try:
            results = service.execute_many(BATCH, workers=1)
        finally:
            service.admission.release()
        self._assert_all_rejected(service, results)

    @pytest.mark.skipif(not fork_available(), reason="needs a fork platform")
    def test_forked_batch_rejects_identically(self, database):
        """The regression: the forked branch used to bypass admission and
        serve the whole batch while ``workers=1`` rejected it."""
        service = self._saturated(database)
        try:
            results = service.execute_many(BATCH, workers=2)
        finally:
            service.admission.release()
        self._assert_all_rejected(service, results)

    @pytest.mark.skipif(not fork_available(), reason="needs a fork platform")
    def test_forked_batch_releases_its_slot(self, database):
        service = QueryService(database, "collaborative", admission=1)
        results = service.execute_many(BATCH, workers=2)
        assert all(r.error is None for r in results)
        assert service.stats.rejected_queries == 0
        # The batch slot was released: a follow-up submit is admitted.
        assert service.submit(QUERY).error is None


class TestLatencyReservoir:
    def test_nearest_rank_percentiles(self):
        reservoir = LatencyReservoir()
        for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
            reservoir.record(value)
        assert reservoir.percentile(50.0) == 3.0
        assert reservoir.percentile(100.0) == 5.0
        assert reservoir.percentile(0.0) == 1.0

    def test_empty_reads_zero(self):
        assert LatencyReservoir().percentile(95.0) == 0.0

    def test_ring_evicts_oldest(self):
        reservoir = LatencyReservoir(capacity=3)
        for value in [10.0, 20.0, 30.0, 1.0]:
            reservoir.record(value)  # 10.0 evicted
        assert len(reservoir) == 3
        assert reservoir.percentile(100.0) == 30.0
        assert reservoir.percentile(0.0) == 1.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="capacity"):
            LatencyReservoir(capacity=0)
        with pytest.raises(ValueError, match="percentile"):
            LatencyReservoir().percentile(101.0)
