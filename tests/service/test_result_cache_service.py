"""Service-level result cache: the ISSUE 5 semantics oracle.

A warm hit must be byte-equal to the cold search (same ids, scores, order,
``exact``); a ``database.add``/``remove`` between the two must force a
miss; budgeted queries must neither populate nor read the cache.  The
cache is a serving-layer overlay — everything here runs through a live
:class:`QueryService` against a real bundle, never against the container
directly (see ``tests/perf/test_result_cache.py`` for that).
"""

import random

import pytest

from repro.bench.datasets import build_bundle
from repro.bench.workloads import WorkloadConfig, make_queries
from repro.core.query import UOTSQuery
from repro.obs.metrics import MetricsRegistry
from repro.parallel.executor import fork_available
from repro.perf import ResultCache
from repro.resilience.budget import SearchBudget
from repro.service import QueryService


@pytest.fixture(scope="module")
def bundle():
    # Private bundle: several tests mutate the database (add/remove) and
    # must not disturb the session-scoped ``database`` fixture.
    return build_bundle("brn", num_trajectories=120, scale=0.02, seed=5)


@pytest.fixture(scope="module")
def workload(bundle):
    return make_queries(
        bundle, WorkloadConfig(num_queries=6, num_locations=3, k=5, seed=11)
    )


def _service(bundle, **kwargs):
    kwargs.setdefault("result_cache", 64)
    return QueryService(bundle.database, "collaborative", **kwargs)


def _assert_byte_equal(hit, cold):
    assert hit.ids == cold.ids
    assert hit.scores == cold.scores  # exact float equality, not approx
    assert [s.trajectory_id for s in hit.items] == [
        s.trajectory_id for s in cold.items
    ]
    assert hit.exact == cold.exact
    assert hit.error is None and hit.degradation_reason is None


class TestOracle:
    def test_warm_hit_is_byte_equal_to_cold_search(self, bundle, workload):
        service = _service(bundle)
        for query in workload:
            cold = service.search(query)
            warm = service.search(query)
            assert warm.stats.cache == "result"
            assert cold.stats.cache == ""
            _assert_byte_equal(warm, cold)

    def test_property_sweep_random_queries_and_revisits(self, bundle):
        """Seeded property sweep: any revisit of an already-served query
        is a hit equal to its first answer; first visits always miss."""
        rng = random.Random(1205)
        pool = make_queries(
            bundle,
            WorkloadConfig(num_queries=10, num_locations=2, k=4, seed=17),
        )
        service = _service(bundle)
        first_answers = {}
        for _ in range(40):
            query = rng.choice(pool)
            result = service.search(query)
            if query in first_answers:
                assert result.stats.cache == "result"
                _assert_byte_equal(result, first_answers[query])
            else:
                assert result.stats.cache == ""
                first_answers[query] = result
        assert service.stats.result_cache_hits == 40 - len(first_answers)

    def test_location_order_does_not_break_the_hit(self, bundle, workload):
        service = _service(bundle)
        query = workload[0]
        cold = service.search(query)
        reordered = UOTSQuery(
            locations=tuple(reversed(query.locations)),
            keywords=query.keywords,
            lam=query.lam,
            k=query.k,
            text_measure=query.text_measure,
        )
        warm = service.search(reordered)
        assert warm.stats.cache == "result"
        _assert_byte_equal(warm, cold)

    def test_mutation_between_searches_forces_miss(self, bundle, workload):
        service = _service(bundle)
        query = workload[1]
        service.search(query)
        removed = bundle.database.remove(service.search(query).ids[0])
        fresh = service.search(query)
        assert fresh.stats.cache == ""  # invalidated, recomputed
        assert removed.id not in fresh.ids
        bundle.database.add(removed)  # restore; add must also invalidate
        restored = service.search(query)
        assert restored.stats.cache == ""
        _assert_byte_equal(service.search(query), restored)

    def test_budgeted_queries_never_populate_or_read(self, bundle, workload):
        service = _service(bundle)
        query = workload[2]
        tight = SearchBudget(max_expanded_vertices=5)
        assert service.submit(query, tight).stats.cache == ""
        assert len(service.result_cache) == 0  # no populate
        cold = service.search(query)  # un-budgeted run populates
        assert len(service.result_cache) == 1
        assert service.submit(query, tight).stats.cache == ""  # no read
        # The budget riding on the query object gates identically.
        budgeted_query = UOTSQuery(
            locations=query.locations,
            keywords=query.keywords,
            lam=query.lam,
            k=query.k,
            text_measure=query.text_measure,
            budget=tight,
        )
        assert service.submit(budgeted_query).stats.cache == ""
        # An explicitly unlimited budget is not a budget: it may hit.
        warm = service.submit(query, SearchBudget())
        assert warm.stats.cache == "result"
        _assert_byte_equal(warm, cold)


class TestServiceWiring:
    def test_cache_off_by_default(self, bundle, workload):
        service = QueryService(bundle.database, "collaborative")
        assert service.result_cache is None
        service.search(workload[0])
        assert service.search(workload[0]).stats.cache == ""

    def test_capacity_zero_and_false_disable(self, bundle):
        assert QueryService(bundle.database, result_cache=0).result_cache is None
        assert (
            QueryService(bundle.database, result_cache=False).result_cache is None
        )
        enabled = QueryService(bundle.database, result_cache=True).result_cache
        assert enabled is not None and enabled.enabled

    def test_prebuilt_cache_instance_is_used_verbatim(self, bundle, workload):
        cache = ResultCache(32)
        service = QueryService(
            bundle.database, "collaborative", result_cache=cache
        )
        assert service.result_cache is cache
        service.search(workload[0])
        assert len(cache) == 1

    def test_hit_latency_and_outcome_are_recorded(self, bundle, workload):
        service = _service(bundle)
        service.search(workload[0])
        warm = service.search(workload[0])
        assert warm.stats.elapsed_seconds > 0.0  # stamped by the service
        stats = service.stats
        assert stats.queries_served == 2
        assert stats.exact_results == 2
        assert stats.result_cache_hits == 1
        assert "result hits 1" in stats.describe()

    def test_metrics_counters_and_executor_path(self, bundle, workload):
        registry = MetricsRegistry()
        service = _service(bundle, metrics=registry)
        service.search(workload[0])
        service.search(workload[0])
        service.search(workload[1])
        registry.collect()
        hits = registry.counter("repro_service_result_cache_hits_total")
        misses = registry.counter("repro_service_result_cache_misses_total")
        assert hits.value() == 1
        assert misses.value() == 2
        paths = registry.counter("repro_executor_queries_total")
        assert paths.value(path="result-cache") == 1
        assert paths.value(path="in-process") == 2
        entries = registry.gauge("repro_service_result_cache_entries")
        assert entries.value() == 2

    def test_trace_spans_carry_result_cache_attribute(self, bundle, workload):
        service = _service(bundle, trace=True)
        service.search(workload[0])
        assert service.tracer.last_trace().attributes["result_cache"] == "miss"
        service.search(workload[0])
        root = service.tracer.last_trace()
        assert root.attributes["result_cache"] == "hit"
        assert root.children == []  # a hit plans and executes nothing
        # Untraced services never mention the attribute.
        bare = QueryService(bundle.database, "collaborative", trace=True)
        bare.search(workload[0])
        assert "result_cache" not in bare.tracer.last_trace().attributes

    def test_tuning_kwargs_key_the_cache(self, bundle, workload):
        cache = ResultCache(32)
        plain = QueryService(bundle.database, "collaborative", result_cache=cache)
        tuned = QueryService(
            bundle.database,
            "collaborative",
            result_cache=cache,
            alt=False,
            batch_size=4,
        )
        plain.search(workload[0])
        # Same shared cache, different resolved tuning: no cross-talk.
        assert tuned.search(workload[0]).stats.cache == ""
        assert len(cache) == 2
        assert tuned.search(workload[0]).stats.cache == "result"


class TestExecuteMany:
    def test_sequential_batch_serves_repeats_from_cache(self, bundle, workload):
        service = _service(bundle)
        batch = list(workload[:3]) + list(workload[:3])
        results = service.execute_many(batch, workers=1)
        markers = [r.stats.cache for r in results]
        assert markers[:3] == ["", "", ""]
        assert markers[3:] == ["result"] * 3
        for warm, cold in zip(results[3:], results[:3]):
            _assert_byte_equal(warm, cold)
        assert service.stats.result_cache_hits == 3

    @pytest.mark.skipif(not fork_available(), reason="needs a fork platform")
    def test_forked_batch_probes_cache_in_parent(self, bundle, workload):
        service = _service(bundle, trace=True)
        cold = [service.search(q) for q in workload[:2]]
        results = service.execute_many(
            list(workload[:2]) + [workload[3]], workers=2
        )
        assert [r.stats.cache for r in results] == ["result", "result", ""]
        for warm, reference in zip(results, cold):
            _assert_byte_equal(warm, reference)
        assert results[2].stats.executor == "fork"
        root = service.tracer.last_trace()
        assert root.name == "execute_many"
        assert root.attributes["result_cache_hits"] == 2

    @pytest.mark.skipif(not fork_available(), reason="needs a fork platform")
    def test_forked_results_populate_the_parent_cache(self, bundle, workload):
        service = _service(bundle)
        service.execute_many(list(workload[:3]), workers=2)
        assert len(service.result_cache) == 3
        warm = service.search(workload[0])
        assert warm.stats.cache == "result"
