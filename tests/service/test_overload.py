"""Overload protection: policy-driven admission (ISSUE 6 tentpole surface).

Covers the :class:`AdmissionPolicy` derivations, the
:class:`OverloadController` decision order (quota / priority / cost /
degrade), the wiring through ``QueryService.submit``/``execute_many``
(stats lanes, shed reasons, trace attributes, metrics series), and the
default-off oracle: with no policy configured, served results and
``ServiceStats`` output are byte-identical to the pre-overload layout.
"""

import threading

import pytest

from repro.core.query import UOTSQuery
from repro.core.results import SearchResult
from repro.errors import QueryError
from repro.obs.metrics import MetricsRegistry
from repro.parallel.executor import fork_available
from repro.resilience.budget import SearchBudget
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    OverloadController,
    QueryService,
    ServiceStats,
)

QUERY = UOTSQuery.create([0, 150], ["park"], lam=0.5, k=3)
BATCH = [
    QUERY,
    UOTSQuery.create([5, 210], ["lakeside"], lam=0.5, k=3),
    UOTSQuery.create([37, 199], ["museum"], lam=0.5, k=3),
]


class TestAdmissionPolicy:
    def test_zero_argument_policy_is_fully_off(self):
        policy = AdmissionPolicy()
        assert policy.max_inflight is None
        assert not policy.uses_cost
        assert not policy.uses_tenants
        assert policy.quota_for("anyone") is None
        assert policy.effective_max_cost(0.9) is None

    def test_explicit_quota_beats_weights_and_default(self):
        policy = AdmissionPolicy(
            max_inflight=10,
            tenant_quota=2,
            tenant_quotas={"vip": 9},
            tenant_weights={"vip": 1.0},
        )
        assert policy.quota_for("vip") == 9
        # Weights rank above the default quota: unlisted tenants weigh 1.0
        # against vip's 1.0, so "other" gets half of max_inflight.
        assert policy.quota_for("other") == 5

    def test_default_quota_applies_without_weights(self):
        policy = AdmissionPolicy(tenant_quota=2, tenant_quotas={"vip": 9})
        assert policy.quota_for("vip") == 9
        assert policy.quota_for("other") == 2

    def test_weighted_fair_share(self):
        policy = AdmissionPolicy(
            max_inflight=8, tenant_weights={"hog": 1.0, "good": 3.0}
        )
        assert policy.quota_for("hog") == 2  # 8 * 1/4
        assert policy.quota_for("good") == 6  # 8 * 3/4
        # Unlisted tenants weigh 1.0 against the enlarged total.
        assert policy.quota_for("newcomer") == 1  # floor(8 * 1/5)

    def test_fair_share_floors_at_one_slot(self):
        policy = AdmissionPolicy(
            max_inflight=4, tenant_weights={"a": 1.0, "b": 100.0}
        )
        assert policy.quota_for("a") == 1

    def test_cost_ceiling_slides_under_load(self):
        policy = AdmissionPolicy(
            max_inflight=10, max_cost=100.0,
            cost_pressure=0.5, min_cost_fraction=0.1,
        )
        assert policy.effective_max_cost(0.0) == 100.0
        assert policy.effective_max_cost(0.5) == 100.0  # flat until pressure
        assert policy.effective_max_cost(0.75) == pytest.approx(55.0)
        assert policy.effective_max_cost(1.0) == pytest.approx(10.0)

    def test_unknown_priority_raises_query_error(self):
        with pytest.raises(QueryError, match="priority"):
            AdmissionPolicy().priority_threshold("urgent")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"tenant_quota": 0},
            {"tenant_quotas": {"t": 0}},
            {"tenant_weights": {"t": 0.0}, "max_inflight": 4},
            {"tenant_weights": {"t": 1.0}},  # weights need max_inflight
            {"priority_thresholds": {"interactive": 1.5}},
            {"max_cost": 0.0},
            {"cost_pressure": 1.0},
            {"min_cost_fraction": 0.0},
            {"degrade_headroom": 0.5},
            {"breaker_failures": 0},
            {"breaker_cooldown_seconds": -1.0},
            {"breaker_probes": 0},
        ],
    )
    def test_validation_rejects_bad_knobs(self, kwargs):
        with pytest.raises(QueryError):
            AdmissionPolicy(**kwargs)


class TestOverloadController:
    def test_tenant_quota_sheds_and_releases(self):
        controller = OverloadController(
            AdmissionPolicy(max_inflight=8, tenant_quotas={"hog": 2})
        )
        first = controller.admit(tenant="hog")
        second = controller.admit(tenant="hog")
        shed = controller.admit(tenant="hog")
        assert first.admitted and second.admitted
        assert not shed.admitted
        assert shed.reason == "tenant_quota"
        assert controller.admit(tenant="polite").admitted  # others still flow
        controller.release(first)
        assert controller.admit(tenant="hog").admitted
        assert controller.tenant_inflight("hog") == 2

    def test_priority_classes_shed_lowest_first(self):
        controller = OverloadController(AdmissionPolicy(max_inflight=10))
        for _ in range(6):  # utilization 0.6
            assert controller.admit(priority="interactive").admitted
        assert controller.admit(priority="best_effort").reason == "priority_shed"
        assert controller.admit(priority="batch").admitted  # 0.6 < 0.85
        for _ in range(2):  # utilization 0.9
            assert controller.admit(priority="interactive").admitted
        assert controller.admit(priority="batch").reason == "priority_shed"
        assert controller.admit(priority="interactive").admitted  # to the cap

    def test_cost_shed_and_degrade(self):
        controller = OverloadController(
            AdmissionPolicy(max_inflight=4, max_cost=100.0, degrade_headroom=2.0)
        )
        assert controller.admit(cost=80.0).action == "admit"
        degraded = controller.admit(cost=150.0)
        assert degraded.admitted and degraded.degraded
        assert degraded.reason == "cost_degrade"
        assert degraded.budget == SearchBudget(max_expanded_vertices=100)
        huge = controller.admit(cost=500.0)
        assert not huge.admitted
        assert huge.reason == "cost_shed"

    def test_cost_shed_without_headroom_is_hard(self):
        controller = OverloadController(
            AdmissionPolicy(max_inflight=4, max_cost=100.0)
        )
        assert controller.admit(cost=101.0).reason == "cost_shed"

    def test_uncosted_queries_bypass_the_cost_gate(self):
        controller = OverloadController(
            AdmissionPolicy(max_inflight=4, max_cost=1.0)
        )
        assert controller.admit(cost=None).admitted

    def test_anonymous_queries_share_the_default_lane(self):
        controller = OverloadController(
            AdmissionPolicy(tenant_quotas={"default": 1})
        )
        first = controller.admit()
        assert first.admitted
        assert controller.admit().reason == "tenant_quota"
        controller.release(first)
        assert controller.inflight == 0

    def test_try_acquire_compat_accounts_default_lane(self):
        controller = OverloadController(AdmissionPolicy(max_inflight=1))
        assert controller.try_acquire()
        assert not controller.try_acquire()
        controller.release()
        assert controller.inflight == 0

    def test_global_cap_reason_is_inflight_cap(self):
        controller = OverloadController(AdmissionPolicy(max_inflight=1))
        held = controller.admit(tenant="a")
        shed = controller.admit(tenant="b")
        assert shed.reason == "inflight_cap"
        controller.release(held)


class TestOverReleaseGuard:
    """ISSUE 6 satellite: an unmatched release is a clear invariant error,
    not a bare ``BoundedSemaphore`` ``ValueError``."""

    def test_base_controller_guards_over_release(self):
        controller = AdmissionController(max_inflight=2)
        assert controller.try_acquire()
        controller.release()
        with pytest.raises(RuntimeError, match="without a matching acquire"):
            controller.release()

    def test_unbounded_controller_guards_too(self):
        with pytest.raises(RuntimeError, match="without a matching"):
            AdmissionController().release()

    def test_overload_controller_guards_tenant_lane(self):
        controller = OverloadController(AdmissionPolicy(max_inflight=4))
        a = controller.admit(tenant="a")
        controller.admit(tenant="b")
        controller.release(a)
        with pytest.raises(RuntimeError, match="tenant 'a'"):
            controller.release(a)
        assert controller.inflight == 1  # the failed release changed nothing


class TestServiceIntegration:
    def _service(self, database, policy, **kwargs):
        return QueryService(
            database, "collaborative",
            admission=OverloadController(policy), **kwargs,
        )

    def test_tenant_quota_shed_through_submit(self, database):
        service = self._service(
            database, AdmissionPolicy(tenant_quotas={"hog": 1})
        )
        held = service.admission.admit(tenant="hog")  # occupy hog's slot
        try:
            result = service.submit(QUERY, tenant="hog", priority="batch")
        finally:
            service.admission.release(held)
        assert result.error.startswith("AdmissionError:")
        assert "quota" in result.error
        assert result.degradation_reason == "shed by admission policy (tenant_quota)"
        assert service.stats.shed_reasons == {"tenant_quota": 1}
        assert service.stats.tenant_lanes["hog"] == {"served": 0, "rejected": 1}
        assert service.stats.priority_lanes["batch"] == {"served": 0, "rejected": 1}
        # Another tenant is admitted and lands in its own lane.
        ok = service.submit(QUERY, tenant="polite")
        assert ok.error is None
        assert service.stats.tenant_lanes["polite"] == {"served": 1, "rejected": 0}

    def test_cost_shedding_plans_first(self, database):
        plan_cost = QueryService(database, "collaborative").plan(QUERY).estimated_cost
        service = self._service(
            database, AdmissionPolicy(max_inflight=4, max_cost=plan_cost / 2)
        )
        result = service.submit(QUERY)
        assert result.error is not None
        assert "estimated cost" in result.error
        assert service.stats.shed_reasons == {"cost_shed": 1}
        assert service.admission.inflight == 0  # no slot leaked on the shed

    def test_graceful_degradation_attaches_budget(self, database):
        reference = QueryService(database, "collaborative")
        plan_cost = reference.plan(QUERY).estimated_cost
        full_work = reference.submit(QUERY).stats.expanded_vertices
        ceiling = plan_cost / 10
        service = self._service(
            database,
            AdmissionPolicy(max_inflight=4, max_cost=ceiling, degrade_headroom=100.0),
        )
        result = service.submit(QUERY, tenant="alpha")
        assert result.error is None
        assert not result.exact
        assert "admission degrade" in result.degradation_reason
        # The budget stops expansion at batch granularity: the degraded run
        # does strictly less work than the unbudgeted one.
        assert result.stats.expanded_vertices < full_work
        result.confirmed_prefix()  # anytime contract: usable, never raises
        assert service.stats.policy_degraded_results == 1
        assert service.stats.degraded_results == 1
        assert service.admission.inflight == 0

    def test_caller_budget_wins_over_policy_budget(self, database):
        plan_cost = QueryService(database, "collaborative").plan(QUERY).estimated_cost
        service = self._service(
            database,
            AdmissionPolicy(
                max_inflight=4, max_cost=plan_cost / 10, degrade_headroom=100.0
            ),
        )
        mine = SearchBudget(max_expanded_vertices=7)
        result = service.submit(QUERY, mine)
        assert result.error is None
        # The caller's cap (7), not the policy's ceiling, is the one that
        # tripped — and the outcome is not counted as policy-degraded.
        assert ">= 7 vertices" in result.degradation_reason
        assert "admission degrade" not in result.degradation_reason
        assert service.stats.policy_degraded_results == 0

    def test_unknown_priority_raises_like_bad_arguments(self, database):
        service = self._service(database, AdmissionPolicy(max_inflight=4))
        with pytest.raises(QueryError, match="priority"):
            service.submit(QUERY, priority="urgent")
        assert service.admission.inflight == 0

    def test_execute_many_sheds_batch_with_reason(self, database):
        service = self._service(database, AdmissionPolicy(max_inflight=1))
        held = service.admission.admit()
        try:
            results = service.execute_many(BATCH, tenant="bulk", priority="batch")
        finally:
            service.admission.release(held)
        assert all(r.error is not None for r in results)
        assert service.stats.shed_reasons == {"inflight_cap": len(BATCH)}
        assert service.stats.tenant_lanes["bulk"]["rejected"] == len(BATCH)

    def test_shed_and_degrade_reasons_reach_trace_spans(self, database):
        plan_cost = QueryService(database, "collaborative").plan(QUERY).estimated_cost
        service = self._service(
            database,
            AdmissionPolicy(
                max_inflight=4, max_cost=plan_cost / 10, degrade_headroom=100.0
            ),
            trace=True,
        )
        service.submit(QUERY, tenant="alpha", priority="interactive")
        span = service.tracer.last_trace()
        assert span.attributes["tenant"] == "alpha"
        assert span.attributes["priority"] == "interactive"
        assert span.attributes["admission"] == "degraded"
        assert span.attributes["admission_reason"] == "cost_degrade"

        hard = self._service(
            database,
            AdmissionPolicy(max_inflight=4, max_cost=plan_cost / 10),
            trace=True,
        )
        hard.submit(QUERY, tenant="alpha")
        span = hard.tracer.last_trace()
        assert span.attributes["admission"] == "shed"
        assert span.attributes["shed_reason"] == "cost_shed"

    def test_policy_series_reach_metrics(self, database):
        registry = MetricsRegistry()
        plan_cost = QueryService(database, "collaborative").plan(QUERY).estimated_cost
        service = self._service(
            database,
            AdmissionPolicy(max_inflight=4, max_cost=plan_cost / 2),
            metrics=registry,
        )
        service.submit(QUERY, tenant="hog", priority="best_effort")
        rendered = registry.render_prometheus()
        assert 'repro_service_shed_total{reason="cost_shed"} 1' in rendered
        assert (
            'repro_service_tenant_queries_total'
            '{outcome="rejected",tenant="hog"} 1'
        ) in rendered
        assert (
            'repro_service_priority_queries_total'
            '{outcome="rejected",priority="best_effort"} 1'
        ) in rendered
        assert "repro_service_inflight 0" in rendered


class TestDefaultOffOracle:
    """Acceptance: with no tenant/priority/cost/breaker options set, served
    results and ``ServiceStats`` output are byte-identical to the
    pre-overload behaviour."""

    # The pre-overload layout plus the always-on drift lane (every
    # executed query carries a comparable plan estimate since the
    # drift-accounting layer; policy keys still gate on use).
    LEGACY_SNAPSHOT_KEYS = [
        "queries_served", "exact_results", "degraded_results",
        "failed_queries", "rejected_queries", "result_cache_hits",
        "p50_ms", "p95_ms", "distance_cache_hit_rate",
        "text_cache_hit_rate", "expanded_vertices", "refinements",
        "plan_drift",
    ]

    def test_snapshot_keys_and_describe_shape_unchanged(self, database):
        service = QueryService(database, "collaborative", admission=1)
        service.submit(QUERY)
        assert service.admission.try_acquire()
        try:
            service.submit(QUERY)  # rejected by the legacy cap
        finally:
            service.admission.release()
        snapshot = service.stats.snapshot()
        assert list(snapshot) == self.LEGACY_SNAPSHOT_KEYS
        described = service.stats.describe()
        assert len(described.splitlines()) == 5
        assert "shed" not in described
        assert "tenant" not in described

    def test_legacy_rejection_strings_exact(self, database):
        service = QueryService(database, "collaborative", admission=1)
        assert service.admission.try_acquire()
        try:
            result = service.submit(QUERY)
        finally:
            service.admission.release()
        assert result.degradation_reason == "rejected by admission control"
        assert result.error == (
            "AdmissionError: service at its in-flight query cap"
        )
        assert service.stats.shed_reasons == {}

    def test_default_service_results_and_stats_identical(self, database):
        plain = QueryService(database, "collaborative")
        policied_off = QueryService(
            database, "collaborative",
            admission=OverloadController(AdmissionPolicy()),
        )
        for q in BATCH:
            a = plain.submit(q)
            b = policied_off.submit(q)
            assert a.ids == b.ids
            assert a.scores == pytest.approx(b.scores)
            assert a.exact == b.exact and a.error == b.error
        snap_a, snap_b = plain.stats.snapshot(), policied_off.stats.snapshot()
        # Latency and cross-query cache rates vary with wall clock and the
        # shared database's warm caches — everything else must match.
        volatile = (
            "p50_ms", "p95_ms",
            "distance_cache_hit_rate", "text_cache_hit_rate",
        )
        assert list(snap_a) == list(snap_b) == self.LEGACY_SNAPSHOT_KEYS
        for key in volatile:
            snap_a.pop(key), snap_b.pop(key)
        assert snap_a == snap_b

    def test_default_metrics_have_no_policy_series(self, database):
        registry = MetricsRegistry()
        service = QueryService(database, "collaborative", metrics=registry)
        service.submit(QUERY)
        rendered = registry.render_prometheus()
        assert "repro_service_shed_total" not in rendered
        assert "repro_service_tenant_queries_total" not in rendered
        assert "repro_service_breaker_state" not in rendered


class TestSubmitStorm:
    """ISSUE 6 satellite: N threads against a small quota see exactly
    ``quota`` successes in flight and zero lost slots afterwards."""

    def test_exact_quota_in_flight_and_no_lost_slots(self):
        quota, threads = 3, 16
        controller = OverloadController(
            AdmissionPolicy(max_inflight=8, tenant_quotas={"storm": quota})
        )
        attempted = threading.Barrier(threads)
        all_attempted = threading.Event()
        outcomes = []
        lock = threading.Lock()

        def worker():
            attempted.wait()
            decision = controller.admit(tenant="storm")
            with lock:
                outcomes.append(decision)
                if len(outcomes) == threads:
                    all_attempted.set()
            all_attempted.wait()  # hold the slot until everyone attempted
            if decision.admitted:
                controller.release(decision)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        admitted = [d for d in outcomes if d.admitted]
        assert len(admitted) == quota  # exactly quota succeeded in flight
        assert {d.reason for d in outcomes if not d.admitted} == {"tenant_quota"}
        assert controller.inflight == 0  # zero lost slots
        assert controller.tenant_inflight("storm") == 0
        # Every slot is reusable after the storm.
        again = [controller.admit(tenant="storm") for _ in range(quota)]
        assert all(d.admitted for d in again)
        for d in again:
            controller.release(d)

    def test_concurrent_submits_conserve_accounting(self, database):
        service = QueryService(
            database, "collaborative",
            admission=OverloadController(
                AdmissionPolicy(max_inflight=2, tenant_quotas={"t": 1})
            ),
        )
        threads = 8

        def worker():
            service.submit(QUERY, tenant="t")

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        stats = service.stats
        assert stats.queries_served + stats.rejected_queries == threads
        lane = stats.tenant_lanes["t"]
        assert lane["served"] + lane["rejected"] == threads
        assert lane["served"] == stats.queries_served
        assert service.admission.inflight == 0

    @pytest.mark.skipif(not fork_available(), reason="needs a fork platform")
    def test_forked_batch_accounting_matches_sequential(self, database):
        """Identical accounting on the forked ``execute_many`` path: the
        same saturated policy sheds the whole batch with the same reasons
        and lane counts as the sequential path."""

        def run(workers):
            service = QueryService(
                database, "collaborative",
                admission=OverloadController(AdmissionPolicy(max_inflight=1)),
            )
            held = service.admission.admit()
            try:
                results = service.execute_many(
                    BATCH, workers=workers, tenant="bulk"
                )
            finally:
                service.admission.release(held)
            snapshot = service.stats.snapshot()
            snapshot.pop("p50_ms"), snapshot.pop("p95_ms")
            return results, snapshot

        seq_results, seq_stats = run(workers=1)
        fork_results, fork_stats = run(workers=2)
        assert seq_stats == fork_stats
        assert [r.error for r in seq_results] == [r.error for r in fork_results]
        assert seq_stats["shed_reasons"] == {"inflight_cap": len(BATCH)}


class TestServiceStatsThreadSafety:
    """ISSUE 6 satellite: the latency ring buffer, outcome counters, and
    lanes are mutated from many threads without losing increments."""

    def test_concurrent_records_lose_nothing(self):
        stats = ServiceStats(latency_capacity=64)
        threads, per_thread = 8, 400

        def worker(i):
            tenant = f"t{i % 2}"
            for _ in range(per_thread):
                stats.record(
                    SearchResult(items=[], exact=True), 0.001,
                    tenant=tenant, priority="interactive",
                )
                stats.record_rejection(
                    reason="inflight_cap", tenant=tenant, priority="batch"
                )

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = threads * per_thread
        assert stats.queries_served == total
        assert stats.exact_results == total
        assert stats.rejected_queries == total
        assert stats.shed_reasons == {"inflight_cap": total}
        assert sum(lane["served"] for lane in stats.tenant_lanes.values()) == total
        assert sum(lane["rejected"] for lane in stats.tenant_lanes.values()) == total
        assert stats.priority_lanes["interactive"]["served"] == total
        assert stats.priority_lanes["batch"]["rejected"] == total
        assert len(stats._latencies) == 64  # ring stayed bounded
