"""Circuit breaker: unit state machine + chaos trip/recovery (ISSUE 6).

The unit tests drive the three-state machine with an injected clock; the
chaos tests reuse :class:`~repro.resilience.faults.FaultInjector` against
a disk database to trip the breaker through real ``StorageError`` results
and assert the breaker-state metric transitions along the way.
"""

import pytest

from repro.core.query import UOTSQuery
from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import FaultInjector, FaultPolicy
from repro.service import (
    BREAKER_STATE_CODES,
    AdmissionPolicy,
    CircuitBreaker,
    OverloadController,
    QueryService,
)
from repro.storage.database import DiskTrajectoryDatabase

QUERY = UOTSQuery.create([0, 150], ["park"], lam=0.5, k=3)


def _breaker(**kwargs):
    clock = [0.0]
    defaults = dict(failure_threshold=3, cooldown_seconds=5.0)
    defaults.update(kwargs)
    return clock, CircuitBreaker(clock=lambda: clock[0], **defaults)


class TestStateMachine:
    def test_trips_after_consecutive_failures(self):
        _clock, breaker = _breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN

    def test_success_resets_the_failure_count(self):
        _clock, breaker = _breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 2

    def test_cooldown_half_opens_lazily(self):
        clock, breaker = _breaker()
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 4.9
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] = 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_probe_budget_limits_half_open_admissions(self):
        clock, breaker = _breaker(half_open_probes=2)
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 5.0
        assert breaker.preflight() == CircuitBreaker.HALF_OPEN
        assert breaker.try_probe()
        assert breaker.try_probe()
        assert not breaker.try_probe()  # budget spent

    def test_probe_success_closes(self):
        clock, breaker = _breaker()
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 5.0
        assert breaker.try_probe()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 0

    def test_probe_failure_reopens_for_a_fresh_cooldown(self):
        clock, breaker = _breaker()
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 5.0
        assert breaker.try_probe()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] = 9.9  # 4.9s into the *new* cooldown
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] = 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_open_ignores_straggler_outcomes(self):
        clock, breaker = _breaker()
        for _ in range(3):
            breaker.record_failure()
        breaker.record_success()  # a query admitted before the trip
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] = 5.0
        assert breaker.state == CircuitBreaker.HALF_OPEN  # cooldown unmoved

    def test_transition_hook_sees_every_change(self):
        seen = []
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=1.0,
            clock=lambda: clock[0], on_transition=seen.append,
        )
        breaker.record_failure()
        clock[0] = 1.0
        assert breaker.try_probe()
        breaker.record_success()
        assert seen == ["open", "half_open", "closed"]

    def test_state_codes_are_severity_ordered(self):
        assert BREAKER_STATE_CODES == {"closed": 0, "half_open": 1, "open": 2}
        _clock, breaker = _breaker()
        assert breaker.state_code == 0
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state_code == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"cooldown_seconds": -1.0},
            {"half_open_probes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestControllerBreakerFeed:
    class _Result:
        def __init__(self, error):
            self.error = error

    def _controller(self, **kwargs):
        clock, breaker = _breaker(**kwargs)
        return clock, breaker, OverloadController(AdmissionPolicy(), breaker=breaker)

    def test_infra_errors_trip_and_shed(self):
        _clock, breaker, controller = self._controller()
        for _ in range(3):
            controller.record_outcome(self._Result("StorageError: disk on fire"))
        assert breaker.state == CircuitBreaker.OPEN
        decision = controller.admit()
        assert not decision.admitted
        assert decision.reason == "breaker_open"
        assert controller.prefer_sequential

    def test_user_errors_teach_the_breaker_nothing(self):
        _clock, breaker, controller = self._controller()
        for _ in range(10):
            controller.record_outcome(self._Result("QueryError: bad vertex"))
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 0

    def test_half_open_admits_one_probe_then_sheds(self):
        clock, breaker, controller = self._controller()
        for _ in range(3):
            controller.record_outcome(self._Result("StorageError: x"))
        clock[0] = 5.0
        probe = controller.admit()
        assert probe.admitted
        shed = controller.admit()
        assert shed.reason == "breaker_probing"
        controller.record_outcome(self._Result(None))
        assert breaker.state == CircuitBreaker.CLOSED
        assert not controller.prefer_sequential
        assert controller.inflight == 1  # the shed claimed no slot
        controller.release(probe)
        assert controller.inflight == 0

    def test_policy_built_breaker_from_knobs(self):
        controller = OverloadController(
            AdmissionPolicy(breaker_failures=2, breaker_cooldown_seconds=9.0)
        )
        assert controller.breaker is not None
        assert controller.breaker.failure_threshold == 2
        assert controller.breaker.cooldown_seconds == 9.0


class TestChaosTripAndRecovery:
    """The CI chaos path: FaultInjector trips the breaker through real
    storage failures; lifting the faults and passing the cooldown recovers
    it — with the breaker-state metric asserting every transition."""

    def test_breaker_trips_and_recovers_with_metrics(
        self, tmp_path, grid20, annotated_trips
    ):
        db = DiskTrajectoryDatabase.build(
            tmp_path / "chaos", grid20, annotated_trips,
            buffer_capacity=8,  # tiny pool: reads go to the (faulty) disk
        )
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown_seconds=5.0, clock=lambda: clock[0]
        )
        controller = OverloadController(AdmissionPolicy(), breaker=breaker)
        registry = MetricsRegistry()
        service = QueryService(
            db, "collaborative", admission=controller, metrics=registry
        )

        injector = FaultInjector(FaultPolicy(seed=1, transient_fault_rate=0.99))
        injector.attach(db.store.pagefile)
        storage_failures = 0
        for _ in range(12):
            result = service.submit(QUERY)
            if result.error is not None and result.error.startswith(
                "StorageError"
            ):
                storage_failures += 1
            if breaker.state == CircuitBreaker.OPEN:
                break
        assert storage_failures >= 3
        assert breaker.state == CircuitBreaker.OPEN
        assert controller.prefer_sequential

        shed = service.submit(QUERY)
        assert shed.error is not None
        assert shed.degradation_reason == "shed by admission policy (breaker_open)"
        assert service.stats.shed_reasons["breaker_open"] >= 1

        rendered = registry.render_prometheus()
        assert "repro_service_breaker_state 2" in rendered
        assert 'repro_service_breaker_transitions_total{to="open"} 1' in rendered

        # Recovery: lift the faults and pass the cooldown; the half-open
        # probe succeeds and closes the breaker.
        injector.detach(db.store.pagefile)
        clock[0] = 6.0
        probe = service.submit(QUERY)
        assert probe.error is None
        assert breaker.state == CircuitBreaker.CLOSED
        assert not controller.prefer_sequential

        rendered = registry.render_prometheus()
        assert "repro_service_breaker_state 0" in rendered
        assert (
            'repro_service_breaker_transitions_total{to="closed"} 1' in rendered
        )
        assert (
            'repro_service_breaker_transitions_total{to="half_open"} 1'
            in rendered
        )
        # Normal serving resumed: another query flows and is counted served.
        assert service.submit(QUERY).error is None
