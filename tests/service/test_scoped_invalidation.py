"""Scoped result-cache invalidation: the ISSUE 8 semantics oracle.

Scoped invalidation must be *invisible* except for hit rate: after any
interleaving of adds, removes, and queries, every answer the cached
service returns — hit or miss — is byte-equal to a fresh search over the
current database (the seeded property sweep).  The targeted tests pin the
two scoping rules individually: removals drop exactly the entries that
ranked the removed trajectory, and adds retain entries whose cached kth
score provably exceeds the newcomer's score upper bound.
"""

import random

import pytest

from repro.bench.datasets import DatasetBundle, build_bundle
from repro.bench.workloads import WorkloadConfig, make_queries
from repro.core.query import UOTSQuery
from repro.index.database import TrajectoryDatabase
from repro.obs.metrics import MetricsRegistry
from repro.perf import ResultCache
from repro.service import QueryService
from repro.trajectory.model import Trajectory, TrajectoryPoint, TrajectorySet


@pytest.fixture()
def bundle():
    # Every test mutates the database freely, and build_bundle() memoises
    # by parameters — so each test gets a private database over the shared
    # immutable graph instead of churning the cached bundle.
    base = build_bundle("brn", num_trajectories=120, scale=0.02, seed=5)
    trajectories = TrajectorySet(list(base.trajectories))
    return DatasetBundle(
        name=base.name,
        graph=base.graph,
        trajectories=trajectories,
        database=TrajectoryDatabase(
            base.graph, trajectories, sigma=base.database.sigma
        ),
        vocabulary=base.vocabulary,
    )


@pytest.fixture()
def workload(bundle):
    return make_queries(
        bundle, WorkloadConfig(num_queries=6, num_locations=3, k=5, seed=11)
    )


def _service(bundle, **kwargs):
    kwargs.setdefault("result_cache", 128)
    return QueryService(bundle.database, "collaborative", **kwargs)


def _oracle(bundle):
    """An uncached service on the same database: every search is fresh."""
    return QueryService(bundle.database, "collaborative", result_cache=0)


def _assert_byte_equal(served, fresh):
    assert served.ids == fresh.ids
    assert served.scores == fresh.scores  # exact float equality
    assert served.exact == fresh.exact
    assert served.error is None and served.degradation_reason is None


def _popular_keyword(database, min_postings):
    """A keyword at least ``min_postings`` trajectories carry."""
    counts = {}
    for trajectory in database.trajectories:
        for keyword in trajectory.keywords:
            counts[keyword] = counts.get(keyword, 0) + 1
    keyword, count = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
    assert count >= min_postings
    return keyword


class TestPropertySweep:
    def test_random_interleaving_matches_fresh_search(self, bundle):
        """Seeded sweep: adds/removes/queries in random order; every cached
        read stays byte-equal to an uncached search over the live set."""
        rng = random.Random(710)
        database = bundle.database
        service = _service(bundle)
        oracle = _oracle(bundle)
        pool = make_queries(
            bundle,
            WorkloadConfig(num_queries=8, num_locations=2, k=4, seed=17),
        )
        removed: list[Trajectory] = []
        max_id = max(t.id for t in database.trajectories)
        for step in range(150):
            roll = rng.random()
            if roll < 0.70:
                query = rng.choice(pool)
                served = service.search(query)
                _assert_byte_equal(served, oracle.search(query))
            elif roll < 0.85 and len(database) > 10:
                victim = rng.choice([t.id for t in database.trajectories])
                removed.append(database.remove(victim))
            elif removed and rng.random() < 0.5:
                database.add(removed.pop())
            else:
                # A genuinely new trajectory: clone a random member's shape
                # under a fresh id with a keyword subset.
                donor = rng.choice(list(database.trajectories))
                max_id += 1
                keywords = sorted(donor.keywords)[:2]
                database.add(
                    Trajectory(
                        max_id,
                        [
                            TrajectoryPoint(p.vertex, p.timestamp)
                            for p in donor.points
                        ],
                        keywords,
                    )
                )
        # The sweep must have exercised both hits and invalidation.
        assert service.stats.result_cache_hits > 0
        assert service.stats.invalidation_events > 0

    def test_sweep_scoped_and_wholesale_agree_on_answers(self, bundle):
        """The same mutation/query stream served by a scoped and a
        wholesale cache yields identical answers — scoping only changes
        hit rate, never content."""
        rng = random.Random(4096)
        database = bundle.database
        scoped = _service(bundle)
        wholesale = QueryService(
            database, "collaborative", result_cache=ResultCache(128, scoped=False)
        )
        pool = make_queries(
            bundle,
            WorkloadConfig(num_queries=5, num_locations=2, k=4, seed=23),
        )
        removed: list[Trajectory] = []
        for step in range(80):
            if rng.random() < 0.75:
                query = rng.choice(pool)
                _assert_byte_equal(scoped.search(query), wholesale.search(query))
            elif removed and rng.random() < 0.5:
                database.add(removed.pop())
            elif len(database) > 10:
                victim = rng.choice([t.id for t in database.trajectories])
                removed.append(database.remove(victim))
        assert scoped.stats.result_cache_hits >= wholesale.stats.result_cache_hits


class TestRemovalScoping:
    def test_removing_unranked_trajectory_keeps_the_entry(self, bundle, workload):
        service = _service(bundle)
        oracle = _oracle(bundle)
        query = workload[0]
        cold = service.search(query)
        unranked = next(
            t.id for t in bundle.database.trajectories if t.id not in cold.ids
        )
        bundle.database.remove(unranked)
        warm = service.search(query)
        assert warm.stats.cache == "result"  # retained across the removal
        _assert_byte_equal(warm, oracle.search(query))

    def test_removing_ranked_trajectory_drops_the_entry(self, bundle, workload):
        service = _service(bundle)
        oracle = _oracle(bundle)
        query = workload[0]
        cold = service.search(query)
        bundle.database.remove(cold.ids[0])
        fresh = service.search(query)
        assert fresh.stats.cache == ""  # invalidated, recomputed
        assert cold.ids[0] not in fresh.ids
        _assert_byte_equal(fresh, oracle.search(query))

    def test_removal_only_touches_entries_that_ranked_it(self, bundle, workload):
        service = _service(bundle)
        a, b = workload[0], workload[1]
        cold_a = service.search(a)
        service.search(b)
        victim = next(
            t.id
            for t in bundle.database.trajectories
            if t.id in cold_a.ids and t.id not in service.search(b).ids
        )
        bundle.database.remove(victim)
        assert service.search(a).stats.cache == ""  # ranked the victim: dropped
        assert service.search(b).stats.cache == "result"  # untouched: retained


class TestAddScoping:
    def _spatial_free_query(self, bundle, k=3):
        """A pure-text query (lam=0): the add bound reduces to the text UB."""
        keyword = _popular_keyword(bundle.database, min_postings=k)
        graph = bundle.database.graph
        return UOTSQuery(
            locations=(0, graph.num_vertices // 2),
            keywords=frozenset({keyword}),
            lam=0.0,
            k=k,
        )

    def _fresh_trajectory(self, bundle, keywords):
        max_id = max(t.id for t in bundle.database.trajectories)
        return Trajectory(
            max_id + 1, [TrajectoryPoint(1, 0.0), TrajectoryPoint(2, 60.0)], keywords
        )

    def test_keyword_disjoint_add_retains_the_entry(self, bundle):
        service = _service(bundle)
        oracle = _oracle(bundle)
        query = self._spatial_free_query(bundle)
        cold = service.search(query)
        assert cold.items[-1].score > 0.0  # the survival proof needs kth > 0
        bundle.database.add(
            self._fresh_trajectory(bundle, ["zzz-nowhere", "zzz-else"])
        )
        warm = service.search(query)
        assert warm.stats.cache == "result"  # provably unaffected: retained
        _assert_byte_equal(warm, oracle.search(query))

    def test_keyword_overlapping_add_drops_the_entry(self, bundle):
        service = _service(bundle)
        oracle = _oracle(bundle)
        query = self._spatial_free_query(bundle)
        service.search(query)
        # The newcomer carries exactly the query keyword: its text UB is
        # 1.0 >= any cached kth score, so the entry must drop.
        bundle.database.add(self._fresh_trajectory(bundle, sorted(query.keywords)))
        fresh = service.search(query)
        assert fresh.stats.cache == ""
        _assert_byte_equal(fresh, oracle.search(query))


class TestWholesaleMode:
    def test_scoped_false_clears_on_any_mutation(self, bundle, workload):
        cache = ResultCache(64, scoped=False)
        service = QueryService(
            bundle.database, "collaborative", result_cache=cache
        )
        query = workload[0]
        cold = service.search(query)
        unranked = next(
            t.id for t in bundle.database.trajectories if t.id not in cold.ids
        )
        bundle.database.remove(unranked)  # scoped mode would retain this
        assert len(cache) == 0
        assert service.search(query).stats.cache == ""


class TestObservability:
    def test_stats_lane_is_gated_and_recorded(self, bundle, workload):
        service = _service(bundle)
        assert "invalidation_events" not in service.stats.snapshot()
        cold = service.search(workload[0])
        bundle.database.remove(cold.ids[0])
        snapshot = service.stats.snapshot()
        assert snapshot["invalidation_events"] == 1
        assert snapshot["invalidation_kinds"] == {"remove": 1}
        assert snapshot["invalidation_entries_dropped"] == 1
        assert "invalidation:" in service.stats.describe()

    def test_trace_span_records_invalidation_scope(self, bundle, workload):
        service = _service(bundle, trace=True)
        cold = service.search(workload[0])
        bundle.database.remove(cold.ids[0])
        root = service.tracer.last_trace()
        assert root.name == "invalidation"
        assert root.attributes["kind"] == "remove"
        assert root.attributes["trajectory_id"] == cold.ids[0]
        assert root.attributes["entries_dropped"] == 1
        assert "entries_retained" in root.attributes

    def test_metrics_export_invalidation_series(self, bundle, workload):
        registry = MetricsRegistry()
        service = _service(bundle, metrics=registry)
        cold = service.search(workload[0])
        removed = bundle.database.remove(cold.ids[0])
        bundle.database.add(removed)
        registry.collect()
        events = registry.counter("repro_invalidation_events_total")
        assert events.value(kind="remove") == 1
        assert events.value(kind="add") == 1
        dropped = registry.counter("repro_invalidation_entries_dropped_total")
        assert dropped.value() >= 1
        assert registry.counter(
            "repro_invalidation_entries_retained_total"
        ).value() >= 0
        text = registry.render_prometheus()
        assert "repro_invalidation_events_total" in text
