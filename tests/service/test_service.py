"""QueryService: the batch front-end (ISSUE 3 acceptance surface).

``execute_many`` over a small ``brn`` bundle must match the sequential
per-query ``search()`` answers exactly, and the service must report
aggregated stats including p50/p95 latency.
"""

import pytest

from repro.bench.datasets import build_bundle
from repro.bench.workloads import WorkloadConfig, make_queries
from repro.core.query import UOTSQuery
from repro.core.registry import make_searcher
from repro.errors import QueryError
from repro.parallel.executor import fork_available
from repro.resilience.budget import SearchBudget
from repro.service import QueryService


@pytest.fixture(scope="module")
def bundle():
    return build_bundle("brn", num_trajectories=120, scale=0.02, seed=5)


@pytest.fixture(scope="module")
def workload(bundle):
    return make_queries(
        bundle, WorkloadConfig(num_queries=8, num_locations=3, k=5, seed=11)
    )


def _assert_matches(results, references):
    assert len(results) == len(references)
    for got, want in zip(results, references):
        assert got.error is None
        assert got.ids == want.ids
        assert got.scores == pytest.approx(want.scores, abs=1e-9)
        assert got.exact == want.exact


def test_execute_many_matches_sequential_search(bundle, workload):
    service = QueryService(bundle.database, "collaborative")
    searcher = make_searcher(bundle.database, "collaborative")
    references = [searcher.search(q) for q in workload]
    _assert_matches(service.execute_many(workload), references)


def test_execute_many_reports_percentile_latency(bundle, workload):
    service = QueryService(bundle.database, "collaborative")
    service.execute_many(workload)
    stats = service.stats
    assert stats.queries_served == len(workload)
    assert stats.exact_results == len(workload)
    assert stats.p50_ms > 0.0
    assert stats.p95_ms >= stats.p50_ms
    snapshot = stats.snapshot()
    assert snapshot["p50_ms"] == stats.p50_ms
    assert snapshot["p95_ms"] == stats.p95_ms
    assert "p50" in stats.describe()


@pytest.mark.skipif(not fork_available(), reason="needs a fork platform")
def test_execute_many_forked_matches_sequential(bundle, workload):
    service = QueryService(bundle.database, "collaborative")
    searcher = make_searcher(bundle.database, "collaborative")
    references = [searcher.search(q) for q in workload]
    results = service.execute_many(workload, workers=2)
    _assert_matches(results, references)
    assert service.stats.queries_served == len(workload)
    assert service.stats.p95_ms > 0.0


def test_submit_isolates_library_errors(bundle):
    service = QueryService(bundle.database, "collaborative")
    bad = UOTSQuery.create([bundle.graph.num_vertices + 7], ["park"], lam=0.5, k=3)
    result = service.submit(bad)
    assert result.error is not None
    assert result.items == []
    assert service.stats.failed_queries == 1


def test_search_propagates_library_errors(bundle):
    service = QueryService(bundle.database, "collaborative")
    bad = UOTSQuery.create([bundle.graph.num_vertices + 7], ["park"], lam=0.5, k=3)
    with pytest.raises(QueryError):
        service.search(bad)


def test_submit_records_degraded_results(bundle, workload):
    service = QueryService(bundle.database, "collaborative")
    result = service.submit(workload[0], SearchBudget(max_expanded_vertices=5))
    assert not result.exact
    assert service.stats.degraded_results == 1


def test_execute_many_validates_arguments(bundle, workload):
    service = QueryService(bundle.database, "collaborative")
    with pytest.raises(QueryError, match="workers"):
        service.execute_many(workload, workers=0)
    with pytest.raises(QueryError, match="max_task_retries"):
        service.execute_many(workload, max_task_retries=-1)


def test_service_forwards_tuning_kwargs(bundle):
    service = QueryService(
        bundle.database, "collaborative", alt=False, scheduler="round-robin"
    )
    assert not service.searcher.use_alt
    assert service.searcher._scheduler_spec == "round-robin"


def test_plan_is_stamped_with_registry_name(bundle, workload):
    service = QueryService(bundle.database, "collaborative-rr")
    plan = service.plan(workload[0])
    assert plan.algorithm == "collaborative-rr"
    assert plan.scheduler == "round-robin"
    explained = service.explain(workload[0])
    assert "collaborative-rr" in explained
    # explain never executes: nothing recorded.
    assert service.stats.queries_served == 0
