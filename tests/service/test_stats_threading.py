"""Concurrency hammer for :class:`LatencyReservoir` and service stats.

The gateway's thread-pool bridge records latencies from many worker
threads into one reservoir.  Before the reservoir was locked, concurrent
``record`` calls corrupted it in two observable ways: lost samples (two
threads read the same ``_total`` and overwrite one slot) and
``IndexError`` (a reservoir-phase index computed against a ``_total``
another thread already advanced past the warm-up boundary).  These tests
are the regression net: every recorded sample must be accounted for, and
no record may ever raise.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.service.stats import LatencyReservoir, ServiceStats


def _hammer_reservoir(capacity: int, threads: int, per_thread: int):
    reservoir = LatencyReservoir(capacity=capacity)
    errors: list[BaseException] = []
    barrier = threading.Barrier(threads)

    def work(seed: int) -> None:
        try:
            barrier.wait()
            for i in range(per_thread):
                reservoir.record((seed * per_thread + i) * 1e-6)
        except BaseException as exc:  # noqa: BLE001 - the assertion target
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(work, range(threads)))
    return reservoir, errors


def test_reservoir_concurrent_record_loses_nothing():
    """count == recorded: the acceptance hammer (500 iterations across
    the capacity boundary, 8 threads)."""
    threads, per_thread = 8, 500
    reservoir, errors = _hammer_reservoir(
        capacity=256, threads=threads, per_thread=per_thread
    )
    assert not errors, f"record() raised under concurrency: {errors[:3]}"
    assert reservoir.total_recorded == threads * per_thread
    # The window holds exactly its capacity once warm — no torn slots.
    assert len(reservoir) == 256
    assert 0.0 <= reservoir.percentile(50)


def test_reservoir_concurrent_record_below_capacity():
    """The warm-up phase (append path) is the historically racy index;
    hammer it without ever crossing capacity."""
    threads, per_thread = 8, 16
    reservoir, errors = _hammer_reservoir(
        capacity=4096, threads=threads, per_thread=per_thread
    )
    assert not errors
    assert reservoir.total_recorded == threads * per_thread
    assert len(reservoir) == threads * per_thread


def test_reservoir_percentile_during_concurrent_record():
    """Readers must see a consistent snapshot while writers run."""
    reservoir = LatencyReservoir(capacity=128)
    stop = threading.Event()
    errors: list[BaseException] = []

    def write() -> None:
        i = 0
        while not stop.is_set():
            reservoir.record(i * 1e-6)
            i += 1

    def read() -> None:
        try:
            while not stop.is_set():
                p = reservoir.percentile(95)
                assert p >= 0.0
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    writers = [threading.Thread(target=write) for _ in range(4)]
    readers = [threading.Thread(target=read) for _ in range(2)]
    for t in writers + readers:
        t.start()
    for t in writers:
        t.join(timeout=0.3)
    stop.set()
    for t in writers + readers:
        t.join()
    assert not errors, f"percentile() raised under concurrent record: {errors[:3]}"


def test_service_stats_concurrent_outcomes_sum_exactly():
    """ServiceStats counters are adjusted from many bridge threads; the
    totals must add up exactly (counters are += under the GIL, but the
    latency reservoir they feed must not drop the samples)."""
    from repro.core.results import SearchResult

    stats = ServiceStats()
    threads, per_thread = 8, 125

    def work(seed: int) -> None:
        for i in range(per_thread):
            result = SearchResult(items=[], exact=True)
            result.stats.elapsed_seconds = (seed + i) * 1e-6
            stats.record(result, (seed + i) * 1e-6)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(work, range(threads)))
    assert stats.queries_served == threads * per_thread
    assert stats._latencies.total_recorded == threads * per_thread
