"""Threaded storms for the admission controllers.

The gateway runs ``admit`` on the event loop and ``release`` on whatever
pool thread finished the query, so slot accounting must hold under full
cross-thread interleaving: no lost slots (capacity permanently shrunk),
no over-admission (in-flight above the cap at any instant), and in-flight
exactly 0 once the storm drains.  The over-release guard must still fire
— the storm must not have weakened it.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.admission import AdmissionController, OverloadController
from repro.service.policy import AdmissionPolicy


def _storm(controller, threads: int, per_thread: int, tenants=None):
    """Admit/release churn; returns (admitted, rejected, errors, peak)."""
    admitted = rejected = 0
    peak = 0
    errors: list[BaseException] = []
    counters_lock = threading.Lock()
    barrier = threading.Barrier(threads)

    def work(seed: int) -> None:
        nonlocal admitted, rejected, peak
        rng = random.Random(seed)
        try:
            barrier.wait()
            for _ in range(per_thread):
                tenant = rng.choice(tenants) if tenants else None
                decision = controller.admit(tenant=tenant)
                observed = controller.inflight
                with counters_lock:
                    peak = max(peak, observed)
                if decision.admitted:
                    with counters_lock:
                        admitted += 1
                    if rng.random() < 0.3:
                        pass  # release immediately: tight interleaving
                    controller.release(decision)
                else:
                    with counters_lock:
                        rejected += 1
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(work, range(threads)))
    return admitted, rejected, errors, peak


def test_plain_controller_storm_restores_all_slots():
    controller = AdmissionController(max_inflight=4)
    admitted, rejected, errors, peak = _storm(controller, threads=8, per_thread=500)
    assert not errors, f"storm raised: {errors[:3]}"
    assert controller.inflight == 0, "lost or leaked slots after the storm"
    assert peak <= 4, f"over-admission: saw {peak} in-flight above the cap"
    assert admitted + rejected == 8 * 500
    # Full capacity restored: the cap's worth of admissions succeed again.
    decisions = [controller.admit() for _ in range(4)]
    assert all(d.admitted for d in decisions)
    assert not controller.admit().admitted
    for decision in decisions:
        controller.release(decision)
    assert controller.inflight == 0


def test_overload_controller_storm_restores_tenant_lanes():
    policy = AdmissionPolicy(max_inflight=6, tenant_quota=3)
    controller = OverloadController(policy)
    tenants = ["alpha", "beta", "gamma", None]
    admitted, rejected, errors, peak = _storm(
        controller, threads=8, per_thread=500, tenants=tenants
    )
    assert not errors, f"storm raised: {errors[:3]}"
    assert controller.inflight == 0
    assert peak <= 6
    for tenant in ("alpha", "beta", "gamma"):
        assert controller.tenant_inflight(tenant) == 0, (
            f"tenant lane {tenant!r} leaked slots"
        )
    # The per-tenant quota is intact after the churn.
    held = [controller.admit(tenant="alpha") for _ in range(3)]
    assert all(d.admitted for d in held)
    assert not controller.admit(tenant="alpha").admitted  # quota
    assert controller.admit(tenant="beta").admitted  # other lanes unaffected
    for decision in held:
        controller.release(decision)


def test_over_release_guard_survives_the_storm():
    """The storm must not loosen the double-release invariant."""
    controller = AdmissionController(max_inflight=2)
    _, _, errors, _ = _storm(controller, threads=4, per_thread=200)
    assert not errors
    assert controller.inflight == 0
    with pytest.raises(RuntimeError, match="without a matching"):
        controller.release()


def test_overload_over_release_guard_per_tenant_after_storm():
    policy = AdmissionPolicy(max_inflight=4)
    controller = OverloadController(policy)
    _, _, errors, _ = _storm(
        controller, threads=4, per_thread=200, tenants=["a", "b"]
    )
    assert not errors
    assert controller.inflight == 0
    decision = controller.admit(tenant="a")
    assert decision.admitted
    controller.release(decision)
    with pytest.raises(RuntimeError, match="without a matching"):
        controller.release(decision)
