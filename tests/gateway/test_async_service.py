"""The async bridge: equivalence with the sync service, cancellation
safety, the pending cap, and lifecycle.  No HTTP and no pydantic here —
this layer is stdlib-only by design."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.query import UOTSQuery
from repro.errors import GatewayError, GatewaySaturatedError
from repro.gateway import AsyncQueryService
from repro.gateway.aservice import GATEWAY_EXECUTOR_LABEL
from repro.service.admission import OverloadController
from repro.service.policy import AdmissionPolicy
from repro.service.service import QueryService


def _query(seed: int = 0, k: int = 3) -> UOTSQuery:
    return UOTSQuery.create(
        locations=[3 + seed, 47 - seed], preference="river cafe", k=k
    )


def _run(coro):
    return asyncio.run(coro)


def test_submit_matches_sync_submit(gateway_database):
    """Same query, same database, same tuning -> identical ranking."""
    sync_service = QueryService(gateway_database, "collaborative")
    async_service = QueryService(gateway_database, "collaborative")
    gateway = AsyncQueryService(async_service, max_workers=2)

    async def go():
        try:
            return await gateway.submit(_query())
        finally:
            await gateway.close()

    bridged = _run(go())
    direct = sync_service.submit(_query())
    assert bridged.ids == direct.ids
    assert bridged.scores == direct.scores
    assert bridged.exact == direct.exact
    assert bridged.stats.executor == GATEWAY_EXECUTOR_LABEL


def test_result_cache_hit_served_on_loop(gateway_database):
    service = QueryService(gateway_database, "collaborative", result_cache=8)
    gateway = AsyncQueryService(service, max_workers=2)

    async def go():
        try:
            first = await gateway.submit(_query())
            second = await gateway.submit(_query())
            return first, second
        finally:
            await gateway.close()

    first, second = _run(go())
    assert first.stats.cache == ""
    assert second.stats.cache == "result"
    assert second.ids == first.ids
    assert service.stats.result_cache_hits == 1


def test_rejection_comes_back_as_error_result_not_exception(gateway_database):
    controller = OverloadController(AdmissionPolicy(max_inflight=1))
    service = QueryService(gateway_database, "collaborative", admission=controller)
    gateway = AsyncQueryService(service, max_workers=2)

    async def go():
        # Hold the only admission slot from a plain thread, then submit.
        decision = controller.admit()
        assert decision.admitted
        try:
            return await gateway.submit(_query())
        finally:
            controller.release(decision)
            await gateway.close()

    result = _run(go())
    assert result.error is not None and "AdmissionError" in result.error
    assert service.stats.rejected_queries == 1
    assert controller.inflight == 0


def test_saturated_bridge_raises_before_touching_admission(gateway_database):
    service = QueryService(gateway_database, "collaborative")
    gateway = AsyncQueryService(service, max_workers=1, max_pending=1)
    release = threading.Event()

    async def go():
        loop = asyncio.get_running_loop()
        # Occupy the single worker + the single pending slot.
        blocker = loop.run_in_executor(gateway._executor, release.wait)
        gateway._pending = 1  # the blocker stands in for a bridged call
        try:
            with pytest.raises(GatewaySaturatedError):
                await gateway.submit(_query())
            assert gateway.saturated
        finally:
            gateway._pending = 0
            release.set()
            await blocker
            await gateway.close()

    _run(go())
    assert service.stats.queries_served == 0
    assert service.admission.inflight == 0


def test_cancelled_awaiter_leaks_no_admission_slot(gateway_database):
    """Cancel the awaiting task mid-search: the bridged call must finish
    on its worker thread and release its admission slot."""
    controller = OverloadController(AdmissionPolicy(max_inflight=4))
    service = QueryService(gateway_database, "collaborative", admission=controller)
    gateway = AsyncQueryService(service, max_workers=2)
    # Gate the bridged execution so the cancel deterministically lands
    # while the search holds its admission slot on the worker thread.
    execution_started = threading.Event()
    proceed = threading.Event()
    original = service._execute_admitted

    def gated(*args, **kwargs):
        execution_started.set()
        assert proceed.wait(timeout=30)
        return original(*args, **kwargs)

    service._execute_admitted = gated

    async def go():
        task = asyncio.create_task(gateway.submit(_query(k=5)))
        while not execution_started.is_set():
            await asyncio.sleep(0.001)
        assert controller.inflight == 1
        task.cancel()
        with pytest.raises(asyncio.CancelledError):
            await task
        proceed.set()
        # Drain: close waits for the abandoned search to complete.
        await gateway.close()

    _run(go())
    assert controller.inflight == 0, "cancellation leaked an admission slot"
    assert gateway.pending == 0
    # The abandoned query still ran to completion and was recorded.
    assert service.stats.queries_served == 1


def test_submit_many_bridges_execute_many(gateway_database):
    service = QueryService(gateway_database, "collaborative")
    gateway = AsyncQueryService(service, max_workers=2)
    queries = [_query(seed) for seed in range(3)]

    async def go():
        try:
            return await gateway.submit_many(queries)
        finally:
            await gateway.close()

    results = _run(go())
    direct = QueryService(gateway_database, "collaborative").execute_many(queries)
    assert [r.ids for r in results] == [r.ids for r in direct]


def test_concurrent_submissions_all_complete_and_agree(gateway_database):
    """A burst of concurrent awaits: every result matches the sequential
    answer (shared caches and stats survive the concurrency)."""
    service = QueryService(gateway_database, "collaborative", result_cache=32)
    gateway = AsyncQueryService(service, max_workers=4)
    queries = [_query(seed % 4) for seed in range(16)]

    async def go():
        try:
            return await asyncio.gather(
                *(gateway.submit(query) for query in queries)
            )
        finally:
            await gateway.close()

    results = _run(go())
    reference = QueryService(gateway_database, "collaborative")
    for query, result in zip(queries, results):
        assert result.ids == reference.submit(query).ids
    assert service.stats.queries_served == 16
    assert service.admission.inflight == 0
    assert gateway.pending == 0


def test_closed_gateway_refuses_submissions(gateway_database):
    service = QueryService(gateway_database, "collaborative")
    gateway = AsyncQueryService(service, max_workers=1)

    async def go():
        await gateway.close()
        assert not gateway.healthy()
        ready, reason = gateway.ready()
        assert not ready and reason == "closed"
        with pytest.raises(GatewayError):
            await gateway.submit(_query())

    _run(go())


def test_ready_reflects_breaker_state(gateway_database):
    policy = AdmissionPolicy(breaker_failures=1, breaker_cooldown_seconds=60.0)
    controller = OverloadController(policy)
    service = QueryService(gateway_database, "collaborative", admission=controller)
    gateway = AsyncQueryService(service, max_workers=1)
    assert gateway.ready() == (True, "ok")
    controller.breaker.record_failure()
    assert controller.breaker.state == "open"
    assert gateway.ready() == (False, "breaker_open")
    _run(gateway.close())


def test_constructor_validates_bounds(gateway_database):
    service = QueryService(gateway_database, "collaborative")
    with pytest.raises(GatewayError):
        AsyncQueryService(service, max_workers=0)
    with pytest.raises(GatewayError):
        AsyncQueryService(service, max_workers=1, max_pending=0)
