"""End-to-end gateway tests over the in-process ASGI transport.

No sockets: the test client speaks raw ASGI to the exact app object the
server would run.  Needs pydantic (the wire schemas); the bridge-level
tests in ``test_async_service.py`` cover the no-pydantic path.
"""

from __future__ import annotations

import asyncio
import json
import re

import pytest

pytest.importorskip("pydantic")

from repro.core.query import UOTSQuery
from repro.gateway import AsyncQueryService
from repro.gateway.app import create_app
from repro.gateway.testing import ASGITestClient
from repro.obs.metrics import MetricsRegistry
from repro.service.admission import OverloadController
from repro.service.policy import AdmissionPolicy
from repro.service.service import QueryService

# The exposition-format check the CI obs-smoke job applies to the CLI's
# metrics output — /metrics must satisfy the identical contract.
PROMETHEUS_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" [^ ]+$"
)


@pytest.fixture()
def stack(gateway_database):
    """(service, gateway, client) built fresh per test, closed after."""
    registry = MetricsRegistry()
    service = QueryService(
        gateway_database, "collaborative", metrics=registry, result_cache=16
    )
    gateway = AsyncQueryService(service, max_workers=2)
    client = ASGITestClient(create_app(gateway, registry=registry))
    yield service, gateway, client
    asyncio.run(gateway.close())


def _payload(**overrides):
    payload = {"locations": [3, 47], "preference": "river cafe", "k": 3}
    payload.update(overrides)
    return payload


def test_query_bytes_equal_inprocess_submit(stack, gateway_database):
    """The acceptance check: the HTTP top-k byte-equals QueryService.submit
    serialized through the same schema."""
    from repro.gateway.schemas import QueryResponse

    service, _, client = stack
    response = client.post("/query", json=_payload())
    assert response.status == 200

    reference_service = QueryService(gateway_database, "collaborative")
    direct = reference_service.submit(
        UOTSQuery.create([3, 47], "river cafe", k=3)
    )
    direct_body = json.loads(QueryResponse.from_result(direct).model_dump_json())
    http_body = response.json()
    assert http_body["items"] == direct_body["items"]  # byte-identical top-k
    assert http_body["exact"] == direct_body["exact"]
    assert http_body["residual_bound"] == direct_body["residual_bound"]
    # Stats differ only in execution-path fields (latency, executor label).
    assert (
        http_body["stats"]["expanded_vertices"]
        == direct_body["stats"]["expanded_vertices"]
    )


def test_query_rejection_maps_to_429(gateway_database):
    controller = OverloadController(AdmissionPolicy(max_inflight=1))
    service = QueryService(gateway_database, "collaborative", admission=controller)
    gateway = AsyncQueryService(service, max_workers=2)
    client = ASGITestClient(create_app(gateway))
    decision = controller.admit()
    assert decision.admitted
    try:
        response = client.post("/query", json=_payload())
        assert response.status == 429
        body = response.json()
        assert "AdmissionError" in body["error"]
        assert body["items"] == []
    finally:
        controller.release(decision)
        asyncio.run(gateway.close())


def test_validation_and_domain_errors(stack):
    _, _, client = stack
    assert client.post("/query", json={"locations": []}).status == 422
    assert client.post("/query", json={"k": 3}).status == 422
    assert client.post("/query", json=_payload(typo_knob=1)).status == 422
    assert (
        client.post("/query", json=_payload(preference="x", keywords=["y"])).status
        == 422
    )
    # Shape-valid but domain-invalid: duplicate locations -> QueryError -> 400
    response = client.post("/query", json=_payload(locations=[3, 3]))
    assert response.status == 400
    assert response.json()["error"] == "query_error"
    # Unknown priority class is rejected at the edge, as the CLI's
    # choices= does — even without an overload policy configured.
    response = client.post("/query", json=_payload(priority="vip"))
    assert response.status == 422
    assert client.post("/query", body=b"not json").status == 422
    assert client.get("/unknown").status == 404
    assert client.get("/query").status == 405


def test_budgeted_query_round_trips(stack):
    _, _, client = stack
    response = client.post(
        "/query", json=_payload(deadline_ms=5000, max_expanded_vertices=100000)
    )
    assert response.status == 200
    assert response.json()["stats"]["expanded_vertices"] <= 100000


def test_batch_endpoint_matches_execute_many(stack, gateway_database):
    _, _, client = stack
    response = client.post(
        "/query/batch",
        json={"queries": [_payload(), _payload(locations=[5], k=2)]},
    )
    assert response.status == 200
    results = response.json()["results"]
    reference = QueryService(gateway_database, "collaborative").execute_many(
        [
            UOTSQuery.create([3, 47], "river cafe", k=3),
            UOTSQuery.create([5], "river cafe", k=2),
        ]
    )
    assert [
        [item["trajectory_id"] for item in result["items"]] for result in results
    ] == [r.ids for r in reference]
    # Heterogeneous per-query budgets are rejected up front.
    response = client.post(
        "/query/batch",
        json={"queries": [_payload(deadline_ms=10), _payload()]},
    )
    assert response.status == 422


def test_explain_matches_service_explain(stack, gateway_database):
    service, _, client = stack
    response = client.post("/explain", json={"locations": [3, 47], "k": 3})
    assert response.status == 200
    rendered = response.json()["explain"]
    assert rendered == service.explain(UOTSQuery.create([3, 47], k=3))
    assert "QueryPlan" in rendered


def test_healthz_and_readyz_lifecycle(stack):
    _, gateway, client = stack
    assert client.get("/healthz").status == 200
    ready = client.get("/readyz")
    assert ready.status == 200
    assert ready.json()["ready"] is True
    asyncio.run(gateway.close())
    assert client.get("/readyz").status == 503
    assert client.get("/readyz").json()["reason"] == "closed"


def test_readyz_flips_under_open_breaker(gateway_database):
    """The acceptance check: /readyz answers 503 while the breaker is open
    and recovers to 200 when it closes."""
    policy = AdmissionPolicy(breaker_failures=1, breaker_cooldown_seconds=60.0)
    controller = OverloadController(policy)
    service = QueryService(gateway_database, "collaborative", admission=controller)
    gateway = AsyncQueryService(service, max_workers=1)
    client = ASGITestClient(create_app(gateway))
    try:
        assert client.get("/readyz").status == 200
        controller.breaker.record_failure()
        assert controller.breaker.state == "open"
        response = client.get("/readyz")
        assert response.status == 503
        assert response.json()["reason"] == "breaker_open"
        # Queries still pass through (and come back shed by the breaker) —
        # readiness is advisory for the load balancer, not a hard gate.
        assert client.post("/query", json=_payload()).status == 429
    finally:
        asyncio.run(gateway.close())


def test_metrics_endpoint_passes_line_format_check(stack):
    service, _, client = stack
    assert client.post("/query", json=_payload()).status == 200
    response = client.get("/metrics")
    assert response.status == 200
    assert response.headers["content-type"].startswith("text/plain")
    lines = [
        line
        for line in response.text.splitlines()
        if line and not line.startswith("#")
    ]
    assert lines, "metrics exposition is empty after a served query"
    for line in lines:
        assert PROMETHEUS_LINE.match(line), f"bad exposition line: {line!r}"
    assert any(line.startswith("repro_service_queries_total") for line in lines)


def test_result_cache_hit_visible_through_http(stack):
    _, _, client = stack
    first = client.post("/query", json=_payload())
    second = client.post("/query", json=_payload())
    assert first.json()["stats"]["cache"] == ""
    assert second.json()["stats"]["cache"] == "result"
    assert second.json()["items"] == first.json()["items"]
