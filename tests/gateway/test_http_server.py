"""The stdlib HTTP/1.1 server over a real loopback socket.

One test module with real sockets (ephemeral ports, loopback only): the
ASGI-level behaviour is covered socket-free in ``test_gateway_e2e.py``,
so these tests focus on what only a wire exercises — request parsing,
keep-alive, Content-Length framing, protocol errors, shutdown.
"""

from __future__ import annotations

import asyncio
import http.client
import json

import pytest

pytest.importorskip("pydantic")

from repro.gateway import AsyncQueryService
from repro.gateway.app import create_app
from repro.gateway.server import HTTPServer
from repro.service.service import QueryService


def _serve(gateway_database, client_fn):
    """Run the server on an ephemeral port, drive it with ``client_fn``
    (called in a worker thread with the port), and shut down cleanly."""

    async def main():
        service = QueryService(gateway_database, "collaborative", result_cache=8)
        gateway = AsyncQueryService(service, max_workers=2)
        server = HTTPServer(create_app(gateway), "127.0.0.1", 0)
        await server.start()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, client_fn, server.port)
        finally:
            await server.stop()
            await gateway.close()

    return asyncio.run(main())


def test_query_and_keepalive_over_real_socket(gateway_database):
    def drive(port: int):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        body = json.dumps({"locations": [3, 47], "preference": "river", "k": 3})
        statuses, caches = [], []
        for _ in range(2):  # same connection: keep-alive must hold
            connection.request(
                "POST", "/query", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            statuses.append(response.status)
            caches.append(payload["stats"]["cache"])
        connection.request("GET", "/readyz")
        ready = connection.getresponse()
        ready_status, ready_body = ready.status, json.loads(ready.read())
        connection.close()
        return statuses, caches, ready_status, ready_body

    statuses, caches, ready_status, ready_body = _serve(gateway_database, drive)
    assert statuses == [200, 200]
    assert caches == ["", "result"]  # the repeat hit the result cache
    assert ready_status == 200 and ready_body["ready"] is True


def test_protocol_errors_over_real_socket(gateway_database):
    def drive(port: int):
        results = {}
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        connection.request("GET", "/nope")
        results["not_found"] = connection.getresponse().status
        connection.close()

        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        connection.request("POST", "/query", body=b"{broken")
        results["bad_json"] = connection.getresponse().status
        connection.close()

        # Chunked transfer-encoding is out of scope: 411, not a hang.
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        connection.putrequest("POST", "/query", skip_accept_encoding=True)
        connection.putheader("Transfer-Encoding", "chunked")
        connection.endheaders()
        results["chunked"] = connection.getresponse().status
        connection.close()
        return results

    results = _serve(gateway_database, drive)
    assert results["not_found"] == 404
    assert results["bad_json"] == 422
    assert results["chunked"] == 411


def test_connection_close_honored(gateway_database):
    def drive(port: int):
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        connection.request("GET", "/healthz", headers={"Connection": "close"})
        response = connection.getresponse()
        status = response.status
        header = response.getheader("connection")
        response.read()
        connection.close()
        return status, header

    status, header = _serve(gateway_database, drive)
    assert status == 200
    assert header == "close"
