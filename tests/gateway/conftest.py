"""Gateway fixtures: a small served database and helpers to build
service/gateway pairs per test (gateway state — pending counters,
breakers — must not leak between tests, so nothing here is shared
mutable)."""

from __future__ import annotations

import pytest

from repro.index.database import TrajectoryDatabase
from repro.network.generators import grid_network
from repro.text.assignment import annotate_trajectories, assign_vertex_keywords
from repro.text.vocabulary import Vocabulary
from repro.trajectory.generator import generate_trips


@pytest.fixture(scope="session")
def gateway_database():
    """A compact database: big enough that searches do real work, small
    enough that a full e2e suite stays fast."""
    graph = grid_network(10, 10, seed=21)
    trips = generate_trips(graph, 120, seed=22)
    vocabulary = Vocabulary.build(40, seed=23)
    vertex_keywords = assign_vertex_keywords(graph, vocabulary, seed=24)
    trips = annotate_trajectories(trips, vertex_keywords, seed=25)
    return TrajectoryDatabase(graph, trips)
